//! The concurrent interpreter.
//!
//! Executes an [`owl_ir::Module`] with instruction-granularity
//! preemption under a pluggable [`Scheduler`], emitting [`TraceEvent`]s
//! for detectors and honouring [`Breakpoint`]s for verifiers. This is
//! the substrate that substitutes for native pthread execution, TSan
//! instrumentation hooks, LLDB control, and SKI's QEMU-level schedule
//! control in the original system.

use crate::breakpoint::{
    BreakDecision, BreakWorld, Breakpoint, Controller, NoController, PendingAccess, Suspension,
};
use crate::event::{CallStack, EventKind, NullSink, ThreadId, TraceEvent, TraceSink};
use crate::fault::{FaultKind, FaultPlan, FaultRecord, FaultState};
use crate::input::ProgramInput;
use crate::mem::{MemError, Memory, FUNCPTR_BASE};
use crate::sched::Scheduler;
use crate::violation::{SecurityEvent, SecurityRecord, Violation, ViolationRecord};
use owl_ir::{BinOp, BlockId, Callee, FuncId, Inst, InstId, InstRef, Module, Operand, Pred, Type};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// Execution limits and switches.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunConfig {
    /// Hard cap on executed instructions (livelock guard).
    pub max_steps: u64,
    /// Cap on any single `IoDelay` amount.
    pub io_delay_cap: u64,
    /// Record the scheduler's choice sequence for replay.
    pub record_schedule: bool,
    /// Seeded fault-injection plan ([`FaultPlan::none`] by default:
    /// nothing fires, no RNG is consumed, execution is bit-identical
    /// to a build without the fault layer).
    pub fault: FaultPlan,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            max_steps: 500_000,
            io_delay_cap: 2_000,
            record_schedule: true,
            fault: FaultPlan::none(),
        }
    }
}

/// How an execution ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExitStatus {
    /// Every thread ran to completion (possibly with recorded
    /// violations).
    Finished,
    /// Threads remain but none can ever run again.
    Deadlock,
    /// The step limit was exhausted.
    StepLimit,
}

/// Why a thread can never run again (deadlock diagnosis).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WaitReason {
    /// Blocked acquiring the mutex at `addr`, currently held by
    /// `owner`.
    Mutex {
        /// Mutex cell address.
        addr: u64,
        /// Current owner, if any.
        owner: Option<ThreadId>,
    },
    /// Waiting to join `child`.
    Join {
        /// The thread being joined.
        child: ThreadId,
    },
    /// Asleep on the condition variable at `cv` with no signal coming.
    CondVar {
        /// Condition-variable cell address.
        cv: u64,
    },
}

/// One stuck thread in a deadlock.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaitInfo {
    /// The stuck thread.
    pub tid: ThreadId,
    /// What it waits for.
    pub reason: WaitReason,
    /// The instruction it is stuck at, when resolvable.
    pub site: Option<InstRef>,
}

/// Diagnosis attached to [`ExitStatus::Deadlock`] outcomes.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeadlockInfo {
    /// Every thread that can never run again, with its wait reason.
    pub waiting: Vec<WaitInfo>,
}

/// Everything observable about one execution.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExecOutcome {
    /// Termination class.
    pub status: ExitStatus,
    /// Instructions executed.
    pub steps: u64,
    /// `Output` records as `(channel, value)` in execution order.
    pub outputs: Vec<(i64, i64)>,
    /// Mechanical violations detected.
    pub violations: Vec<ViolationRecord>,
    /// Security-relevant actions (privilege, file, exec).
    pub security: Vec<SecurityRecord>,
    /// Per-descriptor file contents written via `FileAccess`.
    pub files: BTreeMap<i64, Vec<i64>>,
    /// Final privilege level (initially [`ExecOutcome::DEFAULT_PRIVILEGE`]).
    pub privilege: i64,
    /// Scheduler choices (for [`crate::ReplayScheduler`]).
    pub schedule: Vec<ThreadId>,
    /// Total threads ever created (including main).
    pub threads_spawned: u32,
    /// Return value of the entry function, if it finished.
    pub return_value: Option<i64>,
    /// Populated when `status == ExitStatus::Deadlock`.
    pub deadlock: Option<DeadlockInfo>,
    /// Every fault the configured [`FaultPlan`] injected, in order.
    pub injected_faults: Vec<FaultRecord>,
}

impl ExecOutcome {
    /// Privilege level before any `SetPrivilege` (1000 = unprivileged).
    pub const DEFAULT_PRIVILEGE: i64 = 1000;

    /// Whether any recorded violation satisfies `pred`.
    pub fn any_violation(&self, mut pred: impl FnMut(&Violation) -> bool) -> bool {
        self.violations.iter().any(|r| pred(&r.violation))
    }

    /// First violation record satisfying `pred`.
    pub fn find_violation(
        &self,
        mut pred: impl FnMut(&Violation) -> bool,
    ) -> Option<&ViolationRecord> {
        self.violations.iter().find(|r| pred(&r.violation))
    }

    /// Values written to file descriptor `fd`.
    pub fn file(&self, fd: i64) -> &[i64] {
        self.files.get(&fd).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether an `Exec` of `cmd` happened.
    pub fn executed(&self, cmd: i64) -> bool {
        self.security
            .iter()
            .any(|s| s.event == SecurityEvent::Exec { cmd })
    }
}

#[derive(Clone, Debug)]
struct Frame {
    func: FuncId,
    block: BlockId,
    /// Index into the block's instruction list.
    idx: usize,
    regs: Vec<Option<i64>>,
    args: Vec<i64>,
    /// Call instruction in the *caller* frame to receive our return
    /// value.
    call_inst: Option<InstId>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ThreadState {
    Runnable,
    Blocked {
        mutex: u64,
    },
    Joining {
        child: ThreadId,
    },
    Delayed {
        until: u64,
    },
    /// Asleep on a condition variable.
    WaitingCond {
        cv: u64,
    },
    Suspended,
    Finished,
}

#[derive(Clone, Debug)]
struct Thread {
    state: ThreadState,
    frames: Vec<Frame>,
    /// Skip breakpoint matching for the next fetch (set on resume).
    skip_bp: bool,
    /// `CondWait` phase flag: the next execution of the wait
    /// instruction re-acquires the mutex instead of releasing it.
    cond_reacquire: bool,
    stack_cache: Option<CallStack>,
}

#[derive(Clone, Debug)]
struct MutexState {
    owner: Option<ThreadId>,
}

/// A resumable copy of a paused [`Vm`]'s complete deterministic
/// machine state: thread frames and block cursors, the word-addressed
/// memory (CoW-shared with the live VM until either side writes), the
/// mutex table, pending suspensions and breakpoints, the remaining
/// program input, the fault plan with its RNG mid-state and records
/// so far, the elision map, the step counter, and the partial outcome
/// (outputs, violations, schedule prefix, …).
///
/// Cheap to take and to clone: region payloads and call-stack caches
/// are `Arc`-shared, so the cost is O(live regions + frames), not
/// O(heap words). Pair with [`Vm::resume`]; the module passed there
/// must be the module the snapshotted VM was executing (checked by
/// name).
#[derive(Clone, Debug)]
pub struct Snapshot {
    module_name: String,
    mem: Memory,
    threads: Vec<Thread>,
    mutexes: BTreeMap<u64, MutexState>,
    suspended: BTreeMap<ThreadId, Suspension>,
    breakpoints: Vec<Breakpoint>,
    input: ProgramInput,
    config: RunConfig,
    faults: FaultState,
    elided: Option<Arc<HashSet<InstRef>>>,
    step: u64,
    outcome: ExecOutcome,
}

impl Snapshot {
    /// Step counter at the pause point.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Approximate heap bytes this snapshot uniquely owns. CoW-shared
    /// payloads (region words, stack caches) are excluded: until one
    /// side writes, they cost one `Arc` handle, which is counted in
    /// the per-region/per-frame overhead.
    pub fn approx_bytes(&self) -> u64 {
        let threads: u64 = self
            .threads
            .iter()
            .map(|t| {
                64 + t
                    .frames
                    .iter()
                    .map(|f| 48 + (f.regs.len() as u64) * 9 + (f.args.len() as u64) * 8)
                    .sum::<u64>()
            })
            .sum();
        let outcome = (self.outcome.outputs.len() as u64) * 16
            + (self.outcome.violations.len() as u64) * 64
            + (self.outcome.security.len() as u64) * 32
            + (self.outcome.schedule.len() as u64) * 4
            + (self.outcome.injected_faults.len() as u64) * 48
            + self
                .outcome
                .files
                .values()
                .map(|v| 24 + (v.len() as u64) * 8)
                .sum::<u64>();
        256 + self.mem.approx_index_bytes()
            + threads
            + (self.mutexes.len() as u64) * 24
            + (self.suspended.len() as u64) * 96
            + (self.breakpoints.len() as u64) * 48
            + outcome
    }
}

/// Where [`Vm::run_loop_inner`] may leave the interpreter loop early.
enum Pause {
    /// Run to termination.
    Never,
    /// Pause at the first scheduling point where ≥ 2 threads could
    /// interleave.
    Concurrent,
    /// Pause once the step counter reaches the given value.
    AtStep(u64),
}

/// The virtual machine for one execution.
pub struct Vm<'m> {
    module: &'m Module,
    mem: Memory,
    threads: Vec<Thread>,
    mutexes: BTreeMap<u64, MutexState>,
    suspended: BTreeMap<ThreadId, Suspension>,
    breakpoints: Vec<Breakpoint>,
    input: ProgramInput,
    config: RunConfig,
    faults: FaultState,
    /// Sites the static check-elision pre-pass proved race-free:
    /// events emitted from them carry [`TraceEvent::no_shadow`].
    elided: Option<Arc<HashSet<InstRef>>>,
    step: u64,
    outcome: ExecOutcome,
}

impl std::fmt::Debug for Vm<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vm")
            .field("module", &self.module.name)
            .field("step", &self.step)
            .field("threads", &self.threads.len())
            .finish_non_exhaustive()
    }
}

impl<'m> Vm<'m> {
    /// Prepares an execution of `module` starting at `entry` (a
    /// zero-parameter function) with the given `input`.
    ///
    /// # Panics
    ///
    /// Panics if `entry` is external or takes parameters.
    pub fn new(module: &'m Module, entry: FuncId, input: ProgramInput, config: RunConfig) -> Self {
        let f = module.func(entry);
        assert!(f.is_internal, "entry must be internal");
        assert_eq!(f.num_params, 0, "entry must take no parameters");
        let main = Thread {
            state: ThreadState::Runnable,
            frames: vec![Frame {
                func: entry,
                block: BlockId(0),
                idx: 0,
                regs: vec![None; f.insts.len()],
                args: vec![],
                call_inst: None,
            }],
            skip_bp: false,
            cond_reacquire: false,
            stack_cache: None,
        };
        let faults = FaultState::new(config.fault.clone(), config.max_steps);
        Vm {
            module,
            mem: Memory::new(module),
            threads: vec![main],
            mutexes: BTreeMap::new(),
            suspended: BTreeMap::new(),
            breakpoints: Vec::new(),
            input,
            config,
            faults,
            elided: None,
            step: 0,
            outcome: ExecOutcome {
                status: ExitStatus::Finished,
                steps: 0,
                outputs: vec![],
                violations: vec![],
                security: vec![],
                files: BTreeMap::new(),
                privilege: ExecOutcome::DEFAULT_PRIVILEGE,
                schedule: vec![],
                threads_spawned: 1,
                return_value: None,
                deadlock: None,
                injected_faults: vec![],
            },
        }
    }

    /// Installs a breakpoint before running.
    pub fn add_breakpoint(&mut self, bp: Breakpoint) {
        self.breakpoints.push(bp);
    }

    /// Installs the statically-proven race-free sites. Events emitted
    /// at these sites are stamped [`TraceEvent::no_shadow`], letting
    /// shadow-memory detector backends skip their per-access work.
    /// Execution itself is unchanged: the same schedule yields the
    /// same trace modulo the stamp.
    pub fn with_elided_sites(mut self, sites: Arc<HashSet<InstRef>>) -> Self {
        self.elided = Some(sites);
        self
    }

    /// Runs to completion with no breakpoints/controller.
    pub fn run(mut self, sched: &mut dyn Scheduler, sink: &mut dyn TraceSink) -> ExecOutcome {
        self.run_loop_inner(sched, sink, &mut NoController, Pause::Never);
        self.take_outcome()
    }

    /// Runs to completion under `controller` (verifier mode).
    pub fn run_controlled(
        mut self,
        sched: &mut dyn Scheduler,
        sink: &mut dyn TraceSink,
        controller: &mut dyn Controller,
    ) -> ExecOutcome {
        self.run_loop_inner(sched, sink, controller, Pause::Never);
        self.take_outcome()
    }

    /// Runs until the first scheduling point where at least two
    /// threads could interleave (see `Vm::concurrency_potential` for
    /// the exact — deliberately conservative — predicate). Up to that
    /// point every scheduler pick is a forced singleton, so the
    /// executed prefix is identical for *any* scheduler seed.
    ///
    /// Returns `Some(outcome)` if the program terminated without ever
    /// reaching such a point (single-threaded programs). Returns
    /// `None` if the VM paused: take a [`Vm::snapshot`], then continue
    /// this VM (or any [`Vm::resume`]d copy) with [`Vm::run`].
    pub fn run_until_concurrent(
        &mut self,
        sched: &mut dyn Scheduler,
        sink: &mut dyn TraceSink,
    ) -> Option<ExecOutcome> {
        if self.run_loop_inner(sched, sink, &mut NoController, Pause::Concurrent) {
            None
        } else {
            Some(self.take_outcome())
        }
    }

    /// Runs until the step counter reaches `step` (pausing at the next
    /// iteration boundary), or to termination, whichever comes first.
    /// Same pause semantics as [`Vm::run_until_concurrent`]; exists so
    /// snapshot/resume can be exercised at arbitrary points.
    pub fn run_until_step(
        &mut self,
        sched: &mut dyn Scheduler,
        sink: &mut dyn TraceSink,
        step: u64,
    ) -> Option<ExecOutcome> {
        if self.run_loop_inner(sched, sink, &mut NoController, Pause::AtStep(step)) {
            None
        } else {
            Some(self.take_outcome())
        }
    }

    /// Captures the complete machine state at the current pause point.
    /// Meaningful after [`Vm::run_until_concurrent`] /
    /// [`Vm::run_until_step`] returned `None` (or before the first
    /// step); region payloads are CoW-shared, so the copy is cheap.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            module_name: self.module.name.clone(),
            mem: self.mem.clone(),
            threads: self.threads.clone(),
            mutexes: self.mutexes.clone(),
            suspended: self.suspended.clone(),
            breakpoints: self.breakpoints.clone(),
            input: self.input.clone(),
            config: self.config.clone(),
            faults: self.faults.clone(),
            elided: self.elided.clone(),
            step: self.step,
            outcome: self.outcome.clone(),
        }
    }

    /// Reconstructs a VM from `snap`, ready to continue exactly where
    /// the snapshotted VM paused — same step counter, same pending
    /// fault RNG state, same partial outcome.
    ///
    /// # Panics
    ///
    /// Panics if `module` is not the module the snapshot was taken
    /// from (compared by name).
    pub fn resume(module: &'m Module, snap: Snapshot) -> Vm<'m> {
        assert_eq!(
            module.name, snap.module_name,
            "snapshot resumed against a different module"
        );
        Vm {
            module,
            mem: snap.mem,
            threads: snap.threads,
            mutexes: snap.mutexes,
            suspended: snap.suspended,
            breakpoints: snap.breakpoints,
            input: snap.input,
            config: snap.config,
            faults: snap.faults,
            elided: snap.elided,
            step: snap.step,
            outcome: snap.outcome,
        }
    }

    /// Upper bound on the number of threads that could interleave at
    /// the next scheduling point: runnable threads, delayed threads
    /// already due, suspended threads (a controller may resume them),
    /// and — only when spurious wakeups are enabled — condition
    /// waiters. Over-counting is safe (a prefix-sharing explorer just
    /// forks earlier than strictly necessary); under-counting never
    /// happens, which is what makes every pre-pause pick a forced
    /// singleton.
    fn concurrency_potential(&self) -> usize {
        self.threads
            .iter()
            .filter(|t| match t.state {
                ThreadState::Runnable | ThreadState::Suspended => true,
                ThreadState::Delayed { until } => until <= self.step,
                ThreadState::WaitingCond { .. } => self.faults.plan.spurious_wakeup_rate > 0.0,
                ThreadState::Blocked { .. } | ThreadState::Joining { .. } => false,
                ThreadState::Finished => false,
            })
            .count()
    }

    /// Finalizes and takes the outcome after the loop terminated.
    fn take_outcome(&mut self) -> ExecOutcome {
        self.outcome.steps = self.step;
        self.outcome.injected_faults = std::mem::take(&mut self.faults.records);
        std::mem::replace(
            &mut self.outcome,
            ExecOutcome {
                status: ExitStatus::Finished,
                steps: 0,
                outputs: vec![],
                violations: vec![],
                security: vec![],
                files: BTreeMap::new(),
                privilege: ExecOutcome::DEFAULT_PRIVILEGE,
                schedule: vec![],
                threads_spawned: 0,
                return_value: None,
                deadlock: None,
                injected_faults: vec![],
            },
        )
    }

    /// Convenience: run with the default config and a [`NullSink`].
    pub fn run_quiet(
        module: &'m Module,
        entry: FuncId,
        input: ProgramInput,
        sched: &mut dyn Scheduler,
    ) -> ExecOutcome {
        Vm::new(module, entry, input, RunConfig::default()).run(sched, &mut NullSink)
    }

    /// The interpreter loop. Returns `true` if execution paused at a
    /// resumable boundary (per `pause`) rather than terminating.
    ///
    /// Pausing happens at the very top of an iteration — before the
    /// budget check, any delayed-thread wake, and any fault-RNG draw —
    /// so a paused VM (or a [`Snapshot`] of it) re-executes the whole
    /// iteration prologue exactly once on resume, byte-identical to an
    /// uninterrupted run. Only termination finalizes the outcome (via
    /// [`Vm::take_outcome`]); a paused VM keeps accumulating into the
    /// same partial outcome.
    fn run_loop_inner(
        &mut self,
        sched: &mut dyn Scheduler,
        sink: &mut dyn TraceSink,
        controller: &mut dyn Controller,
        pause: Pause,
    ) -> bool {
        let mut runnable: Vec<ThreadId> = Vec::new();
        loop {
            match pause {
                Pause::Never => {}
                Pause::Concurrent => {
                    if self.concurrency_potential() >= 2 {
                        return true;
                    }
                }
                Pause::AtStep(at) => {
                    if self.step >= at {
                        return true;
                    }
                }
            }
            // A drawn step-exhaustion fault shrinks the budget.
            let budget = match self.faults.cutoff {
                Some(c) => c.min(self.config.max_steps),
                None => self.config.max_steps,
            };
            if self.step >= budget {
                if budget < self.config.max_steps {
                    self.faults
                        .record(FaultKind::StepExhaustion, self.step, None, None);
                }
                self.outcome.status = ExitStatus::StepLimit;
                break;
            }
            // Wake delayed threads whose deadline has passed.
            for t in self.threads.iter_mut() {
                if let ThreadState::Delayed { until } = t.state {
                    if until <= self.step {
                        t.state = ThreadState::Runnable;
                    }
                }
            }
            // Spurious wakeup: rouse one condition-waiting thread with
            // no signal. `cond_reacquire` is already set, so the thread
            // re-checks its predicate exactly like a real POSIX
            // spurious wakeup.
            if self.faults.plan.spurious_wakeup_rate > 0.0 {
                if let Some(i) = self
                    .threads
                    .iter()
                    .position(|t| matches!(t.state, ThreadState::WaitingCond { .. }))
                {
                    if self.faults.fire_wakeup(self.step) {
                        self.threads[i].state = ThreadState::Runnable;
                        let wtid = ThreadId(i as u32);
                        let wsite = self.cur_site(wtid).map(|(s, _)| s);
                        self.faults
                            .record(FaultKind::SpuriousWakeup, self.step, Some(wtid), wsite);
                        if let Some(s) = wsite {
                            self.emit(
                                sink,
                                wtid,
                                s,
                                EventKind::Fault {
                                    kind: FaultKind::SpuriousWakeup,
                                },
                            );
                        }
                    }
                }
            }
            runnable.clear();
            runnable.extend(
                self.threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.state == ThreadState::Runnable)
                    .map(|(i, _)| ThreadId(i as u32)),
            );
            if runnable.is_empty() {
                if self
                    .threads
                    .iter()
                    .all(|t| t.state == ThreadState::Finished)
                {
                    self.outcome.status = ExitStatus::Finished;
                    break;
                }
                // Fast-forward to the next delayed wakeup, if any.
                if let Some(until) = self
                    .threads
                    .iter()
                    .filter_map(|t| match t.state {
                        ThreadState::Delayed { until } => Some(until),
                        _ => None,
                    })
                    .min()
                {
                    self.step = until;
                    continue;
                }
                // Livelock: suspended threads are holding everyone up.
                if !self.suspended.is_empty() {
                    let choice = {
                        let mut resume = Vec::new();
                        let mut world = BreakWorld {
                            suspended: &self.suspended,
                            breakpoints: &mut self.breakpoints,
                            resume: &mut resume,
                        };
                        let picked = controller.on_stall(&mut world);
                        resume.extend(picked);
                        resume
                    };
                    let to_release = if choice.is_empty() {
                        // Automatic livelock resolution: release the
                        // oldest suspension (§5.2).
                        self.suspended
                            .values()
                            .min_by_key(|s| s.step)
                            .map(|s| s.tid)
                            .into_iter()
                            .collect()
                    } else {
                        choice
                    };
                    for tid in to_release {
                        self.resume_thread(tid);
                    }
                    continue;
                }
                self.outcome.status = ExitStatus::Deadlock;
                self.outcome.deadlock = Some(self.diagnose_deadlock());
                break;
            }

            let tid = sched.pick(&runnable, self.step);
            debug_assert!(
                runnable.contains(&tid),
                "scheduler picked unrunnable thread"
            );
            // Scheduler perturbation: park the pick instead of running
            // it. The step still advances (livelock guard) and the
            // choice is not recorded (a replay would diverge anyway).
            if self.faults.fire_sched_delay(self.step) {
                let dsite = self.cur_site(tid).map(|(s, _)| s);
                self.faults
                    .record(FaultKind::SchedDelay, self.step, Some(tid), dsite);
                if let Some(s) = dsite {
                    self.emit(
                        sink,
                        tid,
                        s,
                        EventKind::Fault {
                            kind: FaultKind::SchedDelay,
                        },
                    );
                }
                self.step += 1;
                let until = self.step + self.faults.plan.sched_delay_steps;
                self.threads[tid.index()].state = ThreadState::Delayed { until };
                continue;
            }
            if self.config.record_schedule {
                self.outcome.schedule.push(tid);
            }
            self.step += 1;
            self.exec_one(tid, sink, controller);
        }
        false
    }

    /// Builds the per-thread wait diagnosis for a deadlock.
    fn diagnose_deadlock(&self) -> DeadlockInfo {
        let mut waiting = Vec::new();
        for (i, t) in self.threads.iter().enumerate() {
            let tid = ThreadId(i as u32);
            let reason = match t.state {
                ThreadState::Blocked { mutex } => WaitReason::Mutex {
                    addr: mutex,
                    owner: self.mutexes.get(&mutex).and_then(|m| m.owner),
                },
                ThreadState::Joining { child } => WaitReason::Join { child },
                ThreadState::WaitingCond { cv } => WaitReason::CondVar { cv },
                _ => continue,
            };
            waiting.push(WaitInfo {
                tid,
                reason,
                site: self.cur_site(tid).map(|(r, _)| r),
            });
        }
        DeadlockInfo { waiting }
    }

    fn resume_thread(&mut self, tid: ThreadId) {
        if self.suspended.remove(&tid).is_some() {
            let t = &mut self.threads[tid.index()];
            if t.state == ThreadState::Suspended {
                t.state = ThreadState::Runnable;
                t.skip_bp = true;
            }
        }
    }

    fn call_stack(&mut self, tid: ThreadId) -> CallStack {
        let t = &mut self.threads[tid.index()];
        if let Some(s) = &t.stack_cache {
            return Arc::clone(s);
        }
        // Each frame's call_inst refers to an instruction in the
        // caller's function, which is the previous frame's func.
        let mut frames: Vec<InstRef> = Vec::with_capacity(t.frames.len());
        for i in 1..t.frames.len() {
            let caller_func = t.frames[i - 1].func;
            if let Some(ci) = t.frames[i].call_inst {
                frames.push(InstRef::new(caller_func, ci));
            }
        }
        let stack: CallStack = Arc::from(frames.into_boxed_slice());
        t.stack_cache = Some(Arc::clone(&stack));
        stack
    }

    fn invalidate_stack(&mut self, tid: ThreadId) {
        self.threads[tid.index()].stack_cache = None;
    }

    fn cur_site(&self, tid: ThreadId) -> Option<(InstRef, InstId)> {
        let t = &self.threads[tid.index()];
        let frame = t.frames.last()?;
        let f = self.module.func(frame.func);
        let block = &f.blocks[frame.block.index()];
        let inst_id = *block.insts.get(frame.idx)?;
        Some((InstRef::new(frame.func, inst_id), inst_id))
    }

    fn eval(&self, tid: ThreadId, op: Operand) -> Result<i64, Violation> {
        let frame = self.threads[tid.index()].frames.last().expect("no frame");
        match op {
            Operand::Const(c) => Ok(c),
            Operand::Value(v) => frame.regs[v.index()].ok_or(Violation::UndefinedValue),
            Operand::Param(p) => frame
                .args
                .get(p as usize)
                .copied()
                .ok_or(Violation::UndefinedValue),
        }
    }

    fn set_reg(&mut self, tid: ThreadId, inst: InstId, val: i64) {
        let frame = self.threads[tid.index()]
            .frames
            .last_mut()
            .expect("no frame");
        frame.regs[inst.index()] = Some(val);
    }

    fn record_violation(&mut self, tid: ThreadId, v: Violation, site: InstRef) -> bool {
        let stack = self.call_stack(tid);
        self.outcome.violations.push(ViolationRecord {
            violation: v,
            tid,
            site,
            stack,
            step: self.step,
        });
        if v.is_fatal() {
            self.finish_thread(tid, None);
            true
        } else {
            false
        }
    }

    fn finish_thread(&mut self, tid: ThreadId, ret: Option<i64>) {
        self.threads[tid.index()].state = ThreadState::Finished;
        self.threads[tid.index()].frames.clear();
        if tid == ThreadId::MAIN {
            self.outcome.return_value = ret;
        }
        // Wake joiners.
        for t in self.threads.iter_mut() {
            if t.state == (ThreadState::Joining { child: tid }) {
                t.state = ThreadState::Runnable;
            }
        }
    }

    fn emit(&mut self, sink: &mut dyn TraceSink, tid: ThreadId, site: InstRef, kind: EventKind) {
        let stack = self.call_stack(tid);
        // The elision map only ever contains plain load/store sites,
        // so the stamp lands exclusively on their Read/Write events.
        let no_shadow = matches!(kind, EventKind::Read { .. } | EventKind::Write { .. })
            && self.elided.as_ref().is_some_and(|s| s.contains(&site));
        sink.on_event_owned(TraceEvent {
            step: self.step,
            tid,
            site,
            stack,
            kind,
            no_shadow,
        });
    }

    /// Computes the pending access for breakpoint hints (side-effect
    /// free).
    fn pending_access(&self, tid: ThreadId, inst: &Inst) -> Option<PendingAccess> {
        let eval = |op: Operand| self.eval(tid, op).ok();
        match inst {
            Inst::Load { addr, ty } => {
                let a = eval(*addr)? as u64;
                Some(PendingAccess {
                    addr: a,
                    is_write: false,
                    value_to_write: None,
                    current_value: self.mem.read_raw(a),
                    ty: *ty,
                })
            }
            Inst::AtomicLoad { addr } => {
                let a = eval(*addr)? as u64;
                Some(PendingAccess {
                    addr: a,
                    is_write: false,
                    value_to_write: None,
                    current_value: self.mem.read_raw(a),
                    ty: Type::I64,
                })
            }
            Inst::Store { addr, val } | Inst::AtomicStore { addr, val } => {
                let a = eval(*addr)? as u64;
                Some(PendingAccess {
                    addr: a,
                    is_write: true,
                    value_to_write: eval(*val),
                    current_value: self.mem.read_raw(a),
                    ty: Type::I64,
                })
            }
            Inst::MemCopy { dst, .. } => {
                let a = eval(*dst)? as u64;
                Some(PendingAccess {
                    addr: a,
                    is_write: true,
                    value_to_write: None,
                    current_value: self.mem.read_raw(a),
                    ty: Type::Ptr,
                })
            }
            Inst::Free { ptr } => {
                let a = eval(*ptr)? as u64;
                Some(PendingAccess {
                    addr: a,
                    is_write: true,
                    value_to_write: None,
                    current_value: self.mem.read_raw(a),
                    ty: Type::Ptr,
                })
            }
            _ => None,
        }
    }

    /// Enters `target` block in the current frame: evaluates leading
    /// phis (simultaneously) and positions `idx` after them.
    fn enter_block(&mut self, tid: ThreadId, target: BlockId) {
        let from = {
            let frame = self.threads[tid.index()].frames.last().expect("no frame");
            frame.block
        };
        let func_id = self.threads[tid.index()].frames.last().unwrap().func;
        let f = self.module.func(func_id);
        let block = &f.blocks[target.index()];
        // Gather leading phi assignments first (simultaneous semantics).
        let mut assigns: Vec<(InstId, i64)> = Vec::new();
        let mut lead = 0usize;
        for &iid in &block.insts {
            if let Inst::Phi { incoming } = f.inst(iid) {
                lead += 1;
                let val = incoming
                    .iter()
                    .find(|(b, _)| *b == from)
                    .map(|(_, v)| *v)
                    .unwrap_or(Operand::Const(0));
                let v = self.eval(tid, val).unwrap_or(0);
                assigns.push((iid, v));
            } else {
                break;
            }
        }
        let frame = self.threads[tid.index()]
            .frames
            .last_mut()
            .expect("no frame");
        for (iid, v) in assigns {
            frame.regs[iid.index()] = Some(v);
        }
        frame.block = target;
        frame.idx = lead;
    }

    /// Executes one instruction of `tid` (or suspends at a breakpoint).
    fn exec_one(
        &mut self,
        tid: ThreadId,
        sink: &mut dyn TraceSink,
        controller: &mut dyn Controller,
    ) {
        let Some((site, inst_id)) = self.cur_site(tid) else {
            // Block exhausted without a terminator: structurally invalid,
            // but fail soft.
            self.finish_thread(tid, None);
            return;
        };
        let inst = self.module.inst(site).clone();

        // Breakpoint check (before execution).
        let skip = std::mem::replace(&mut self.threads[tid.index()].skip_bp, false);
        if !skip && self.breakpoints.iter().any(|b| b.matches(site, tid)) {
            // Dropped-hit fault: the controller never hears about this
            // match; execution falls through as if nothing was armed.
            if self.faults.fire_drop_bp(self.step) {
                self.faults
                    .record(FaultKind::DroppedBreakpoint, self.step, Some(tid), Some(site));
                self.emit(
                    sink,
                    tid,
                    site,
                    EventKind::Fault {
                        kind: FaultKind::DroppedBreakpoint,
                    },
                );
            } else {
                let hit = Suspension {
                    tid,
                    site,
                    access: self.pending_access(tid, &inst),
                    stack: self.call_stack(tid),
                    step: self.step,
                };
                let mut resume = Vec::new();
                let decision = {
                    let mut world = BreakWorld {
                        suspended: &self.suspended,
                        breakpoints: &mut self.breakpoints,
                        resume: &mut resume,
                    };
                    controller.on_break(&mut world, &hit)
                };
                match decision {
                    BreakDecision::Suspend => {
                        self.threads[tid.index()].state = ThreadState::Suspended;
                        self.suspended.insert(tid, hit);
                        for r in resume {
                            self.resume_thread(r);
                        }
                        return;
                    }
                    BreakDecision::Continue => {
                        for r in resume {
                            self.resume_thread(r);
                        }
                        // Fall through and execute now.
                    }
                }
            }
        }

        // Helper macro-ish closures are awkward with borrowck; do it
        // longhand.
        macro_rules! eval {
            ($op:expr) => {
                match self.eval(tid, $op) {
                    Ok(v) => v,
                    Err(v) => {
                        self.record_violation(tid, v, site);
                        return;
                    }
                }
            };
        }
        macro_rules! advance {
            () => {{
                let frame = self.threads[tid.index()].frames.last_mut().unwrap();
                frame.idx += 1;
            }};
        }

        match inst {
            Inst::Bin { op, a, b } => {
                let x = eval!(a);
                let y = eval!(b);
                let r = match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::SubU => {
                        let (r, wrapped) = (x as u64).overflowing_sub(y as u64);
                        if wrapped {
                            self.record_violation(
                                tid,
                                Violation::IntegerUnderflow { a: x, b: y },
                                site,
                            );
                        }
                        r as i64
                    }
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::Div => {
                        if y == 0 {
                            self.record_violation(tid, Violation::DivByZero, site);
                            return;
                        }
                        x.wrapping_div(y)
                    }
                    BinOp::Rem => {
                        if y == 0 {
                            self.record_violation(tid, Violation::DivByZero, site);
                            return;
                        }
                        x.wrapping_rem(y)
                    }
                    BinOp::And => x & y,
                    BinOp::Or => x | y,
                    BinOp::Xor => x ^ y,
                };
                self.set_reg(tid, inst_id, r);
                advance!();
            }
            Inst::Cmp { pred, a, b } => {
                let x = eval!(a);
                let y = eval!(b);
                let r = match pred {
                    Pred::Eq => x == y,
                    Pred::Ne => x != y,
                    Pred::Lt => x < y,
                    Pred::Le => x <= y,
                    Pred::Gt => x > y,
                    Pred::Ge => x >= y,
                    Pred::LtU => (x as u64) < (y as u64),
                };
                self.set_reg(tid, inst_id, i64::from(r));
                advance!();
            }
            Inst::GlobalAddr(g) => {
                let a = self.mem.global_addr(g) as i64;
                self.set_reg(tid, inst_id, a);
                advance!();
            }
            Inst::FuncAddr(f) => {
                self.set_reg(tid, inst_id, (FUNCPTR_BASE + f.0 as u64) as i64);
                advance!();
            }
            Inst::Alloca { size } => {
                let a = self.mem.alloca(tid.0, u64::from(size));
                self.set_reg(tid, inst_id, a as i64);
                advance!();
            }
            Inst::Malloc { size } => {
                let s = eval!(size).clamp(1, 1 << 20) as u64;
                let a = self.mem.malloc(s);
                self.emit(sink, tid, site, EventKind::Malloc { addr: a, size: s });
                self.set_reg(tid, inst_id, a as i64);
                advance!();
            }
            Inst::Free { ptr } => {
                let a = eval!(ptr) as u64;
                match self.mem.free(a) {
                    Ok(()) => {
                        self.emit(sink, tid, site, EventKind::Free { addr: a });
                    }
                    Err(MemError::DoubleFree { addr }) => {
                        self.record_violation(tid, Violation::DoubleFree { addr }, site);
                    }
                    Err(_) => {
                        self.record_violation(tid, Violation::InvalidFree { addr: a }, site);
                    }
                }
                advance!();
            }
            Inst::Load { addr, ty } => {
                let a = eval!(addr) as u64;
                // Injected memory fault: the load fails as a wild
                // access before touching memory.
                if self.faults.fire_mem(self.step) {
                    self.faults
                        .record(FaultKind::MemFault, self.step, Some(tid), Some(site));
                    self.emit(
                        sink,
                        tid,
                        site,
                        EventKind::Fault {
                            kind: FaultKind::MemFault,
                        },
                    );
                    self.record_violation(tid, Violation::WildAccess { addr: a }, site);
                    return;
                }
                let shared = self.mem.is_shared(a);
                match self.mem.read(a) {
                    Ok(v) => {
                        if shared {
                            self.emit(
                                sink,
                                tid,
                                site,
                                EventKind::Read {
                                    addr: a,
                                    value: v,
                                    ty,
                                    atomic: false,
                                },
                            );
                        }
                        self.set_reg(tid, inst_id, v);
                        advance!();
                    }
                    Err(MemError::UseAfterFree { addr, region_base }) => {
                        self.record_violation(
                            tid,
                            Violation::UseAfterFree { addr, region_base },
                            site,
                        );
                        let v = self.mem.read_raw(a).unwrap_or(0);
                        if shared {
                            self.emit(
                                sink,
                                tid,
                                site,
                                EventKind::Read {
                                    addr: a,
                                    value: v,
                                    ty,
                                    atomic: false,
                                },
                            );
                        }
                        self.set_reg(tid, inst_id, v);
                        advance!();
                    }
                    Err(MemError::Null { addr }) => {
                        self.record_violation(tid, Violation::NullDeref { addr }, site);
                    }
                    Err(_) => {
                        self.record_violation(tid, Violation::WildAccess { addr: a }, site);
                    }
                }
            }
            Inst::Store { addr, val } => {
                let a = eval!(addr) as u64;
                let v = eval!(val);
                // Injected memory fault: the store fails as a wild
                // access before touching memory.
                if self.faults.fire_mem(self.step) {
                    self.faults
                        .record(FaultKind::MemFault, self.step, Some(tid), Some(site));
                    self.emit(
                        sink,
                        tid,
                        site,
                        EventKind::Fault {
                            kind: FaultKind::MemFault,
                        },
                    );
                    self.record_violation(tid, Violation::WildAccess { addr: a }, site);
                    return;
                }
                let shared = self.mem.is_shared(a);
                let old = self.mem.read_raw(a).unwrap_or(0);
                match self.mem.write(a, v) {
                    Ok(()) => {
                        if shared {
                            self.emit(
                                sink,
                                tid,
                                site,
                                EventKind::Write {
                                    addr: a,
                                    value: v,
                                    old,
                                    atomic: false,
                                },
                            );
                        }
                        advance!();
                    }
                    Err(MemError::UseAfterFree { addr, region_base }) => {
                        self.record_violation(
                            tid,
                            Violation::UseAfterFree { addr, region_base },
                            site,
                        );
                        if shared {
                            self.emit(
                                sink,
                                tid,
                                site,
                                EventKind::Write {
                                    addr: a,
                                    value: v,
                                    old,
                                    atomic: false,
                                },
                            );
                        }
                        advance!();
                    }
                    Err(MemError::Null { addr }) => {
                        self.record_violation(tid, Violation::NullDeref { addr }, site);
                    }
                    Err(_) => {
                        self.record_violation(tid, Violation::WildAccess { addr: a }, site);
                    }
                }
            }
            Inst::CondWait { cond, mutex } => {
                let cv = eval!(cond) as u64;
                let m = eval!(mutex) as u64;
                if self.threads[tid.index()].cond_reacquire {
                    // Phase 2 (after a signal): re-acquire the mutex.
                    let ms = self.mutexes.entry(m).or_insert(MutexState { owner: None });
                    match ms.owner {
                        None => {
                            ms.owner = Some(tid);
                            self.emit(sink, tid, site, EventKind::Lock { addr: m });
                            let t = &mut self.threads[tid.index()];
                            t.cond_reacquire = false;
                            t.frames.last_mut().unwrap().idx += 1;
                        }
                        Some(_) => {
                            self.threads[tid.index()].state = ThreadState::Blocked { mutex: m };
                        }
                    }
                } else {
                    // Phase 1: release the mutex (when held) and sleep.
                    if let Some(ms) = self.mutexes.get_mut(&m) {
                        if ms.owner == Some(tid) {
                            ms.owner = None;
                            self.emit(sink, tid, site, EventKind::Unlock { addr: m });
                            for th in self.threads.iter_mut() {
                                if th.state == (ThreadState::Blocked { mutex: m }) {
                                    th.state = ThreadState::Runnable;
                                }
                            }
                        }
                    }
                    let t = &mut self.threads[tid.index()];
                    t.state = ThreadState::WaitingCond { cv };
                    t.cond_reacquire = true;
                    // idx stays: the wake re-executes this instruction in
                    // phase 2.
                }
            }
            Inst::CondSignal { cond } => {
                let cv = eval!(cond) as u64;
                if let Some(t) = self
                    .threads
                    .iter_mut()
                    .find(|t| t.state == (ThreadState::WaitingCond { cv }))
                {
                    t.state = ThreadState::Runnable;
                }
                advance!();
            }
            Inst::CondBroadcast { cond } => {
                let cv = eval!(cond) as u64;
                for t in self.threads.iter_mut() {
                    if t.state == (ThreadState::WaitingCond { cv }) {
                        t.state = ThreadState::Runnable;
                    }
                }
                advance!();
            }
            Inst::AtomicLoad { addr } => {
                let a = eval!(addr) as u64;
                match self.mem.read(a) {
                    Ok(v) => {
                        self.emit(
                            sink,
                            tid,
                            site,
                            EventKind::Read {
                                addr: a,
                                value: v,
                                ty: Type::I64,
                                atomic: true,
                            },
                        );
                        self.set_reg(tid, inst_id, v);
                        advance!();
                    }
                    Err(MemError::Null { addr }) => {
                        self.record_violation(tid, Violation::NullDeref { addr }, site);
                    }
                    Err(_) => {
                        self.record_violation(tid, Violation::WildAccess { addr: a }, site);
                    }
                }
            }
            Inst::AtomicStore { addr, val } => {
                let a = eval!(addr) as u64;
                let v = eval!(val);
                let old = self.mem.read_raw(a).unwrap_or(0);
                match self.mem.write(a, v) {
                    Ok(()) => {
                        self.emit(
                            sink,
                            tid,
                            site,
                            EventKind::Write {
                                addr: a,
                                value: v,
                                old,
                                atomic: true,
                            },
                        );
                        advance!();
                    }
                    Err(MemError::Null { addr }) => {
                        self.record_violation(tid, Violation::NullDeref { addr }, site);
                    }
                    Err(_) => {
                        self.record_violation(tid, Violation::WildAccess { addr: a }, site);
                    }
                }
            }
            Inst::Gep { base, offset } => {
                let b = eval!(base);
                let o = eval!(offset);
                self.set_reg(tid, inst_id, b.wrapping_add(o));
                advance!();
            }
            Inst::Br {
                cond,
                then_bb,
                else_bb,
            } => {
                let c = eval!(cond);
                let target = if c != 0 { then_bb } else { else_bb };
                self.enter_block(tid, target);
            }
            Inst::Jmp(target) => {
                self.enter_block(tid, target);
            }
            Inst::Ret(v) => {
                let val = match v {
                    Some(op) => Some(eval!(op)),
                    None => None,
                };
                let t = &mut self.threads[tid.index()];
                let done = t.frames.pop().expect("ret without frame");
                self.invalidate_stack(tid);
                let t = &mut self.threads[tid.index()];
                if let Some(parent) = t.frames.last_mut() {
                    if let Some(ci) = done.call_inst {
                        parent.regs[ci.index()] = Some(val.unwrap_or(0));
                    }
                } else {
                    self.finish_thread(tid, val);
                }
            }
            Inst::Call { callee, args } => {
                let mut argv = Vec::with_capacity(args.len());
                for a in &args {
                    argv.push(eval!(*a));
                }
                let target = match callee {
                    Callee::Direct(f) => f,
                    Callee::Indirect(p) => {
                        let v = eval!(p);
                        if v == 0 {
                            self.record_violation(tid, Violation::NullFuncPtr, site);
                            return;
                        }
                        let raw = (v as u64).wrapping_sub(FUNCPTR_BASE);
                        if raw as usize >= self.module.funcs.len() || (v as u64) < FUNCPTR_BASE {
                            self.record_violation(
                                tid,
                                Violation::CorruptFuncPtr { value: v },
                                site,
                            );
                            return;
                        }
                        FuncId(raw as u32)
                    }
                };
                let f = self.module.func(target);
                if !f.is_internal {
                    // External call: no-op returning 0.
                    self.set_reg(tid, inst_id, 0);
                    advance!();
                    return;
                }
                argv.resize(f.num_params as usize, 0);
                // Advance past the call *before* pushing so `ret`
                // resumes after it.
                {
                    let frame = self.threads[tid.index()].frames.last_mut().unwrap();
                    frame.idx += 1;
                }
                let regs = vec![None; f.insts.len()];
                self.threads[tid.index()].frames.push(Frame {
                    func: target,
                    block: BlockId(0),
                    idx: 0,
                    regs,
                    args: argv,
                    call_inst: Some(inst_id),
                });
                self.invalidate_stack(tid);
            }
            Inst::Phi { .. } => {
                // Phis are evaluated at block entry; a stray execution is
                // a no-op.
                advance!();
            }
            Inst::ThreadCreate { func, arg } => {
                let a = eval!(arg);
                let f = self.module.func(func);
                let child = ThreadId(self.threads.len() as u32);
                self.threads.push(Thread {
                    state: ThreadState::Runnable,
                    frames: vec![Frame {
                        func,
                        block: BlockId(0),
                        idx: 0,
                        regs: vec![None; f.insts.len()],
                        args: vec![a],
                        call_inst: None,
                    }],
                    skip_bp: false,
                    cond_reacquire: false,
                    stack_cache: None,
                });
                self.outcome.threads_spawned += 1;
                self.emit(sink, tid, site, EventKind::Fork { child });
                self.set_reg(tid, inst_id, i64::from(child.0));
                advance!();
            }
            Inst::ThreadJoin { tid: t_op } => {
                let raw = eval!(t_op);
                let child = ThreadId(raw.clamp(0, i64::from(u32::MAX)) as u32);
                if child.index() >= self.threads.len() || child == tid {
                    // Joining a bogus thread: no-op.
                    advance!();
                    return;
                }
                if self.threads[child.index()].state == ThreadState::Finished {
                    self.emit(sink, tid, site, EventKind::Join { child });
                    advance!();
                } else {
                    self.threads[tid.index()].state = ThreadState::Joining { child };
                    // idx stays: re-execute join when woken.
                }
            }
            Inst::MutexLock { addr } => {
                let a = eval!(addr) as u64;
                let m = self.mutexes.entry(a).or_insert(MutexState { owner: None });
                match m.owner {
                    None => {
                        m.owner = Some(tid);
                        self.emit(sink, tid, site, EventKind::Lock { addr: a });
                        advance!();
                    }
                    Some(owner) if owner == tid => {
                        // Recursive lock: self-deadlock.
                        self.threads[tid.index()].state = ThreadState::Blocked { mutex: a };
                    }
                    Some(_) => {
                        self.threads[tid.index()].state = ThreadState::Blocked { mutex: a };
                    }
                }
            }
            Inst::MutexUnlock { addr } => {
                let a = eval!(addr) as u64;
                if let Some(m) = self.mutexes.get_mut(&a) {
                    if m.owner == Some(tid) {
                        m.owner = None;
                        self.emit(sink, tid, site, EventKind::Unlock { addr: a });
                        // Wake blocked threads to retry the lock.
                        for t in self.threads.iter_mut() {
                            if t.state == (ThreadState::Blocked { mutex: a }) {
                                t.state = ThreadState::Runnable;
                            }
                        }
                    }
                }
                advance!();
            }
            Inst::Yield => {
                advance!();
            }
            Inst::IoDelay { amount } => {
                let amt = eval!(amount).clamp(0, self.config.io_delay_cap as i64) as u64;
                advance!();
                if amt > 0 {
                    self.threads[tid.index()].state = ThreadState::Delayed {
                        until: self.step + amt,
                    };
                }
            }
            Inst::Input { idx } => {
                let i = eval!(idx);
                let v = self.input.get(i);
                self.set_reg(tid, inst_id, v);
                advance!();
            }
            Inst::Output { chan, val } => {
                let c = eval!(chan);
                let v = eval!(val);
                self.outcome.outputs.push((c, v));
                advance!();
            }
            Inst::MemCopy { dst, src, len } => {
                let d = eval!(dst) as u64;
                let s = eval!(src) as u64;
                let l = eval!(len).clamp(0, 4096) as u64;
                let Some(dst_region) = self.mem.region_of(d) else {
                    self.record_violation(
                        tid,
                        if d < crate::mem::GLOBAL_BASE {
                            Violation::NullDeref { addr: d }
                        } else {
                            Violation::WildAccess { addr: d }
                        },
                        site,
                    );
                    return;
                };
                let dst_end = dst_region.base + dst_region.size;
                let mut flagged_overflow = false;
                for i in 0..l {
                    let sa = s + i;
                    let da = d + i;
                    let v = match self.mem.read(sa) {
                        Ok(v) => v,
                        Err(MemError::UseAfterFree { addr, region_base }) => {
                            self.record_violation(
                                tid,
                                Violation::UseAfterFree { addr, region_base },
                                site,
                            );
                            self.mem.read_raw(sa).unwrap_or(0)
                        }
                        Err(_) => break, // stop at unreadable source
                    };
                    if self.mem.is_shared(sa) {
                        self.emit(
                            sink,
                            tid,
                            site,
                            EventKind::Read {
                                addr: sa,
                                value: v,
                                ty: Type::I64,
                                atomic: false,
                            },
                        );
                    }
                    if da >= dst_end && !flagged_overflow {
                        flagged_overflow = true;
                        self.record_violation(
                            tid,
                            Violation::BufferOverflow {
                                dst: d,
                                first_oob: da,
                            },
                            site,
                        );
                    }
                    let old = self.mem.read_raw(da).unwrap_or(0);
                    match self.mem.write(da, v) {
                        Ok(()) => {
                            if self.mem.is_shared(da) {
                                self.emit(
                                    sink,
                                    tid,
                                    site,
                                    EventKind::Write {
                                        addr: da,
                                        value: v,
                                        old,
                                        atomic: false,
                                    },
                                );
                            }
                        }
                        Err(MemError::UseAfterFree { addr, region_base }) => {
                            self.record_violation(
                                tid,
                                Violation::UseAfterFree { addr, region_base },
                                site,
                            );
                        }
                        Err(_) => {
                            // Out-of-bounds word landed in unmapped
                            // space: drop it (already flagged).
                        }
                    }
                }
                advance!();
            }
            Inst::SetPrivilege { level } => {
                let l = eval!(level);
                self.outcome.privilege = l;
                let step = self.step;
                self.outcome.security.push(SecurityRecord {
                    event: SecurityEvent::Privilege { level: l },
                    tid,
                    site,
                    step,
                });
                advance!();
            }
            Inst::FileAccess { fd, data } => {
                let f = eval!(fd);
                let d = eval!(data);
                self.outcome.files.entry(f).or_default().push(d);
                let step = self.step;
                self.outcome.security.push(SecurityRecord {
                    event: SecurityEvent::FileWrite { fd: f, data: d },
                    tid,
                    site,
                    step,
                });
                advance!();
            }
            Inst::Exec { cmd } => {
                let c = eval!(cmd);
                let step = self.step;
                self.outcome.security.push(SecurityRecord {
                    event: SecurityEvent::Exec { cmd: c },
                    tid,
                    site,
                    step,
                });
                advance!();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{RandomScheduler, RoundRobin};
    use owl_ir::{ModuleBuilder, Operand};

    fn run(m: &Module, entry: FuncId) -> ExecOutcome {
        let mut sched = RoundRobin::default();
        Vm::run_quiet(m, entry, ProgramInput::empty(), &mut sched)
    }

    #[test]
    fn arithmetic_and_output() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(main);
            let x = b.add(2, 3);
            let y = b.bin(BinOp::Mul, x, 4);
            b.output(0, y);
            b.ret(Some(y.into()));
        }
        let m = mb.finish();
        let o = run(&m, main);
        assert_eq!(o.status, ExitStatus::Finished);
        assert_eq!(o.outputs, vec![(0, 20)]);
        assert_eq!(o.return_value, Some(20));
    }

    #[test]
    fn branches_and_inputs() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(main);
            let v = b.input(0);
            let c = b.cmp(Pred::Gt, v, 10);
            let t = b.block();
            let e = b.block();
            b.br(c, t, e);
            b.switch_to(t);
            b.output(1, 100);
            b.ret(None);
            b.switch_to(e);
            b.output(1, 200);
            b.ret(None);
        }
        let m = mb.finish();
        let mut sched = RoundRobin::default();
        let big = Vm::run_quiet(&m, main, ProgramInput::new(vec![50]), &mut sched);
        assert_eq!(big.outputs, vec![(1, 100)]);
        let small = Vm::run_quiet(&m, main, ProgramInput::new(vec![3]), &mut sched);
        assert_eq!(small.outputs, vec![(1, 200)]);
    }

    #[test]
    fn loop_with_phi() {
        // sum = 0; for i in 0..5 { sum += i } ; output sum
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(main);
            let head = b.block();
            let body = b.block();
            let exit = b.block();
            b.jmp(head);
            b.switch_to(head);
            let i = b.phi(vec![]);
            let sum = b.phi(vec![]);
            let c = b.cmp(Pred::Lt, i, 5);
            b.br(c, body, exit);
            b.switch_to(body);
            let i2 = b.add(i, 1);
            let sum2 = b.add(sum, i);
            b.jmp(head);
            b.switch_to(exit);
            b.output(0, sum);
            b.ret(None);
            b.set_phi(
                i,
                vec![(BlockId(0), Operand::Const(0)), (body, Operand::Value(i2))],
            );
            b.set_phi(
                sum,
                vec![
                    (BlockId(0), Operand::Const(0)),
                    (body, Operand::Value(sum2)),
                ],
            );
        }
        let m = mb.finish();
        let o = run(&m, main);
        assert_eq!(o.status, ExitStatus::Finished);
        assert_eq!(o.outputs, vec![(0, 10)]);
    }

    #[test]
    fn calls_and_returns() {
        let mut mb = ModuleBuilder::new("t");
        let sq = mb.declare_func("square", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(sq);
            let r = b.bin(BinOp::Mul, Operand::Param(0), Operand::Param(0));
            b.ret(Some(r.into()));
        }
        {
            let mut b = mb.build_func(main);
            let r = b.call(sq, vec![Operand::Const(7)]);
            b.output(0, r);
            b.ret(None);
        }
        let m = mb.finish();
        let o = run(&m, main);
        assert_eq!(o.outputs, vec![(0, 49)]);
    }

    #[test]
    fn threads_and_join() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global("counter", 1, Type::I64);
        let worker = mb.declare_func("worker", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(worker);
            let a = b.global_addr(g);
            let v = b.atomic_load(a);
            let v2 = b.add(v, Operand::Param(0));
            b.atomic_store(a, v2);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t1 = b.thread_create(worker, 10);
            b.thread_join(t1);
            let t2 = b.thread_create(worker, 5);
            b.thread_join(t2);
            let a = b.global_addr(g);
            let v = b.atomic_load(a);
            b.output(0, v);
            b.ret(None);
        }
        let m = mb.finish();
        let o = run(&m, main);
        assert_eq!(o.status, ExitStatus::Finished);
        assert_eq!(o.outputs, vec![(0, 15)]);
        assert_eq!(o.threads_spawned, 3);
    }

    #[test]
    fn mutex_provides_mutual_exclusion() {
        // Two threads increment a counter 50 times each under a lock;
        // with instruction-level preemption the result is exactly 100
        // only if the lock works.
        let mut mb = ModuleBuilder::new("t");
        let counter = mb.global("counter", 1, Type::I64);
        let lock = mb.global("lock", 1, Type::I64);
        let worker = mb.declare_func("worker", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(worker);
            let head = b.block();
            let body = b.block();
            let exit = b.block();
            b.jmp(head);
            b.switch_to(head);
            let i = b.phi(vec![]);
            let c = b.cmp(Pred::Lt, i, 50);
            b.br(c, body, exit);
            b.switch_to(body);
            let la = b.global_addr(lock);
            b.lock(la);
            let ca = b.global_addr(counter);
            let v = b.load(ca, Type::I64);
            let v2 = b.add(v, 1);
            b.store(ca, v2);
            b.unlock(la);
            let i2 = b.add(i, 1);
            b.jmp(head);
            b.switch_to(exit);
            b.ret(None);
            b.set_phi(
                i,
                vec![(BlockId(0), Operand::Const(0)), (body, Operand::Value(i2))],
            );
        }
        {
            let mut b = mb.build_func(main);
            let t1 = b.thread_create(worker, 0);
            let t2 = b.thread_create(worker, 0);
            b.thread_join(t1);
            b.thread_join(t2);
            let ca = b.global_addr(counter);
            let v = b.load(ca, Type::I64);
            b.output(0, v);
            b.ret(None);
        }
        let m = mb.finish();
        for seed in 0..5 {
            let mut sched = RandomScheduler::new(seed);
            let o = Vm::run_quiet(&m, main, ProgramInput::empty(), &mut sched);
            assert_eq!(o.status, ExitStatus::Finished, "seed {seed}");
            assert_eq!(o.outputs, vec![(0, 100)], "seed {seed}");
        }
    }

    #[test]
    fn null_deref_kills_thread() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(main);
            b.load(Operand::Const(0), Type::I64);
            b.output(0, 1); // unreachable
            b.ret(None);
        }
        let m = mb.finish();
        let o = run(&m, main);
        assert_eq!(o.status, ExitStatus::Finished);
        assert!(o.any_violation(|v| matches!(v, Violation::NullDeref { .. })));
        assert!(o.outputs.is_empty());
    }

    #[test]
    fn heap_uaf_and_double_free_detected() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(main);
            let p = b.malloc(4);
            b.store(p, 42);
            b.free(p);
            let v = b.load(p, Type::I64); // UAF read of stale 42
            b.output(0, v);
            b.free(p); // double free
            b.ret(None);
        }
        let m = mb.finish();
        let o = run(&m, main);
        assert!(o.any_violation(|v| matches!(v, Violation::UseAfterFree { .. })));
        assert!(o.any_violation(|v| matches!(v, Violation::DoubleFree { .. })));
        assert_eq!(o.outputs, vec![(0, 42)]);
    }

    #[test]
    fn buffer_overflow_corrupts_adjacent_global() {
        // Mirror of the Apache-25520 mechanism.
        let mut mb = ModuleBuilder::new("t");
        let buf = mb.global("buf", 2, Type::I64);
        let fd = mb.global_init("fd", 1, vec![7], Type::I64);
        let src = mb.global_init("src", 3, vec![11, 22, 33], Type::I64);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(main);
            let d = b.global_addr(buf);
            let s = b.global_addr(src);
            b.memcopy(d, s, 3); // one word past `buf`, into `fd`
            let fa = b.global_addr(fd);
            let v = b.load(fa, Type::I64);
            b.output(0, v);
            b.ret(None);
        }
        let m = mb.finish();
        let o = run(&m, main);
        assert!(o.any_violation(|v| matches!(v, Violation::BufferOverflow { .. })));
        assert_eq!(o.outputs, vec![(0, 33)], "fd corrupted by the overflow");
    }

    #[test]
    fn unsigned_underflow_flagged_and_wraps() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(main);
            let r = b.sub_unsigned(0, 1);
            b.output(0, r);
            b.ret(None);
        }
        let m = mb.finish();
        let o = run(&m, main);
        assert!(o.any_violation(|v| matches!(v, Violation::IntegerUnderflow { .. })));
        assert_eq!(o.outputs, vec![(0, -1)]); // 2^64 - 1 as i64
    }

    #[test]
    fn null_and_corrupt_func_ptr() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(main);
            b.call_indirect(Operand::Const(0), vec![]);
            b.ret(None);
        }
        let m = mb.finish();
        let o = run(&m, main);
        assert!(o.any_violation(|v| matches!(v, Violation::NullFuncPtr)));

        let mut mb = ModuleBuilder::new("t2");
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(main);
            b.call_indirect(Operand::Const(0x1234), vec![]);
            b.ret(None);
        }
        let m = mb.finish();
        let o = run(&m, main);
        assert!(o.any_violation(|v| matches!(v, Violation::CorruptFuncPtr { .. })));
    }

    #[test]
    fn deadlock_detected() {
        let mut mb = ModuleBuilder::new("t");
        let l = mb.global("l", 1, Type::I64);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(main);
            let la = b.global_addr(l);
            b.lock(la);
            b.lock(la); // self-deadlock
            b.ret(None);
        }
        let m = mb.finish();
        let o = run(&m, main);
        assert_eq!(o.status, ExitStatus::Deadlock);
    }

    #[test]
    fn io_delay_defers_thread() {
        let mut mb = ModuleBuilder::new("t");
        let worker = mb.declare_func("worker", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(worker);
            b.output(0, 1);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t = b.thread_create(worker, 0);
            b.io_delay(100);
            b.output(0, 2);
            b.thread_join(t);
            b.ret(None);
        }
        let m = mb.finish();
        // Round-robin with large quantum would run main first; the delay
        // forces the worker's output to come first.
        let mut sched = RoundRobin::new(1000);
        let o = Vm::run_quiet(&m, main, ProgramInput::empty(), &mut sched);
        assert_eq!(o.outputs, vec![(0, 1), (0, 2)]);
    }

    #[test]
    fn security_records_captured() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(main);
            b.set_privilege(0);
            b.file_access(5, 77);
            b.exec(99);
            b.ret(None);
        }
        let m = mb.finish();
        let o = run(&m, main);
        assert_eq!(o.privilege, 0);
        assert_eq!(o.file(5), &[77]);
        assert!(o.executed(99));
        assert_eq!(o.security.len(), 3);
    }

    #[test]
    fn schedule_replay_reproduces_outputs() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global("g", 1, Type::I64);
        let worker = mb.declare_func("worker", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(worker);
            let a = b.global_addr(g);
            b.store(a, Operand::Param(0));
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t1 = b.thread_create(worker, 1);
            let t2 = b.thread_create(worker, 2);
            b.thread_join(t1);
            b.thread_join(t2);
            let a = b.global_addr(g);
            let v = b.load(a, Type::I64);
            b.output(0, v);
            b.ret(None);
        }
        let m = mb.finish();
        let mut sched = RandomScheduler::new(99);
        let o1 = Vm::run_quiet(&m, main, ProgramInput::empty(), &mut sched);
        let mut replay = crate::sched::ReplayScheduler::new(o1.schedule.clone());
        let o2 = Vm::run_quiet(&m, main, ProgramInput::empty(), &mut replay);
        assert_eq!(o1.outputs, o2.outputs);
        assert_eq!(replay.divergences, 0);
    }

    #[test]
    fn external_calls_are_noops() {
        let mut mb = ModuleBuilder::new("t");
        let ext = mb.declare_external("write", 2);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(main);
            let r = b.call(ext, vec![Operand::Const(1), Operand::Const(2)]);
            b.output(0, r);
            b.ret(None);
        }
        let m = mb.finish();
        let o = run(&m, main);
        assert_eq!(o.outputs, vec![(0, 0)]);
    }

    #[test]
    fn step_limit_halts_infinite_loop() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(main);
            let l = b.block();
            b.jmp(l);
            b.switch_to(l);
            b.jmp(l);
        }
        let m = mb.finish();
        let mut sched = RoundRobin::default();
        let cfg = RunConfig {
            max_steps: 1000,
            ..RunConfig::default()
        };
        let o = Vm::new(&m, main, ProgramInput::empty(), cfg).run(&mut sched, &mut NullSink);
        assert_eq!(o.status, ExitStatus::StepLimit);
        assert_eq!(o.steps, 1000);
    }
}
