//! Eraser-style lockset race detection (baseline).
//!
//! Lockset analysis flags any shared variable not consistently
//! protected by at least one common lock (one report per variable). It
//! needs no happens-before reasoning, which makes it cheap — and
//! notoriously over-approximate: fork/join ordering, atomics, and
//! initialization patterns all become false positives. The ablation
//! bench uses it to show the trade-off: fewer raw reports than
//! happens-before (per-variable dedup) but systematic false positives
//! on perfectly ordered programs.

use crate::report::{Access, RaceReport};
use owl_ir::{InstRef, Type};
use owl_vm::{EventKind, ThreadId, TraceEvent, TraceSink};
use std::collections::{BTreeSet, HashMap, HashSet};

#[derive(Clone, Debug, PartialEq)]
enum VarState {
    /// Only ever touched by one thread so far.
    Exclusive { tid: ThreadId, first: Access },
    /// Shared read-only.
    Shared {
        candidate: BTreeSet<u64>,
        first: Access,
    },
    /// Shared and written.
    SharedModified {
        candidate: BTreeSet<u64>,
        first: Access,
    },
    /// Already reported.
    Reported,
}

/// Eraser-like detector over VM traces.
#[derive(Clone, Debug, Default)]
pub struct LocksetDetector {
    held: HashMap<ThreadId, BTreeSet<u64>>,
    vars: HashMap<u64, VarState>,
    reported: HashSet<(InstRef, InstRef)>,
    reports: Vec<RaceReport>,
}

impl LocksetDetector {
    /// Creates a detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reports accumulated so far.
    pub fn reports(&self) -> &[RaceReport] {
        &self.reports
    }

    /// Consumes the detector, returning its reports.
    pub fn into_reports(self) -> Vec<RaceReport> {
        self.reports
    }

    fn held(&self, t: ThreadId) -> BTreeSet<u64> {
        self.held.get(&t).cloned().unwrap_or_default()
    }

    fn access(&mut self, ev: &TraceEvent, addr: u64, is_write: bool, value: i64, ty: Type) {
        let access = Access {
            tid: ev.tid,
            site: ev.site,
            stack: ev.stack.clone(),
            is_write,
            value,
            ty,
        };
        let held = self.held(ev.tid);
        let old = self.vars.remove(&addr).unwrap_or(VarState::Exclusive {
            tid: ev.tid,
            first: access.clone(),
        });
        let mut report_against: Option<Access> = None;
        let new = match old {
            VarState::Exclusive { tid, first } if tid == ev.tid => {
                VarState::Exclusive { tid, first }
            }
            VarState::Exclusive { first, .. } => {
                // Second thread arrives: candidate set = its held locks.
                if !is_write && !first.is_write {
                    VarState::Shared {
                        candidate: held,
                        first,
                    }
                } else if held.is_empty() {
                    report_against = Some(first.clone());
                    VarState::Reported
                } else {
                    VarState::SharedModified {
                        candidate: held,
                        first,
                    }
                }
            }
            VarState::Shared { candidate, first } => {
                let candidate: BTreeSet<u64> = candidate.intersection(&held).copied().collect();
                if is_write && candidate.is_empty() {
                    report_against = Some(first.clone());
                    VarState::Reported
                } else if is_write {
                    VarState::SharedModified { candidate, first }
                } else {
                    VarState::Shared { candidate, first }
                }
            }
            VarState::SharedModified { candidate, first } => {
                let candidate: BTreeSet<u64> = candidate.intersection(&held).copied().collect();
                if candidate.is_empty() {
                    report_against = Some(first.clone());
                    VarState::Reported
                } else {
                    VarState::SharedModified { candidate, first }
                }
            }
            VarState::Reported => VarState::Reported,
        };
        self.vars.insert(addr, new);
        if let Some(first) = report_against {
            let key = {
                let (a, b) = (first.site, access.site);
                if a <= b {
                    (a, b)
                } else {
                    (b, a)
                }
            };
            if self.reported.insert(key) {
                self.reports.push(RaceReport {
                    addr,
                    global_name: None,
                    first,
                    second: access,
                    read_hint: None,
                });
            }
        }
    }
}

impl TraceSink for LocksetDetector {
    fn on_event(&mut self, ev: &TraceEvent) {
        match ev.kind {
            EventKind::Read {
                addr,
                value,
                ty,
                atomic: false,
            } => self.access(ev, addr, false, value, ty),
            EventKind::Write {
                addr,
                value,
                atomic: false,
                ..
            } => self.access(ev, addr, true, value, Type::I64),
            EventKind::Lock { addr } => {
                self.held.entry(ev.tid).or_default().insert(addr);
            }
            EventKind::Unlock { addr } => {
                self.held.entry(ev.tid).or_default().remove(&addr);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_ir::{Module, ModuleBuilder};
    use owl_vm::{ProgramInput, RoundRobin, Vm};

    fn run(m: &Module, entry: owl_ir::FuncId) -> Vec<RaceReport> {
        let mut det = LocksetDetector::new();
        let mut sched = RoundRobin::new(2);
        let vm = Vm::new(m, entry, ProgramInput::empty(), Default::default());
        let _ = vm.run(&mut sched, &mut det);
        det.into_reports()
    }

    #[test]
    fn flags_unlocked_shared_write() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global("g", 1, Type::I64);
        let w = mb.declare_func("w", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(w);
            let a = b.global_addr(g);
            b.store(a, 1);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t = b.thread_create(w, 0);
            let a = b.global_addr(g);
            b.store(a, 2);
            b.thread_join(t);
            b.ret(None);
        }
        let m = mb.finish();
        let main_id = m.func_by_name("main").unwrap();
        assert_eq!(run(&m, main_id).len(), 1);
    }

    #[test]
    fn consistent_locking_is_clean() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global("g", 1, Type::I64);
        let l = mb.global("l", 1, Type::I64);
        let w = mb.declare_func("w", 1);
        let main = mb.declare_func("main", 0);
        for f in [w, main] {
            let is_main = f == main;
            let mut b = mb.build_func(f);
            let t = if is_main {
                Some(b.thread_create(w, 0))
            } else {
                None
            };
            let la = b.global_addr(l);
            b.lock(la);
            let a = b.global_addr(g);
            let v = b.load(a, Type::I64);
            let v2 = b.add(v, 1);
            b.store(a, v2);
            b.unlock(la);
            if let Some(t) = t {
                b.thread_join(t);
            }
            b.ret(None);
        }
        let m = mb.finish();
        let main_id = m.func_by_name("main").unwrap();
        assert!(run(&m, main_id).is_empty());
    }

    #[test]
    fn fork_join_is_a_false_positive_for_lockset() {
        // Properly fork/join-ordered accesses still get flagged: the
        // baseline's characteristic over-report.
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global("g", 1, Type::I64);
        let w = mb.declare_func("w", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(w);
            let a = b.global_addr(g);
            b.store(a, 1);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t = b.thread_create(w, 0);
            b.thread_join(t);
            let a = b.global_addr(g);
            b.store(a, 2); // ordered by join, but lockset cannot see it
            b.ret(None);
        }
        let m = mb.finish();
        let main_id = m.func_by_name("main").unwrap();
        assert_eq!(run(&m, main_id).len(), 1);
    }
}
