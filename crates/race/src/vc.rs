//! Vector clocks.
//!
//! The happens-before detector tracks one clock per thread plus release
//! clocks per mutex/atomic cell — the same theory ThreadSanitizer
//! implements. Full clocks back the reference backend; the default
//! detector path stores FastTrack-style `(thread, clock)` epochs per
//! shadow cell instead (see the `epoch` module and
//! [`crate::EpochStats`]) and only consults whole vectors at
//! synchronization points.

use owl_vm::ThreadId;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A vector clock over thread ids.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VectorClock(Vec<u64>);

impl VectorClock {
    /// The zero clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// The component for `t`.
    pub fn get(&self, t: ThreadId) -> u64 {
        self.0.get(t.index()).copied().unwrap_or(0)
    }

    /// Sets the component for `t`.
    pub fn set(&mut self, t: ThreadId, v: u64) {
        if self.0.len() <= t.index() {
            self.0.resize(t.index() + 1, 0);
        }
        self.0[t.index()] = v;
    }

    /// Increments the component for `t`.
    pub fn tick(&mut self, t: ThreadId) {
        let v = self.get(t);
        self.set(t, v + 1);
    }

    /// Pointwise maximum with `other` (the join of the HB lattice).
    pub fn join(&mut self, other: &VectorClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }

    /// Pointwise minimum with `other` (the meet of the HB lattice).
    /// Components missing from either clock read as zero, so the
    /// result is truncated to the shorter clock's knowledge — exactly
    /// the conservative behavior shadow-state GC wants: an access is
    /// only reclaimable when *every* live thread provably knows it.
    pub fn meet(&mut self, other: &VectorClock) {
        if self.0.len() > other.0.len() {
            self.0.truncate(other.0.len());
        }
        for (i, v) in self.0.iter_mut().enumerate() {
            let o = other.0[i];
            if o < *v {
                *v = o;
            }
        }
    }

    /// Whether `self ≤ other` pointwise — i.e. every event in `self`
    /// happens-before (or is) the knowledge in `other`.
    pub fn le(&self, other: &VectorClock) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= other.0.get(i).copied().unwrap_or(0))
    }

    /// Whether the two clocks are ordered neither way (concurrent).
    pub fn concurrent(&self, other: &VectorClock) -> bool {
        !self.le(other) && !other.le(self)
    }

    /// Partial-order comparison (`None` when concurrent).
    pub fn partial_cmp_hb(&self, other: &VectorClock) -> Option<Ordering> {
        match (self.le(other), other.le(self)) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_order() {
        let mut a = VectorClock::new();
        a.set(ThreadId(0), 3);
        let mut b = VectorClock::new();
        b.set(ThreadId(1), 2);
        assert!(a.concurrent(&b));
        let mut j = a.clone();
        j.join(&b);
        assert!(a.le(&j));
        assert!(b.le(&j));
        assert_eq!(j.get(ThreadId(0)), 3);
        assert_eq!(j.get(ThreadId(1)), 2);
    }

    #[test]
    fn tick_advances_only_own_component() {
        let mut a = VectorClock::new();
        a.tick(ThreadId(2));
        a.tick(ThreadId(2));
        assert_eq!(a.get(ThreadId(2)), 2);
        assert_eq!(a.get(ThreadId(0)), 0);
    }

    #[test]
    fn partial_order_classification() {
        let mut a = VectorClock::new();
        a.set(ThreadId(0), 1);
        let mut b = a.clone();
        b.set(ThreadId(0), 2);
        assert_eq!(a.partial_cmp_hb(&b), Some(Ordering::Less));
        assert_eq!(b.partial_cmp_hb(&a), Some(Ordering::Greater));
        assert_eq!(a.partial_cmp_hb(&a), Some(Ordering::Equal));
        let mut c = VectorClock::new();
        c.set(ThreadId(1), 1);
        assert_eq!(a.partial_cmp_hb(&c), None);
    }

    #[test]
    fn missing_components_read_zero() {
        let a = VectorClock::new();
        assert_eq!(a.get(ThreadId(9)), 0);
        let mut b = VectorClock::new();
        b.set(ThreadId(0), 1);
        assert!(a.le(&b));
    }
}
