//! Trace spill segments — the streaming pipeline's disk layer.
//!
//! When a unit's in-flight event window exceeds `--max-trace-mem`, the
//! explorer writes the cold window to a *segment* file and immediately
//! replays it into the detector, bounding resident memory by the spill
//! threshold instead of the trace length. Segments use the same
//! checksummed line discipline as `owl::journal` — one
//! `{"crc":"<16 hex>","rec":"<payload>"}` record per line, FNV-1a/64
//! over the payload — so a process death mid-write leaves at most one
//! torn tail line, which [`recover_segment`] truncates on reopen
//! exactly like the campaign journal does.
//!
//! The record payload is a hex-encoded fixed-width binary event (not
//! JSON): segments are written and read back within one unit and never
//! interpreted by humans, so the codec optimizes for size and
//! deterministic byte layout. Encoding depends only on the event
//! contents, never on thread timing, which keeps spill behavior (and
//! therefore the whole streaming pipeline) reproducible for a given
//! schedule seed.
//!
//! Crash injection: a [`SpillKillSwitch`] armed with *kill after N
//! appends* makes the writer die — flush a torn half-line, then panic
//! with the shared [`JournalKilled`] payload — simulating `SIGKILL`
//! mid-spill for the crash-recovery suite.

use owl_ir::{FuncId, InstId, InstRef, Type};
use owl_vm::{EventKind, FaultKind, JournalKilled, ThreadId, TraceEvent, TraceSink};
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Typed spill-layer failure. Everything here flows into the streaming
/// pipeline's degradation ladder — the unit aborts with a typed
/// verdict and the campaign quarantines-and-continues — instead of
/// panicking in (and poisoning) the consumer thread.
#[derive(Debug)]
pub enum SpillError {
    /// An event's call stack exceeds the codec's `u32` frame-count
    /// field and cannot be represented in a segment record.
    StackTooDeep {
        /// Observed frame count.
        frames: usize,
    },
    /// The underlying segment file operation failed.
    Io(io::Error),
}

impl std::fmt::Display for SpillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpillError::StackTooDeep { frames } => {
                write!(f, "call stack of {frames} frames exceeds the spill codec limit")
            }
            SpillError::Io(e) => write!(f, "spill segment I/O failed: {e}"),
        }
    }
}

impl std::error::Error for SpillError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpillError::StackTooDeep { .. } => None,
            SpillError::Io(e) => Some(e),
        }
    }
}

impl From<io::Error> for SpillError {
    fn from(e: io::Error) -> Self {
        SpillError::Io(e)
    }
}

/// Approximate resident size of one in-flight event: the inline struct
/// plus its share of the call-stack allocation. The streaming window
/// accounts with this, so `--max-trace-mem` bounds the same quantity a
/// materialized `VecSink` trace would occupy.
pub fn approx_event_bytes(ev: &TraceEvent) -> usize {
    std::mem::size_of::<TraceEvent>() + ev.stack.len() * std::mem::size_of::<InstRef>()
}

// Same parameters as `owl::journal::fnv1a64`; duplicated because the
// core crate depends on this one.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Binary event codec
// ---------------------------------------------------------------------

const TAG_READ: u8 = 0;
const TAG_WRITE: u8 = 1;
const TAG_LOCK: u8 = 2;
const TAG_UNLOCK: u8 = 3;
const TAG_FORK: u8 = 4;
const TAG_JOIN: u8 = 5;
const TAG_MALLOC: u8 = 6;
const TAG_FREE: u8 = 7;
const TAG_FAULT: u8 = 8;

fn encode_type(ty: Type) -> u8 {
    match ty {
        Type::I64 => 0,
        Type::Ptr => 1,
        Type::FuncPtr => 2,
    }
}

fn decode_type(b: u8) -> Option<Type> {
    Some(match b {
        0 => Type::I64,
        1 => Type::Ptr,
        2 => Type::FuncPtr,
        _ => return None,
    })
}

fn encode_fault(k: FaultKind) -> u8 {
    match k {
        FaultKind::MemFault => 0,
        FaultKind::SpuriousWakeup => 1,
        FaultKind::SchedDelay => 2,
        FaultKind::DroppedBreakpoint => 3,
        FaultKind::StepExhaustion => 4,
        FaultKind::JournalKill => 5,
    }
}

fn decode_fault(b: u8) -> Option<FaultKind> {
    Some(match b {
        0 => FaultKind::MemFault,
        1 => FaultKind::SpuriousWakeup,
        2 => FaultKind::SchedDelay,
        3 => FaultKind::DroppedBreakpoint,
        4 => FaultKind::StepExhaustion,
        5 => FaultKind::JournalKill,
        _ => return None,
    })
}

fn push_site(out: &mut Vec<u8>, s: InstRef) {
    out.extend_from_slice(&s.func.0.to_le_bytes());
    out.extend_from_slice(&s.inst.0.to_le_bytes());
}

fn encode_event(ev: &TraceEvent) -> Result<Vec<u8>, SpillError> {
    encode_event_limited(ev, u32::MAX as usize)
}

/// The codec body, with the frame-count ceiling injectable so tests
/// can exercise the [`SpillError::StackTooDeep`] path without building
/// a four-billion-frame stack.
fn encode_event_limited(ev: &TraceEvent, max_frames: usize) -> Result<Vec<u8>, SpillError> {
    if ev.stack.len() > max_frames {
        return Err(SpillError::StackTooDeep {
            frames: ev.stack.len(),
        });
    }
    let mut out = Vec::with_capacity(64 + ev.stack.len() * 8);
    out.extend_from_slice(&ev.step.to_le_bytes());
    out.extend_from_slice(&ev.tid.0.to_le_bytes());
    push_site(&mut out, ev.site);
    out.push(u8::from(ev.no_shadow));
    match ev.kind {
        EventKind::Read {
            addr,
            value,
            ty,
            atomic,
        } => {
            out.push(TAG_READ);
            out.extend_from_slice(&addr.to_le_bytes());
            out.extend_from_slice(&value.to_le_bytes());
            out.push(encode_type(ty));
            out.push(u8::from(atomic));
        }
        EventKind::Write {
            addr,
            value,
            old,
            atomic,
        } => {
            out.push(TAG_WRITE);
            out.extend_from_slice(&addr.to_le_bytes());
            out.extend_from_slice(&value.to_le_bytes());
            out.extend_from_slice(&old.to_le_bytes());
            out.push(u8::from(atomic));
        }
        EventKind::Lock { addr } => {
            out.push(TAG_LOCK);
            out.extend_from_slice(&addr.to_le_bytes());
        }
        EventKind::Unlock { addr } => {
            out.push(TAG_UNLOCK);
            out.extend_from_slice(&addr.to_le_bytes());
        }
        EventKind::Fork { child } => {
            out.push(TAG_FORK);
            out.extend_from_slice(&child.0.to_le_bytes());
        }
        EventKind::Join { child } => {
            out.push(TAG_JOIN);
            out.extend_from_slice(&child.0.to_le_bytes());
        }
        EventKind::Malloc { addr, size } => {
            out.push(TAG_MALLOC);
            out.extend_from_slice(&addr.to_le_bytes());
            out.extend_from_slice(&size.to_le_bytes());
        }
        EventKind::Free { addr } => {
            out.push(TAG_FREE);
            out.extend_from_slice(&addr.to_le_bytes());
        }
        EventKind::Fault { kind } => {
            out.push(TAG_FAULT);
            out.push(encode_fault(kind));
        }
    }
    // Guarded above: `max_frames` never exceeds `u32::MAX`.
    let len = ev.stack.len() as u32;
    out.extend_from_slice(&len.to_le_bytes());
    for s in ev.stack.iter() {
        push_site(&mut out, *s);
    }
    Ok(out)
}

struct Cursor<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.b.get(self.i..self.i + n)?;
        self.i += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn i64(&mut self) -> Option<i64> {
        Some(i64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn site(&mut self) -> Option<InstRef> {
        Some(InstRef::new(FuncId(self.u32()?), InstId(self.u32()?)))
    }
}

fn decode_event(bytes: &[u8]) -> Option<TraceEvent> {
    let mut c = Cursor { b: bytes, i: 0 };
    let step = c.u64()?;
    let tid = ThreadId(c.u32()?);
    let site = c.site()?;
    let no_shadow = c.u8()? != 0;
    let kind = match c.u8()? {
        TAG_READ => EventKind::Read {
            addr: c.u64()?,
            value: c.i64()?,
            ty: decode_type(c.u8()?)?,
            atomic: c.u8()? != 0,
        },
        TAG_WRITE => EventKind::Write {
            addr: c.u64()?,
            value: c.i64()?,
            old: c.i64()?,
            atomic: c.u8()? != 0,
        },
        TAG_LOCK => EventKind::Lock { addr: c.u64()? },
        TAG_UNLOCK => EventKind::Unlock { addr: c.u64()? },
        TAG_FORK => EventKind::Fork {
            child: ThreadId(c.u32()?),
        },
        TAG_JOIN => EventKind::Join {
            child: ThreadId(c.u32()?),
        },
        TAG_MALLOC => EventKind::Malloc {
            addr: c.u64()?,
            size: c.u64()?,
        },
        TAG_FREE => EventKind::Free { addr: c.u64()? },
        TAG_FAULT => EventKind::Fault {
            kind: decode_fault(c.u8()?)?,
        },
        _ => return None,
    };
    let frames = c.u32()? as usize;
    let mut stack = Vec::with_capacity(frames.min(1024));
    for _ in 0..frames {
        stack.push(c.site()?);
    }
    if c.i != bytes.len() {
        return None; // trailing garbage: not a record we wrote
    }
    Some(TraceEvent {
        step,
        tid,
        site,
        stack: Arc::from(stack.into_boxed_slice()),
        kind,
        no_shadow,
    })
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        use std::fmt::Write as _;
        let _ = write!(s, "{b:02x}");
    }
    s
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    s.as_bytes()
        .chunks(2)
        .map(|c| u8::from_str_radix(std::str::from_utf8(c).ok()?, 16).ok())
        .collect()
}

// ---------------------------------------------------------------------
// Line discipline (mirrors owl::journal)
// ---------------------------------------------------------------------

const LINE_PREFIX: &str = "{\"crc\":\"";
const LINE_MID: &str = "\",\"rec\":\"";
const LINE_SUFFIX: &str = "\"}";

fn format_line(ev: &TraceEvent) -> Result<String, SpillError> {
    let hex = hex_encode(&encode_event(ev)?);
    let crc = fnv1a64(hex.as_bytes());
    Ok(format!("{LINE_PREFIX}{crc:016x}{LINE_MID}{hex}{LINE_SUFFIX}\n"))
}

/// Parses one segment line; `None` on any damage (bad framing, CRC
/// mismatch, undecodable payload).
fn parse_line(line: &str) -> Option<TraceEvent> {
    let rest = line.strip_prefix(LINE_PREFIX)?;
    let (crc_hex, rest) = rest.split_at_checked(16)?;
    let rest = rest.strip_prefix(LINE_MID)?;
    let hex = rest.strip_suffix(LINE_SUFFIX)?;
    let crc = u64::from_str_radix(crc_hex, 16).ok()?;
    if fnv1a64(hex.as_bytes()) != crc {
        return None;
    }
    decode_event(&hex_decode(hex)?)
}

// ---------------------------------------------------------------------
// Kill switch
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct KillInner {
    /// Record appends remaining before the kill fires; `None` =
    /// disarmed.
    remaining: Option<u64>,
    /// Total record appends observed (reported in the panic payload).
    appends: u64,
}

/// Simulated `SIGKILL` during a spill-segment write, one-shot like the
/// journal's `set_kill_after`: after the armed number of record
/// appends the writer flushes a torn half-line and panics with
/// [`JournalKilled`], which supervisors re-raise rather than retry.
#[derive(Clone, Debug, Default)]
pub struct SpillKillSwitch(Arc<Mutex<KillInner>>);

impl SpillKillSwitch {
    /// A disarmed switch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms the switch to fire after `after` more record appends
    /// (counted across all subsequent segment writes sharing this
    /// switch).
    pub fn arm(&self, after: u64) {
        self.0.lock().expect("kill switch poisoned").remaining = Some(after);
    }

    /// Notes one completed record append; kills the process simulation
    /// when the countdown hits zero.
    fn note_append(&self, out: &mut impl Write) {
        let mut g = self.0.lock().expect("kill switch poisoned");
        g.appends += 1;
        let fire = match g.remaining.as_mut() {
            Some(rem) => {
                *rem = rem.saturating_sub(1);
                *rem == 0
            }
            None => false,
        };
        if fire {
            g.remaining = None;
            let appends = g.appends;
            drop(g);
            // A real SIGKILL can land mid-`write(2)`: leave a torn,
            // checksummed-looking tail with no newline.
            let _ = out.write_all(LINE_PREFIX.as_bytes());
            let _ = out.write_all(b"dead");
            let _ = out.flush();
            std::panic::panic_any(JournalKilled {
                appends,
                kind: FaultKind::JournalKill,
            });
        }
    }
}

// ---------------------------------------------------------------------
// Segment I/O
// ---------------------------------------------------------------------

/// Writes `events` as one segment at `path` (truncating any previous
/// content) and returns the bytes written. Failures — I/O or an
/// uncodable event — come back as a typed [`SpillError`] so the
/// streaming consumer can abort the unit gracefully. With an armed
/// `kill`, the write may instead panic with [`JournalKilled`] partway
/// through, leaving a torn tail for [`recover_segment`].
pub fn write_segment<'a, I>(
    path: &Path,
    events: I,
    kill: Option<&SpillKillSwitch>,
) -> Result<u64, SpillError>
where
    I: IntoIterator<Item = &'a TraceEvent>,
{
    let mut out = BufWriter::new(File::create(path)?);
    let mut bytes = 0u64;
    for ev in events {
        let line = format_line(ev)?;
        out.write_all(line.as_bytes())?;
        bytes += line.len() as u64;
        if let Some(k) = kill {
            k.note_append(&mut out);
        }
    }
    out.flush()?;
    Ok(bytes)
}

/// Streams a segment back into `sink` in write order, verifying every
/// record's checksum. Returns the number of events replayed. Unlike
/// [`recover_segment`], any damage is an error: replay only runs on a
/// segment this same unit just wrote, so corruption means the disk
/// lied and the unit must abort rather than silently drop events.
pub fn replay_segment<S: TraceSink + ?Sized>(path: &Path, sink: &mut S) -> io::Result<u64> {
    let mut rd = BufReader::new(File::open(path)?);
    let mut line = String::new();
    let mut n = 0u64;
    loop {
        line.clear();
        if rd.read_line(&mut line)? == 0 {
            break;
        }
        let ev = parse_line(line.trim_end_matches('\n')).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("corrupt spill record {n} in {}", path.display()),
            )
        })?;
        sink.on_event_owned(ev);
        n += 1;
    }
    Ok(n)
}

/// What [`recover_segment`] found and did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SegmentRecovery {
    /// Intact records before the first damage.
    pub valid_events: u64,
    /// Whether a torn/corrupt tail was found (and truncated away).
    pub torn: bool,
    /// Bytes discarded by the truncation.
    pub discarded_bytes: u64,
}

/// Scans a segment left over from a killed run and truncates everything
/// from the first damaged record onward, restoring the
/// every-line-is-valid invariant — the same torn-tail discipline the
/// campaign journal applies on reopen.
pub fn recover_segment(path: &Path) -> io::Result<SegmentRecovery> {
    let data = std::fs::read(path)?;
    let mut offset = 0usize;
    let mut valid = 0u64;
    while offset < data.len() {
        let rest = &data[offset..];
        let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
            break; // no terminator: torn mid-write
        };
        let ok = std::str::from_utf8(&rest[..nl])
            .ok()
            .and_then(parse_line)
            .is_some();
        if !ok {
            break;
        }
        offset += nl + 1;
        valid += 1;
    }
    let torn = offset < data.len();
    if torn {
        OpenOptions::new()
            .write(true)
            .open(path)?
            .set_len(offset as u64)?;
    }
    Ok(SegmentRecovery {
        valid_events: valid,
        torn,
        discarded_bytes: (data.len() - offset) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_vm::VecSink;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn sample_events() -> Vec<TraceEvent> {
        let stack: owl_vm::CallStack = Arc::from(
            vec![
                InstRef::new(FuncId(1), InstId(2)),
                InstRef::new(FuncId(3), InstId(4)),
            ]
            .into_boxed_slice(),
        );
        let kinds = vec![
            EventKind::Read {
                addr: 0x1000,
                value: -7,
                ty: Type::Ptr,
                atomic: false,
            },
            EventKind::Write {
                addr: 0x1001,
                value: i64::MIN,
                old: i64::MAX,
                atomic: true,
            },
            EventKind::Lock { addr: 0x2000 },
            EventKind::Unlock { addr: 0x2000 },
            EventKind::Fork {
                child: ThreadId(3),
            },
            EventKind::Join {
                child: ThreadId(3),
            },
            EventKind::Malloc {
                addr: 0x1000_0000,
                size: 16,
            },
            EventKind::Free { addr: 0x1000_0000 },
            EventKind::Fault {
                kind: FaultKind::SpuriousWakeup,
            },
        ];
        kinds
            .into_iter()
            .enumerate()
            .map(|(i, kind)| TraceEvent {
                step: i as u64 * 17,
                tid: ThreadId(i as u32 % 3),
                site: InstRef::new(FuncId(i as u32), InstId(9)),
                stack: stack.clone(),
                kind,
                no_shadow: i % 2 == 0,
            })
            .collect()
    }

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("owl-spill-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn segment_roundtrips_every_event_kind() {
        let events = sample_events();
        let path = scratch("roundtrip.seg");
        let bytes = write_segment(&path, &events, None).unwrap();
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
        let mut sink = VecSink::default();
        let n = replay_segment(&path, &mut sink).unwrap();
        assert_eq!(n, events.len() as u64);
        assert_eq!(sink.events, events);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn recover_truncates_torn_tail_and_replay_succeeds_after() {
        let events = sample_events();
        let path = scratch("torn.seg");
        write_segment(&path, &events, None).unwrap();
        // Simulate a crash mid-append: a prefix of a new record with no
        // terminator.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"crc\":\"0123").unwrap();
        }
        let mut sink = VecSink::default();
        assert!(replay_segment(&path, &mut sink).is_err(), "torn tail must not replay");
        let rec = recover_segment(&path).unwrap();
        assert!(rec.torn);
        assert_eq!(rec.valid_events, events.len() as u64);
        assert_eq!(rec.discarded_bytes, 12);
        // Idempotent: a second scan finds a clean file.
        let rec2 = recover_segment(&path).unwrap();
        assert_eq!(
            rec2,
            SegmentRecovery {
                valid_events: events.len() as u64,
                torn: false,
                discarded_bytes: 0
            }
        );
        let mut sink = VecSink::default();
        assert_eq!(replay_segment(&path, &mut sink).unwrap(), events.len() as u64);
        assert_eq!(sink.events, events);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_crc_stops_recovery_at_damage() {
        let events = sample_events();
        let path = scratch("crc.seg");
        write_segment(&path, &events, None).unwrap();
        // Flip one payload byte of the second record.
        let mut data = std::fs::read(&path).unwrap();
        let first_nl = data.iter().position(|&b| b == b'\n').unwrap();
        let hit = first_nl + 30;
        data[hit] = if data[hit] == b'a' { b'b' } else { b'a' };
        std::fs::write(&path, &data).unwrap();
        let rec = recover_segment(&path).unwrap();
        assert!(rec.torn);
        assert_eq!(rec.valid_events, 1, "only the first record survives");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn kill_switch_leaves_torn_segment_and_journal_killed_payload() {
        let events = sample_events();
        let path = scratch("kill.seg");
        let kill = SpillKillSwitch::new();
        kill.arm(2);
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _ = write_segment(&path, &events, Some(&kill));
        }))
        .expect_err("armed switch must fire");
        let killed = err
            .downcast_ref::<JournalKilled>()
            .expect("JournalKilled payload");
        assert_eq!(killed.appends, 2);
        assert_eq!(killed.kind, FaultKind::JournalKill);
        let rec = recover_segment(&path).unwrap();
        assert!(rec.torn, "kill must leave a torn tail");
        assert_eq!(rec.valid_events, 2);
        let mut sink = VecSink::default();
        assert_eq!(replay_segment(&path, &mut sink).unwrap(), 2);
        assert_eq!(sink.events, events[..2]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stack_too_deep_is_a_typed_error_not_a_panic() {
        let events = sample_events(); // every sample carries 2 frames
        let err = encode_event_limited(&events[0], 1).expect_err("2 frames over a limit of 1");
        assert!(matches!(err, SpillError::StackTooDeep { frames: 2 }), "{err:?}");
        assert!(err.to_string().contains("2 frames"), "{err}");
        assert!(std::error::Error::source(&err).is_none());
        assert!(encode_event(&events[0]).is_ok(), "real limit is u32::MAX");
    }

    #[test]
    fn write_segment_surfaces_io_failure_as_spill_error() {
        let events = sample_events();
        let missing = scratch("no-such-dir").join("seg");
        let err = write_segment(&missing, &events, None).expect_err("parent dir absent");
        assert!(matches!(err, SpillError::Io(_)), "{err:?}");
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn approx_bytes_counts_stack_share() {
        let events = sample_events();
        let base = approx_event_bytes(&TraceEvent {
            stack: Arc::from(vec![].into_boxed_slice()),
            ..events[0].clone()
        });
        assert_eq!(
            approx_event_bytes(&events[0]),
            base + 2 * std::mem::size_of::<InstRef>()
        );
    }
}
