//! Happens-before data-race detection (the TSan substitute).
//!
//! Pure vector-clock happens-before detection over VM traces: mutexes
//! and atomics create ordering edges; two accesses to the same address
//! race when at least one writes, they come from different threads, and
//! neither happens-before the other.
//!
//! Two OWL-specific extensions from the paper:
//!
//! * **Annotation support** (§5.1): adhoc synchronizations identified by
//!   the static detector are passed in as [`HbAnnotation`] pairs. The
//!   annotated write acts as a release and the annotated read as an
//!   acquire (TSan markup semantics), and races between the annotated
//!   pair itself are suppressed — this is the benign-schedule reduction.
//! * **Watchlist read hints** (§6.3): for write-write races the
//!   detector records the first subsequent read of the corrupted
//!   address, because Algorithm 1 needs a corrupted load (and its call
//!   stack) to start from.
//!
//! The detector runs on one of two interchangeable shadow-memory
//! backends ([`HbBackend`]): the FastTrack-style epoch fast path (the
//! `epoch` module, the default) or the original full-vector-clock
//! implementation, kept as a differential-testing oracle. Both emit
//! identical report streams.

use crate::epoch::{EpochShadow, EpochStats};
use crate::predict::{PredictMode, PredictStats, Predictor};
use crate::report::{Access, RaceReport};
use crate::vc::VectorClock;
use owl_ir::{InstRef, Module, Type};
use owl_vm::{EventKind, ThreadId, TraceEvent, TraceSink};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Which detection backend the detector runs. The first two are
/// interchangeable shadow-memory representations of the same
/// happens-before relation — identical report streams (site pairs,
/// watchlist read hints, suppression counts), different cost. The
/// predictive backends run the epoch HB sweep *plus* a post-trace
/// prediction pass (see the `predict` module), so their
/// report sets are supersets of the HB backends' on every trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum HbBackend {
    /// FastTrack-style epochs (see [`EpochStats`]): O(1)
    /// same-epoch/ordered fast paths, adaptive read-history promotion,
    /// open-addressed shadow table, interned call stacks. The default.
    #[default]
    Epoch,
    /// Full vector-clock histories in a `BTreeMap` — the original
    /// implementation, kept as the differential-testing oracle.
    Reference,
    /// Epoch HB sweep plus sync-preserving race prediction: also
    /// reports conflicting pairs reachable by a correct reordering of
    /// the observed trace that keeps every same-object
    /// synchronization order (arXiv 2010.16385).
    SyncPreserving,
    /// Epoch HB sweep plus optimistic sync-reversal prediction:
    /// everything `SyncPreserving` finds, plus races that need a
    /// lock-acquire order reversal (arXiv 2401.05642). Every pair is
    /// still witness-validated before reporting.
    SyncReversal,
}

impl HbBackend {
    /// Every backend, in presentation order. The single source of
    /// truth the CLI derives its help text, parser, and error message
    /// from — a new variant added here is automatically everywhere.
    pub const ALL: [HbBackend; 4] = [
        HbBackend::Epoch,
        HbBackend::Reference,
        HbBackend::SyncPreserving,
        HbBackend::SyncReversal,
    ];

    /// Canonical CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            HbBackend::Epoch => "epoch",
            HbBackend::Reference => "reference",
            HbBackend::SyncPreserving => "syncp",
            HbBackend::SyncReversal => "syncrev",
        }
    }

    /// One-line description for `--help`.
    pub fn summary(self) -> &'static str {
        match self {
            HbBackend::Epoch => "FastTrack epochs, the fast path (default)",
            HbBackend::Reference => "full vector clocks, the differential oracle",
            HbBackend::SyncPreserving => "epoch + sync-preserving race prediction",
            HbBackend::SyncReversal => "epoch + optimistic sync-reversal prediction",
        }
    }

    /// Parses a canonical spelling; `None` for anything else.
    pub fn parse(s: &str) -> Option<HbBackend> {
        HbBackend::ALL.into_iter().find(|b| b.name() == s)
    }

    /// Comma-separated list of every valid spelling, for error text.
    pub fn names() -> String {
        HbBackend::ALL.map(HbBackend::name).join(", ")
    }

    /// Whether this backend runs the post-trace prediction pass.
    pub fn is_predictive(self) -> bool {
        matches!(self, HbBackend::SyncPreserving | HbBackend::SyncReversal)
    }
}

/// One annotated adhoc synchronization: the flag-setting write and the
/// busy-wait read it releases.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HbAnnotation {
    /// The write that publishes the flag (e.g. `dying = 1`).
    pub write_site: InstRef,
    /// The spinning read that consumes it.
    pub read_site: InstRef,
}

/// Detector configuration.
#[derive(Clone, Debug)]
pub struct HbConfig {
    /// Hard cap on distinct reports kept. Observations of *new* site
    /// pairs past the cap are counted in
    /// [`HbDetector::reports_dropped`].
    pub max_reports: usize,
    /// Adhoc-synchronization annotations to honour.
    pub annotations: Vec<HbAnnotation>,
    /// Shadow-memory backend.
    pub backend: HbBackend,
}

impl Default for HbConfig {
    fn default() -> Self {
        HbConfig {
            max_reports: 100_000,
            annotations: Vec::new(),
            backend: HbBackend::default(),
        }
    }
}

#[derive(Clone, Debug, Default)]
struct Shadow {
    last_write: Option<(VectorClock, Access)>,
    reads: Vec<(VectorClock, Access)>,
}

/// Backend-selected shadow state.
#[derive(Clone, Debug)]
enum ShadowState {
    Reference(BTreeMap<u64, Shadow>),
    // Boxed: the open-addressed table header plus caches dwarf the
    // reference variant's single map pointer, and there is exactly one
    // `ShadowState` per detector, so the indirection is free.
    Epoch(Box<EpochShadow>),
}

/// Online happens-before race detector; implement as a [`TraceSink`]
/// and feed it a VM run.
#[derive(Clone, Debug)]
pub struct HbDetector {
    cfg: HbConfig,
    clocks: Vec<VectorClock>,
    lock_clocks: HashMap<u64, VectorClock>,
    atomic_clocks: HashMap<u64, VectorClock>,
    ann_clocks: HashMap<u64, VectorClock>,
    shadow: ShadowState,
    reported: HashSet<(InstRef, InstRef)>,
    reports: Vec<RaceReport>,
    /// Report indices awaiting a post-race read of the key address.
    pending_hint: HashMap<u64, Vec<usize>>,
    ann_write_sites: HashSet<InstRef>,
    ann_read_sites: HashSet<InstRef>,
    ann_pairs: HashSet<(InstRef, InstRef)>,
    suppressed: usize,
    reports_dropped: usize,
    /// Threads that have not yet been joined. Shadow-state GC prunes
    /// against the pointwise minimum of their clocks: an access every
    /// live thread already knows can never race again.
    live: HashSet<ThreadId>,
    /// Heap allocation sizes (in words), so a `Free` event can sweep
    /// exactly the dying region.
    malloc_sizes: HashMap<u64, u64>,
    shadow_cells_gced: u64,
    /// Trace recorder for the predictive backends; `None` otherwise
    /// and after the prediction pass has run.
    predictor: Option<Box<Predictor>>,
    predict_stats: PredictStats,
}

impl HbDetector {
    /// Creates a detector.
    pub fn new(cfg: HbConfig) -> Self {
        let ann_write_sites = cfg.annotations.iter().map(|a| a.write_site).collect();
        let ann_read_sites = cfg.annotations.iter().map(|a| a.read_site).collect();
        let ann_pairs = cfg
            .annotations
            .iter()
            .map(|a| normalize(a.write_site, a.read_site))
            .collect();
        // The predictive backends reuse the epoch shadow for their HB
        // sweep (epoch ≡ reference observably, so superset-of-Reference
        // holds for the HB portion by construction) and record the
        // trace on the side for the post-run prediction pass.
        let (shadow, predictor) = match cfg.backend {
            HbBackend::Reference => (ShadowState::Reference(BTreeMap::new()), None),
            HbBackend::Epoch => (ShadowState::Epoch(Box::default()), None),
            HbBackend::SyncPreserving => (
                ShadowState::Epoch(Box::default()),
                Some(Box::new(Predictor::new(PredictMode::SyncPreserving))),
            ),
            HbBackend::SyncReversal => (
                ShadowState::Epoch(Box::default()),
                Some(Box::new(Predictor::new(PredictMode::SyncReversal))),
            ),
        };
        HbDetector {
            cfg,
            clocks: vec![initial_clock(ThreadId::MAIN)],
            lock_clocks: HashMap::new(),
            atomic_clocks: HashMap::new(),
            ann_clocks: HashMap::new(),
            shadow,
            reported: HashSet::new(),
            reports: Vec::new(),
            pending_hint: HashMap::new(),
            ann_write_sites,
            ann_read_sites,
            ann_pairs,
            suppressed: 0,
            reports_dropped: 0,
            live: HashSet::from([ThreadId::MAIN]),
            malloc_sizes: HashMap::new(),
            shadow_cells_gced: 0,
            predictor,
            predict_stats: PredictStats::default(),
        }
    }

    /// Detector with default configuration and no annotations.
    pub fn unannotated() -> Self {
        HbDetector::new(HbConfig::default())
    }

    /// A detector continuing from this one's state: the explorer feeds
    /// a shared trace prefix into one detector, then forks it once per
    /// seed so each unit's detector is exactly what a fresh detector
    /// would hold after replaying the same prefix. Every field —
    /// vector clocks, shadow state (reference map or epoch table),
    /// dedup/suppression bookkeeping, the predictor's recorded trace —
    /// is deep-copied, so forks never share mutable state.
    pub fn fork(&self) -> HbDetector {
        let mut forked = self.clone();
        forked.shadow = match &self.shadow {
            ShadowState::Reference(clocks) => ShadowState::Reference(clocks.clone()),
            ShadowState::Epoch(shadow) => ShadowState::Epoch(Box::new(shadow.fork())),
        };
        forked
    }

    /// Reports accumulated so far (one per distinct site pair).
    pub fn reports(&self) -> &[RaceReport] {
        &self.reports
    }

    /// Consumes the detector, resolving global names from `module`.
    /// Runs the prediction pass first if it has not run yet.
    pub fn finish(mut self, module: &Module) -> Vec<RaceReport> {
        self.run_prediction();
        for r in &mut self.reports {
            r.global_name = global_name_for_addr(module, r.addr).map(str::to_string);
        }
        self.reports
    }

    /// Runs the predictive pass over the recorded trace (a no-op for
    /// non-predictive backends and on second call). Predicted pairs
    /// flow through the same report path as HB observations —
    /// annotation suppression, site-pair dedup against what the HB
    /// sweep already found, and the report cap — so the final set is
    /// always a superset of the HB sweep's. [`HbDetector::finish`]
    /// calls this automatically; callers that read counters before
    /// finishing (the explorer) invoke it explicitly first.
    pub fn run_prediction(&mut self) {
        let Some(mut p) = self.predictor.take() else {
            return;
        };
        let predicted = p.predict(&self.reported);
        self.predict_stats = p.stats;
        for r in predicted {
            let before = self.reports.len();
            self.record(r.addr, &r.first, &r.second);
            if self.reports.len() == before {
                continue; // suppressed, duplicate, or over the cap
            }
            let idx = self.reports.len() - 1;
            if let Some(hint) = r.read_hint {
                // The predictor found the first post-race read itself;
                // take the pending §6.3 watch back (no further trace
                // events will arrive to serve it anyway).
                if let Some(v) = self.pending_hint.get_mut(&r.addr) {
                    v.retain(|&i| i != idx);
                }
                self.reports[idx].read_hint = Some(hint);
            }
        }
    }

    /// Prediction-pass counters. All-zero for non-predictive backends
    /// and before [`HbDetector::run_prediction`] has run.
    pub fn predict_stats(&self) -> PredictStats {
        self.predict_stats
    }

    /// Number of race observations suppressed by annotations.
    pub fn suppressed(&self) -> usize {
        self.suppressed
    }

    /// Observations of *new* site pairs that were dropped because the
    /// [`HbConfig::max_reports`] cap was already full. Non-zero means
    /// the report set is truncated.
    pub fn reports_dropped(&self) -> usize {
        self.reports_dropped
    }

    /// Fast-path counters, when running on the epoch backend.
    pub fn epoch_stats(&self) -> Option<EpochStats> {
        match &self.shadow {
            ShadowState::Epoch(s) => Some(s.stats()),
            ShadowState::Reference(_) => None,
        }
    }

    /// Shadow cells reclaimed by GC at `Join`/`Free` events. Identical
    /// across backends: both prune by the same happens-before-all-live
    /// criterion (the private `gc_shadow` helper below).
    pub fn shadow_cells_gced(&self) -> u64 {
        self.shadow_cells_gced
    }

    /// Pointwise minimum over all live threads' clocks — the GC
    /// horizon. An access ordered ≤ this meet happens-before every
    /// live thread, and therefore before any future access: live
    /// threads only advance their clocks, and a forked thread inherits
    /// its parent's knowledge. `None` when no live thread has a clock
    /// yet (nothing can be proved reclaimable).
    fn min_live_clock(&self) -> Option<VectorClock> {
        let mut it = self
            .live
            .iter()
            .filter_map(|t| self.clocks.get(t.index()));
        let mut min = it.next()?.clone();
        for c in it {
            min.meet(c);
        }
        Some(min)
    }

    /// Sweeps the whole shadow table against `min` (see
    /// [`HbDetector::min_live_clock`]). Exactness holds on both
    /// backends: for a full clock `vc` published by thread `t` at
    /// epoch `c`, `c ≤ K[t] ⇔ vc ≤ K` for every live thread's clock
    /// `K` (the FastTrack invariant), and a meet of clocks satisfying
    /// that bi-implication satisfies it too — so the epoch test
    /// `c ≤ min[t]` and the reference test `vc.le(min)` reclaim
    /// exactly the same accesses, keeping the backends' observable
    /// state (and this counter) identical.
    fn gc_shadow(&mut self, min: &VectorClock) {
        match &mut self.shadow {
            ShadowState::Epoch(shadow) => {
                self.shadow_cells_gced += shadow.gc(min);
            }
            ShadowState::Reference(map) => {
                let before = map.len();
                map.retain(|_, sh| {
                    if let Some((wc, _)) = &sh.last_write {
                        if wc.le(min) {
                            sh.last_write = None;
                        }
                    }
                    sh.reads.retain(|(rc, _)| !rc.le(min));
                    sh.last_write.is_some() || !sh.reads.is_empty()
                });
                self.shadow_cells_gced += (before - map.len()) as u64;
            }
        }
    }

    /// Targeted sweep of `[start, end)` — a freed heap region.
    fn gc_shadow_range(&mut self, start: u64, end: u64, min: &VectorClock) {
        match &mut self.shadow {
            ShadowState::Epoch(shadow) => {
                self.shadow_cells_gced += shadow.gc_range(start, end, min);
            }
            ShadowState::Reference(map) => {
                let keys: Vec<u64> = map.range(start..end).map(|(k, _)| *k).collect();
                for k in keys {
                    let sh = map.get_mut(&k).expect("key just enumerated");
                    if let Some((wc, _)) = &sh.last_write {
                        if wc.le(min) {
                            sh.last_write = None;
                        }
                    }
                    sh.reads.retain(|(rc, _)| !rc.le(min));
                    if sh.last_write.is_none() && sh.reads.is_empty() {
                        map.remove(&k);
                        self.shadow_cells_gced += 1;
                    }
                }
            }
        }
    }

    /// Post-`Join` GC: the joined thread is dead, so the live-thread
    /// meet just advanced — sweep the shadow table, drop sync clocks
    /// the whole world already knows (re-acquiring them would be a
    /// no-op join), and clear the dead thread's own clock when it has
    /// been fully absorbed. The clock clearing is guarded by
    /// `cc ≤ min`: the VM wakes *every* joiner of a finished thread,
    /// so a second joiner may still need the clock if some live thread
    /// has not absorbed it yet.
    fn gc_after_join(&mut self, child: ThreadId) {
        let Some(min) = self.min_live_clock() else {
            return;
        };
        self.gc_shadow(&min);
        self.lock_clocks.retain(|_, c| !c.le(&min));
        self.atomic_clocks.retain(|_, c| !c.le(&min));
        self.ann_clocks.retain(|_, c| !c.le(&min));
        if let Some(cc) = self.clocks.get_mut(child.index()) {
            if cc.le(&min) {
                *cc = initial_clock(child);
            }
        }
    }

    fn clock_mut(&mut self, t: ThreadId) -> &mut VectorClock {
        while self.clocks.len() <= t.index() {
            let t2 = ThreadId(self.clocks.len() as u32);
            self.clocks.push(initial_clock(t2));
        }
        &mut self.clocks[t.index()]
    }

    fn record(&mut self, addr: u64, prior: &Access, current: &Access) {
        let key = normalize(prior.site, current.site);
        if self.ann_pairs.contains(&key) {
            self.suppressed += 1;
            return;
        }
        if self.reported.contains(&key) {
            return;
        }
        if self.reports.len() >= self.cfg.max_reports {
            self.reports_dropped += 1;
            return;
        }
        self.reported.insert(key);
        let report = RaceReport {
            addr,
            global_name: None,
            first: prior.clone(),
            second: current.clone(),
            read_hint: None,
        };
        let idx = self.reports.len();
        self.reports.push(report);
        if prior.is_write && current.is_write {
            // §6.3: watch the corrupted address; attach the next read.
            self.pending_hint.entry(addr).or_default().push(idx);
        }
    }

    /// Serves pending write-write read hints for `addr` with this
    /// read. Shared preamble of both backends' read paths.
    fn serve_pending_hints(&mut self, addr: u64, access: &Access) {
        if self.pending_hint.is_empty() {
            return;
        }
        if let Some(idxs) = self.pending_hint.remove(&addr) {
            for i in idxs {
                if self.reports[i].read_hint.is_none() {
                    self.reports[i].read_hint = Some(access.clone());
                }
            }
        }
    }

    fn on_read(&mut self, ev: &TraceEvent, addr: u64, value: i64, ty: Type) {
        match self.shadow {
            ShadowState::Reference(_) => self.on_read_reference(ev, addr, value, ty),
            ShadowState::Epoch(_) => self.on_read_epoch(ev, addr, value, ty),
        }
    }

    fn on_write(&mut self, ev: &TraceEvent, addr: u64, value: i64) {
        match self.shadow {
            ShadowState::Reference(_) => self.on_write_reference(ev, addr, value),
            ShadowState::Epoch(_) => self.on_write_epoch(ev, addr, value),
        }
        // Annotated release.
        if self.ann_write_sites.contains(&ev.site) {
            let tc = self.clock_mut(ev.tid).clone();
            self.ann_clocks.entry(addr).or_default().join(&tc);
            self.clock_mut(ev.tid).tick(ev.tid);
        }
    }

    fn on_read_reference(&mut self, ev: &TraceEvent, addr: u64, value: i64, ty: Type) {
        let access = Access {
            tid: ev.tid,
            site: ev.site,
            stack: ev.stack.clone(),
            is_write: false,
            value,
            ty,
        };
        self.serve_pending_hints(addr, &access);
        // Annotated acquire.
        if self.ann_read_sites.contains(&ev.site) {
            if let Some(rc) = self.ann_clocks.get(&addr).cloned() {
                self.clock_mut(ev.tid).join(&rc);
            }
        }
        let clock = self.clock_mut(ev.tid).clone();
        let ShadowState::Reference(map) = &mut self.shadow else {
            unreachable!("reference read on epoch shadow");
        };
        let shadow = map.entry(addr).or_default();
        let racy_write = match &shadow.last_write {
            Some((wc, wacc)) if wacc.tid != ev.tid && !wc.le(&clock) => Some(wacc.clone()),
            _ => None,
        };
        // Prune reads that happen-before this one, then record it.
        shadow.reads.retain(|(rc, _)| !rc.le(&clock));
        shadow.reads.push((clock, access.clone()));
        if let Some(w) = racy_write {
            self.record(addr, &w, &access);
        }
    }

    fn on_write_reference(&mut self, ev: &TraceEvent, addr: u64, value: i64) {
        let access = Access {
            tid: ev.tid,
            site: ev.site,
            stack: ev.stack.clone(),
            is_write: true,
            value,
            ty: Type::I64,
        };
        let clock = self.clock_mut(ev.tid).clone();
        let ShadowState::Reference(map) = &mut self.shadow else {
            unreachable!("reference write on epoch shadow");
        };
        let shadow = map.entry(addr).or_default();
        let mut conflicts: Vec<Access> = Vec::new();
        if let Some((wc, wacc)) = &shadow.last_write {
            if wacc.tid != ev.tid && !wc.le(&clock) {
                conflicts.push(wacc.clone());
            }
        }
        for (rc, racc) in &shadow.reads {
            if racc.tid != ev.tid && !rc.le(&clock) {
                conflicts.push(racc.clone());
            }
        }
        shadow.last_write = Some((clock.clone(), access.clone()));
        shadow.reads.retain(|(rc, _)| !rc.le(&clock));
        for c in conflicts {
            self.record(addr, &c, &access);
        }
    }

    /// Epoch-backend read: identical observable behavior to
    /// [`HbDetector::on_read_reference`] (hint service, acquire join,
    /// racy-write check, read-history update, report order) but no
    /// clock clone and no `Access` construction on the conflict-free
    /// fast path.
    fn on_read_epoch(&mut self, ev: &TraceEvent, addr: u64, value: i64, ty: Type) {
        if !self.pending_hint.is_empty() && self.pending_hint.contains_key(&addr) {
            let access = Access {
                tid: ev.tid,
                site: ev.site,
                stack: ev.stack.clone(),
                is_write: false,
                value,
                ty,
            };
            self.serve_pending_hints(addr, &access);
        }
        // Annotated acquire.
        if !self.ann_read_sites.is_empty() && self.ann_read_sites.contains(&ev.site) {
            if let Some(rc) = self.ann_clocks.get(&addr).cloned() {
                self.clock_mut(ev.tid).join(&rc);
            }
        }
        // Statically elided site: the pre-pass proved no access through
        // it can race, so the address has no shadow history worth
        // keeping. The hint service and acquire join above still ran —
        // they are the only observable side channels a read has.
        if ev.no_shadow {
            let ShadowState::Epoch(shadow) = &mut self.shadow else {
                unreachable!("epoch read on reference shadow");
            };
            shadow.note_elided_read();
            return;
        }
        self.clock_mut(ev.tid); // grow the clock table if needed
        let clock = &self.clocks[ev.tid.index()];
        let ShadowState::Epoch(shadow) = &mut self.shadow else {
            unreachable!("epoch read on reference shadow");
        };
        let racy_write = shadow.read(addr, ev.tid, clock, ev.site, &ev.stack, value, ty);
        if let Some(w) = racy_write {
            let ShadowState::Epoch(shadow) = &self.shadow else {
                unreachable!("epoch read on reference shadow");
            };
            let prior = shadow.materialize(&w);
            let access = Access {
                tid: ev.tid,
                site: ev.site,
                stack: ev.stack.clone(),
                is_write: false,
                value,
                ty,
            };
            self.record(addr, &prior, &access);
        }
    }

    /// Epoch-backend write: same conflict set and emission order as
    /// [`HbDetector::on_write_reference`] (prior write first, then
    /// racy reads in insertion order), with the annotated release
    /// handled by the shared [`HbDetector::on_write`] tail.
    fn on_write_epoch(&mut self, ev: &TraceEvent, addr: u64, value: i64) {
        // Statically elided site: skip the shadow update entirely. The
        // annotated-release tail in [`HbDetector::on_write`] still runs
        // (an elided store can legitimately be an annotation site).
        if ev.no_shadow {
            let ShadowState::Epoch(shadow) = &mut self.shadow else {
                unreachable!("epoch write on reference shadow");
            };
            shadow.note_elided_write();
            return;
        }
        self.clock_mut(ev.tid); // grow the clock table if needed
        let clock = &self.clocks[ev.tid.index()];
        let ShadowState::Epoch(shadow) = &mut self.shadow else {
            unreachable!("epoch write on reference shadow");
        };
        shadow.write(addr, ev.tid, clock, ev.site, &ev.stack, value);
        let n = shadow.conflict_count();
        if n == 0 {
            return;
        }
        let access = Access {
            tid: ev.tid,
            site: ev.site,
            stack: ev.stack.clone(),
            is_write: true,
            value,
            ty: Type::I64,
        };
        for i in 0..n {
            let ShadowState::Epoch(shadow) = &self.shadow else {
                unreachable!("epoch write on reference shadow");
            };
            let prior = shadow.conflict_access(i);
            self.record(addr, &prior, &access);
        }
    }
}

impl TraceSink for HbDetector {
    fn on_event(&mut self, ev: &TraceEvent) {
        if let Some(p) = &mut self.predictor {
            p.record(ev);
        }
        match ev.kind {
            EventKind::Read {
                addr,
                value,
                ty,
                atomic,
            } => {
                if atomic {
                    if let Some(rc) = self.atomic_clocks.get(&addr).cloned() {
                        self.clock_mut(ev.tid).join(&rc);
                    }
                } else {
                    self.on_read(ev, addr, value, ty);
                }
            }
            EventKind::Write {
                addr,
                value,
                atomic,
                ..
            } => {
                if atomic {
                    let tc = self.clock_mut(ev.tid).clone();
                    self.atomic_clocks.entry(addr).or_default().join(&tc);
                    self.clock_mut(ev.tid).tick(ev.tid);
                } else {
                    self.on_write(ev, addr, value);
                }
            }
            EventKind::Lock { addr } => {
                if let Some(lc) = self.lock_clocks.get(&addr).cloned() {
                    self.clock_mut(ev.tid).join(&lc);
                }
            }
            EventKind::Unlock { addr } => {
                let tc = self.clock_mut(ev.tid).clone();
                self.lock_clocks.insert(addr, tc);
                self.clock_mut(ev.tid).tick(ev.tid);
            }
            EventKind::Fork { child } => {
                let parent = self.clock_mut(ev.tid).clone();
                let c = self.clock_mut(child);
                c.join(&parent);
                c.tick(child);
                self.clock_mut(ev.tid).tick(ev.tid);
                self.live.insert(child);
            }
            EventKind::Join { child } => {
                let cc = self.clock_mut(child).clone();
                self.clock_mut(ev.tid).join(&cc);
                self.live.remove(&child);
                self.gc_after_join(child);
            }
            EventKind::Malloc { addr, size } => {
                // No HB information (the VM's memory model already
                // reports UAF/double-free), but remember the extent so
                // the matching `Free` can sweep the dying region.
                self.malloc_sizes.insert(addr, size.max(1));
            }
            EventKind::Free { addr } => {
                if let Some(size) = self.malloc_sizes.remove(&addr) {
                    if let Some(min) = self.min_live_clock() {
                        self.gc_shadow_range(addr, addr + size, &min);
                    }
                }
            }
            EventKind::Fault { .. } => {
                // Injected faults perturb execution but carry no HB
                // information; the run's outcome records them.
            }
        }
    }
}

fn initial_clock(t: ThreadId) -> VectorClock {
    let mut c = VectorClock::new();
    c.tick(t);
    c
}

fn normalize(a: InstRef, b: InstRef) -> (InstRef, InstRef) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Resolves the global variable containing `addr` from the module's
/// (contiguous) global layout, mirroring [`owl_vm::mem`].
pub fn global_name_for_addr(module: &Module, addr: u64) -> Option<&str> {
    let mut base = owl_vm::mem::GLOBAL_BASE;
    for g in &module.globals {
        if addr >= base && addr < base + u64::from(g.size) {
            return Some(&g.name);
        }
        base += u64::from(g.size);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_ir::{ModuleBuilder, Operand};
    use owl_vm::{ProgramInput, RoundRobin, Vm};

    /// Two threads write/read `flag` with no synchronization.
    fn racy_module() -> (Module, owl_ir::FuncId) {
        let mut mb = ModuleBuilder::new("racy");
        let g = mb.global("flag", 1, Type::I64);
        let writer = mb.declare_func("writer", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(writer);
            let a = b.global_addr(g);
            b.store(a, 1);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t = b.thread_create(writer, 0);
            let a = b.global_addr(g);
            b.load(a, Type::I64);
            b.thread_join(t);
            b.ret(None);
        }
        (mb.finish(), main)
    }

    /// Same shape but the store/load are protected by a mutex.
    fn locked_module() -> (Module, owl_ir::FuncId) {
        let mut mb = ModuleBuilder::new("locked");
        let g = mb.global("flag", 1, Type::I64);
        let l = mb.global("lock", 1, Type::I64);
        let writer = mb.declare_func("writer", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(writer);
            let la = b.global_addr(l);
            b.lock(la);
            let a = b.global_addr(g);
            b.store(a, 1);
            b.unlock(la);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t = b.thread_create(writer, 0);
            let la = b.global_addr(l);
            b.lock(la);
            let a = b.global_addr(g);
            b.load(a, Type::I64);
            b.unlock(la);
            b.thread_join(t);
            b.ret(None);
        }
        (mb.finish(), main)
    }

    fn run_detector(m: &Module, entry: owl_ir::FuncId, cfg: HbConfig) -> Vec<RaceReport> {
        let mut det = HbDetector::new(cfg);
        let mut sched = RoundRobin::new(2);
        let vm = Vm::new(m, entry, ProgramInput::empty(), Default::default());
        let _ = vm.run(&mut sched, &mut det);
        det.finish(m)
    }

    #[test]
    fn detects_unsynchronized_race() {
        let (m, main) = racy_module();
        let reports = run_detector(&m, main, HbConfig::default());
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].global_name.as_deref(), Some("flag"));
    }

    #[test]
    fn mutex_orders_accesses() {
        let (m, main) = locked_module();
        let reports = run_detector(&m, main, HbConfig::default());
        assert!(reports.is_empty(), "{reports:?}");
    }

    #[test]
    fn fork_join_order_no_race() {
        // Parent writes before fork and after join: ordered.
        let mut mb = ModuleBuilder::new("fj");
        let g = mb.global("x", 1, Type::I64);
        let child = mb.declare_func("child", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(child);
            let a = b.global_addr(g);
            let v = b.load(a, Type::I64);
            let v2 = b.add(v, 1);
            b.store(a, v2);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let a = b.global_addr(g);
            b.store(a, 10);
            let t = b.thread_create(child, 0);
            b.thread_join(t);
            let v = b.load(a, Type::I64);
            b.output(0, v);
            b.ret(None);
        }
        let m = mb.finish();
        let main_id = m.func_by_name("main").unwrap();
        let reports = run_detector(&m, main_id, HbConfig::default());
        assert!(reports.is_empty(), "{reports:?}");
    }

    #[test]
    fn atomics_synchronize() {
        let mut mb = ModuleBuilder::new("at");
        let data = mb.global("data", 1, Type::I64);
        let ready = mb.global("ready", 1, Type::I64);
        let consumer = mb.declare_func("consumer", 1);
        let main = mb.declare_func("main", 0);
        {
            // Busy-wait on atomic `ready`, then read `data` plainly.
            let mut b = mb.build_func(consumer);
            let head = b.block();
            let done = b.block();
            b.jmp(head);
            b.switch_to(head);
            let ra = b.global_addr(ready);
            let v = b.atomic_load(ra);
            b.br(v, done, head);
            b.switch_to(done);
            let da = b.global_addr(data);
            b.load(da, Type::I64);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t = b.thread_create(consumer, 0);
            let da = b.global_addr(data);
            b.store(da, 42);
            let ra = b.global_addr(ready);
            b.atomic_store(ra, 1);
            b.thread_join(t);
            b.ret(None);
        }
        let m = mb.finish();
        let main_id = m.func_by_name("main").unwrap();
        let reports = run_detector(&m, main_id, HbConfig::default());
        assert!(reports.is_empty(), "{reports:?}");
    }

    #[test]
    fn adhoc_sync_races_until_annotated() {
        // The same producer/consumer but with a *plain* flag — an adhoc
        // synchronization. Unannotated: races on flag and data.
        // Annotated: nothing.
        let mut mb = ModuleBuilder::new("adhoc");
        let data = mb.global("data", 1, Type::I64);
        let ready = mb.global("ready", 1, Type::I64);
        let consumer = mb.declare_func("consumer", 1);
        let main = mb.declare_func("main", 0);
        let (read_site, data_read);
        {
            let mut b = mb.build_func(consumer);
            let head = b.block();
            let done = b.block();
            b.jmp(head);
            b.switch_to(head);
            let ra = b.global_addr(ready);
            let v = b.load(ra, Type::I64);
            read_site = InstRef::new(consumer, v);
            b.br(v, done, head);
            b.switch_to(done);
            let da = b.global_addr(data);
            data_read = b.load(da, Type::I64);
            let _ = data_read;
            b.ret(None);
        }
        let write_site;
        {
            let mut b = mb.build_func(main);
            let t = b.thread_create(consumer, 0);
            let da = b.global_addr(data);
            b.store(da, 42);
            let ra = b.global_addr(ready);
            let w = b.store(ra, 1);
            write_site = InstRef::new(main, w);
            b.thread_join(t);
            b.ret(None);
        }
        let m = mb.finish();
        let main_id = m.func_by_name("main").unwrap();

        let raw = run_detector(&m, main_id, HbConfig::default());
        assert!(
            raw.iter()
                .any(|r| r.global_name.as_deref() == Some("ready")),
            "flag race expected: {raw:?}"
        );
        assert!(
            raw.iter().any(|r| r.global_name.as_deref() == Some("data")),
            "derived data race expected: {raw:?}"
        );

        let annotated = run_detector(
            &m,
            main_id,
            HbConfig {
                annotations: vec![HbAnnotation {
                    write_site,
                    read_site,
                }],
                ..HbConfig::default()
            },
        );
        assert!(annotated.is_empty(), "{annotated:?}");
    }

    #[test]
    fn write_write_race_gets_read_hint() {
        let mut mb = ModuleBuilder::new("ww");
        let g = mb.global("g", 1, Type::I64);
        let writer = mb.declare_func("writer", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(writer);
            let a = b.global_addr(g);
            b.store(a, Operand::Param(0));
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t = b.thread_create(writer, 7);
            let a = b.global_addr(g);
            b.store(a, 8);
            b.thread_join(t);
            let v = b.load(a, Type::I64);
            b.output(0, v);
            b.ret(None);
        }
        let m = mb.finish();
        let main_id = m.func_by_name("main").unwrap();
        let reports = run_detector(&m, main_id, HbConfig::default());
        assert_eq!(reports.len(), 1);
        assert!(reports[0].is_write_write());
        let hint = reports[0].read_hint.as_ref().expect("read hint");
        assert!(!hint.is_write);
        assert_eq!(reports[0].read_access().unwrap().site, hint.site);
    }

    #[test]
    fn reports_deduplicate_per_site_pair() {
        // Run the racy pair many times in a loop: still one report.
        let (m, main) = racy_module();
        let mut det = HbDetector::unannotated();
        let mut sched = RoundRobin::new(2);
        for _ in 0..5 {
            let vm = Vm::new(&m, main, ProgramInput::empty(), Default::default());
            let _ = vm.run(&mut sched, &mut det);
        }
        assert_eq!(det.reports().len(), 1);
    }

    /// Drives one module through both backends and asserts identical
    /// observable results.
    fn assert_backends_agree(m: &Module, entry: owl_ir::FuncId, cfg: &HbConfig) {
        let mut out = Vec::new();
        for backend in [HbBackend::Epoch, HbBackend::Reference] {
            let mut det = HbDetector::new(HbConfig {
                backend,
                ..cfg.clone()
            });
            let mut sched = RoundRobin::new(2);
            let vm = Vm::new(m, entry, ProgramInput::empty(), Default::default());
            let _ = vm.run(&mut sched, &mut det);
            out.push((
                det.suppressed(),
                det.reports_dropped(),
                det.shadow_cells_gced(),
                det.finish(m),
            ));
        }
        assert_eq!(out[0], out[1], "epoch and reference must agree");
    }

    #[test]
    fn epoch_backend_matches_reference_on_unit_modules() {
        let (m, main) = racy_module();
        assert_backends_agree(&m, main, &HbConfig::default());
        let (m, main) = locked_module();
        assert_backends_agree(&m, main, &HbConfig::default());
    }

    #[test]
    fn same_epoch_reread_stays_on_fast_path() {
        // One thread reads the same global repeatedly: every re-read
        // replaces the previous read epoch in O(1) — no promotion.
        let mut mb = ModuleBuilder::new("reread");
        let g = mb.global("x", 1, Type::I64);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(main);
            let a = b.global_addr(g);
            b.store(a, 1);
            for _ in 0..4 {
                b.load(a, Type::I64);
            }
            b.ret(None);
        }
        let m = mb.finish();
        let main_id = m.func_by_name("main").unwrap();
        let mut det = HbDetector::unannotated();
        let mut sched = RoundRobin::new(1);
        let vm = Vm::new(&m, main_id, ProgramInput::empty(), Default::default());
        let _ = vm.run(&mut sched, &mut det);
        let stats = det.epoch_stats().expect("epoch backend is the default");
        assert_eq!(stats.read_promotions, 0, "{stats:?}");
        assert_eq!(stats.read_fast, stats.reads, "{stats:?}");
        assert!(det.reports().is_empty());
    }

    /// Two forked readers + a post-join write: the concurrent reads
    /// force one promotion, the ordering write demotes the history
    /// back, and nothing races.
    fn promote_demote_module() -> (Module, owl_ir::FuncId) {
        let mut mb = ModuleBuilder::new("promote");
        let g = mb.global("x", 1, Type::I64);
        let reader = mb.declare_func("reader", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(reader);
            let a = b.global_addr(g);
            b.load(a, Type::I64);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t1 = b.thread_create(reader, 0);
            let t2 = b.thread_create(reader, 0);
            b.thread_join(t1);
            b.thread_join(t2);
            let a = b.global_addr(g);
            b.store(a, 1);
            b.ret(None);
        }
        let m = mb.finish();
        let main_id = m.func_by_name("main").unwrap();
        (m, main_id)
    }

    #[test]
    fn concurrent_reads_promote_and_ordering_write_demotes() {
        let (m, main_id) = promote_demote_module();
        let mut det = HbDetector::unannotated();
        let mut sched = RoundRobin::new(3);
        let vm = Vm::new(&m, main_id, ProgramInput::empty(), Default::default());
        let _ = vm.run(&mut sched, &mut det);
        let stats = det.epoch_stats().expect("epoch backend is the default");
        assert!(stats.read_promotions >= 1, "{stats:?}");
        assert!(stats.read_demotions >= 1, "{stats:?}");
        assert!(
            det.reports().is_empty(),
            "join orders the write: {:?}",
            det.reports()
        );
        assert_backends_agree(&m, main_id, &HbConfig::default());
    }

    #[test]
    fn join_gc_reclaims_absorbed_cells_on_both_backends() {
        // After both readers are joined, every remembered access to
        // `x` happens-before the only live thread: the cell must be
        // reclaimed, and no report may be lost.
        let (m, main_id) = promote_demote_module();
        for backend in [HbBackend::Epoch, HbBackend::Reference] {
            let mut det = HbDetector::new(HbConfig {
                backend,
                ..HbConfig::default()
            });
            let mut sched = RoundRobin::new(3);
            let vm = Vm::new(&m, main_id, ProgramInput::empty(), Default::default());
            let _ = vm.run(&mut sched, &mut det);
            assert!(
                det.shadow_cells_gced() >= 1,
                "{backend:?}: {}",
                det.shadow_cells_gced()
            );
            assert!(det.reports().is_empty(), "{:?}", det.reports());
        }
        assert_backends_agree(&m, main_id, &HbConfig::default());
    }

    #[test]
    fn gc_does_not_lose_already_racy_history() {
        // The racy pair is reported before the join sweeps the cell;
        // GC must never change what was detected.
        let (m, main) = racy_module();
        let reports = run_detector(&m, main, HbConfig::default());
        assert_eq!(reports.len(), 1);
        assert_backends_agree(&m, main, &HbConfig::default());
    }

    #[test]
    fn report_cap_counts_dropped_observations() {
        // Cap of zero: the racy pair is observed but cannot be kept.
        let (m, main) = racy_module();
        let mut det = HbDetector::new(HbConfig {
            max_reports: 0,
            ..HbConfig::default()
        });
        let mut sched = RoundRobin::new(2);
        let vm = Vm::new(&m, main, ProgramInput::empty(), Default::default());
        let _ = vm.run(&mut sched, &mut det);
        assert!(det.reports().is_empty());
        assert!(det.reports_dropped() >= 1, "{}", det.reports_dropped());
        assert_backends_agree(
            &m,
            main,
            &HbConfig {
                max_reports: 0,
                ..HbConfig::default()
            },
        );
    }

    #[test]
    fn backend_names_round_trip() {
        for b in HbBackend::ALL {
            assert_eq!(HbBackend::parse(b.name()), Some(b));
            assert!(HbBackend::names().contains(b.name()));
            assert!(!b.summary().is_empty());
        }
        assert_eq!(HbBackend::parse("no-such-backend"), None);
    }

    #[test]
    fn predictive_backends_are_supersets_on_unit_modules() {
        for (m, main) in [racy_module(), locked_module()] {
            let reference = run_detector(&m, main, HbConfig::default());
            for backend in [HbBackend::SyncPreserving, HbBackend::SyncReversal] {
                let predicted = run_detector(
                    &m,
                    main,
                    HbConfig {
                        backend,
                        ..HbConfig::default()
                    },
                );
                for r in &reference {
                    assert!(
                        predicted.iter().any(|p| p.key() == r.key()),
                        "{backend:?} lost an HB report: {r:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn mutex_protected_module_predicts_nothing() {
        // Both accesses are under the same lock: no correct reordering
        // co-enables them, so even the OSR backend stays silent.
        let (m, main) = locked_module();
        let mut det = HbDetector::new(HbConfig {
            backend: HbBackend::SyncReversal,
            ..HbConfig::default()
        });
        let mut sched = RoundRobin::new(2);
        let vm = Vm::new(&m, main, ProgramInput::empty(), Default::default());
        let _ = vm.run(&mut sched, &mut det);
        det.run_prediction();
        let stats = det.predict_stats();
        assert_eq!(stats.witnessed, 0, "{stats:?}");
        assert!(det.reports().is_empty(), "{:?}", det.reports());
    }

    #[test]
    fn run_prediction_is_idempotent_and_finish_implies_it() {
        let (m, main) = racy_module();
        let mut det = HbDetector::new(HbConfig {
            backend: HbBackend::SyncPreserving,
            ..HbConfig::default()
        });
        let mut sched = RoundRobin::new(2);
        let vm = Vm::new(&m, main, ProgramInput::empty(), Default::default());
        let _ = vm.run(&mut sched, &mut det);
        det.run_prediction();
        let stats = det.predict_stats();
        let n = det.reports().len();
        det.run_prediction(); // second call must change nothing
        assert_eq!(det.predict_stats(), stats);
        assert_eq!(det.reports().len(), n);
        let reports = det.finish(&m);
        assert_eq!(reports.len(), n);
    }

    #[test]
    fn global_name_resolution() {
        let mut mb = ModuleBuilder::new("g");
        mb.global("a", 2, Type::I64);
        mb.global("b", 1, Type::I64);
        let m = mb.finish();
        let base = owl_vm::mem::GLOBAL_BASE;
        assert_eq!(global_name_for_addr(&m, base), Some("a"));
        assert_eq!(global_name_for_addr(&m, base + 1), Some("a"));
        assert_eq!(global_name_for_addr(&m, base + 2), Some("b"));
        assert_eq!(global_name_for_addr(&m, base + 3), None);
    }
}
