//! Predictive race detection over one observed trace.
//!
//! The HB backends report only races whose accesses actually ran
//! concurrently in the observed schedule. Prediction asks a stronger
//! question of the *same* trace: is there a **correct reordering** —
//! an event subsequence that every thread could replay with identical
//! control flow — in which two conflicting accesses become co-enabled?
//! Two prediction regimes are implemented, following
//! "Optimal Prediction of Synchronization-Preserving Races"
//! (Mathur/Pavlogiannis/Viswanathan) and "Optimistic Prediction of
//! Synchronization-Reversal Data Races":
//!
//! * **Sync-preserving** ([`PredictMode::SyncPreserving`]): the
//!   reordering must keep the observed relative order of any two
//!   synchronization operations on the same object (lock
//!   acquisitions/releases, atomic accesses) that both appear in it.
//! * **Sync-reversal** ([`PredictMode::SyncReversal`]): additionally
//!   tries reorderings that flip the order of whole lock critical
//!   sections (the optimistic OSR check), keeping atomic order and
//!   lock mutual exclusion intact.
//!
//! Every candidate pair goes through three gates before it may be
//! reported:
//!
//! 1. **Closure**: the set of events that *must* precede both
//!    endpoints — program-order predecessors, each read's observed
//!    writer (so control flow replays identically), fork-before and
//!    join-after edges — computed to a fixpoint. If either endpoint
//!    lands in its own closure the pair is ordered in every correct
//!    reordering and is rejected.
//! 2. **Greedy witness scheduling**: a deterministic scheduler
//!    linearizes the closure under lock mutual exclusion,
//!    read-sees-same-writer, fork/join, and (per mode) sync-order
//!    constraints. A stuck schedule rejects the candidate — greedy
//!    incompleteness can only lose predictions, never invent one.
//! 3. **Independent witness validation**: the produced sequence is
//!    re-checked from scratch by a separate validator
//!    ([`validate_witness`]). Only validated witnesses become reports,
//!    so no unwitnessed pair ever reaches the verification stages.
//!
//! Prediction is strictly additive: it runs after the normal HB sweep
//! and routes its pairs through the same report path (annotation
//! suppression, site-pair dedup, report cap), so a predictive
//! backend's report set is always a superset of the reference
//! backend's set on the same trace.
//!
//! Condition variables are invisible in the event stream (a
//! `CondWait` emits plain `Unlock`/`Lock` events at one site; the
//! wait-for-signal dependency is not recorded), so a trace that shows
//! any site emitting both `Lock` and `Unlock` events — the signature
//! of a cond re-acquire — conservatively disables prediction for that
//! unit rather than risk an unrealizable witness.

use crate::report::Access;
use owl_ir::{InstRef, Type};
use owl_vm::{CallStack, EventKind, ThreadId, TraceEvent};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Outcome counters of one unit's prediction pass, the predictive
/// analogue of `EpochStats`: threaded through `ExploreResult` into
/// `PipelineHealth` and every health surface.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PredictStats {
    /// Conflicting cross-thread access pairs submitted to the witness
    /// machinery.
    pub candidates: u64,
    /// Candidates for which a validated witness reordering was found
    /// (each becomes at most one report, subject to suppression and
    /// dedup).
    pub witnessed: u64,
    /// Candidates rejected by closure, scheduling, or validation.
    pub witness_rejected: u64,
    /// Witnessed races that needed a lock-acquire reversal (only ever
    /// non-zero under the sync-reversal mode).
    pub reversal_races: u64,
}

/// Which reorderings the witness scheduler may explore.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum PredictMode {
    /// Keep the observed order of same-object sync operations.
    SyncPreserving,
    /// Also try reorderings that reverse lock-acquire order.
    SyncReversal,
}

/// One predicted race, ready to be routed through the detector's
/// report path.
pub(crate) struct PredictedRace {
    pub addr: u64,
    pub first: Access,
    pub second: Access,
    /// First post-race read of the address in the observed trace, for
    /// write-write pairs (§6.3 needs a corrupted load to start from).
    pub read_hint: Option<Access>,
}

/// Compact recorded event: everything prediction needs, nothing the
/// detector already keeps elsewhere.
#[derive(Clone, Debug)]
enum PKind {
    Read { addr: u64, value: i64, ty: Type },
    Write { addr: u64, value: i64 },
    AtomicRead { addr: u64 },
    AtomicWrite { addr: u64 },
    Lock { addr: u64 },
    Unlock { addr: u64 },
    Fork { child: ThreadId },
    Join { child: ThreadId },
    Free { start: u64, end: u64 },
}

#[derive(Clone, Debug)]
struct PEvent {
    tid: ThreadId,
    site: InstRef,
    /// Shared with the VM's event (`Arc` clone), so recording adds no
    /// per-frame allocation.
    stack: CallStack,
    kind: PKind,
    /// Statically elided site: still a memory event (reads-from must
    /// stay exact) but never a race candidate, mirroring how the
    /// epoch backend skips shadow work at stamped sites.
    elided: bool,
}

/// A synchronization object for the sync-order constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum SyncObj {
    LockAddr(u64),
    AtomicAddr(u64),
}

/// Witness-search cost ceilings. All are *soundness-free* knobs:
/// hitting one rejects (or skips) candidates, it never fabricates a
/// witness. They exist so prediction stays linear-ish on traces with
/// heavy properly-synchronized traffic.
const MAX_TRACE_EVENTS: usize = 500_000;
const MAX_CLOSURE: usize = 10_000;
const MAX_ATTEMPTS_PER_PAIR: u32 = 4;
const MAX_TOTAL_ATTEMPTS: u64 = 4_000;
const MAX_LIST: usize = 512;

/// Records a unit's trace and predicts races from it once the run is
/// over. Owned by `HbDetector` when a predictive backend is selected.
#[derive(Clone, Debug)]
pub(crate) struct Predictor {
    mode: PredictMode,
    events: Vec<PEvent>,
    /// Live heap regions (base → words), so `Free` records its extent.
    regions: HashMap<u64, u64>,
    pub(crate) stats: PredictStats,
}

impl Predictor {
    pub(crate) fn new(mode: PredictMode) -> Self {
        Predictor {
            mode,
            events: Vec::new(),
            regions: HashMap::new(),
            stats: PredictStats::default(),
        }
    }

    /// Records one VM event. Runs on the hot path, so it only clones
    /// the `Arc` stack and copies scalars.
    pub(crate) fn record(&mut self, ev: &TraceEvent) {
        let kind = match ev.kind {
            EventKind::Read {
                addr,
                value,
                ty,
                atomic,
            } => {
                if atomic {
                    PKind::AtomicRead { addr }
                } else {
                    PKind::Read { addr, value, ty }
                }
            }
            EventKind::Write {
                addr,
                value,
                atomic,
                ..
            } => {
                if atomic {
                    PKind::AtomicWrite { addr }
                } else {
                    PKind::Write { addr, value }
                }
            }
            EventKind::Lock { addr } => PKind::Lock { addr },
            EventKind::Unlock { addr } => PKind::Unlock { addr },
            EventKind::Fork { child } => PKind::Fork { child },
            EventKind::Join { child } => PKind::Join { child },
            EventKind::Malloc { addr, size } => {
                self.regions.insert(addr, size.max(1));
                return;
            }
            EventKind::Free { addr } => {
                let size = self.regions.remove(&addr).unwrap_or(1);
                PKind::Free {
                    start: addr,
                    end: addr + size,
                }
            }
            // Faults carry no ordering or memory information.
            EventKind::Fault { .. } => return,
        };
        self.events.push(PEvent {
            tid: ev.tid,
            site: ev.site,
            stack: ev.stack.clone(),
            kind,
            elided: ev.no_shadow,
        });
    }

    /// Runs prediction over the recorded trace. `already` holds site
    /// pairs the HB sweep has reported — those need no witness.
    /// Deterministic: candidates walk addresses in order, occurrences
    /// in trace order, and every scheduler decision is index-based.
    pub(crate) fn predict(&mut self, already: &HashSet<(InstRef, InstRef)>) -> Vec<PredictedRace> {
        if self.events.len() > MAX_TRACE_EVENTS {
            return Vec::new();
        }
        let idx = TraceIndex::build(&self.events);
        if idx.has_cond_reacquire {
            // See the module docs: the wait-for-signal edge is not in
            // the trace, so any witness could be unrealizable.
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut done: HashSet<(InstRef, InstRef)> = already.clone();
        let mut attempts: HashMap<(InstRef, InstRef), u32> = HashMap::new();
        let mut total = 0u64;
        'all: for (&(addr, _gen), accs) in &idx.lists {
            if accs.len() < 2 {
                continue;
            }
            // Cheap pre-filter: single-thread lists cannot conflict.
            let first_tid = self.events[accs[0]].tid;
            if accs.iter().all(|&i| self.events[i].tid == first_tid) {
                continue;
            }
            let accs = &accs[..accs.len().min(MAX_LIST)];
            for (jj, &j) in accs.iter().enumerate() {
                for &i in &accs[..jj] {
                    let (e1, e2) = (&self.events[i], &self.events[j]);
                    if e1.tid == e2.tid {
                        continue;
                    }
                    let w1 = matches!(e1.kind, PKind::Write { .. });
                    let w2 = matches!(e2.kind, PKind::Write { .. });
                    if !w1 && !w2 {
                        continue;
                    }
                    let key = normalize(e1.site, e2.site);
                    if done.contains(&key) {
                        continue;
                    }
                    let tries = attempts.entry(key).or_insert(0);
                    if *tries >= MAX_ATTEMPTS_PER_PAIR {
                        continue;
                    }
                    *tries += 1;
                    if total >= MAX_TOTAL_ATTEMPTS {
                        break 'all;
                    }
                    total += 1;
                    self.stats.candidates += 1;
                    match try_witness(&self.events, &idx, i, j, self.mode) {
                        Some(reversal) => {
                            self.stats.witnessed += 1;
                            if reversal {
                                self.stats.reversal_races += 1;
                            }
                            done.insert(key);
                            let hint = idx.lists[&(addr, _gen)]
                                .iter()
                                .copied()
                                .filter(|&r| r > j)
                                .find(|&r| matches!(self.events[r].kind, PKind::Read { .. }))
                                .map(|r| access_of(&self.events[r]));
                            out.push(PredictedRace {
                                addr,
                                first: access_of(e1),
                                second: access_of(e2),
                                read_hint: if w1 && w2 { hint } else { None },
                            });
                        }
                        None => self.stats.witness_rejected += 1,
                    }
                }
            }
        }
        out
    }
}

fn normalize(a: InstRef, b: InstRef) -> (InstRef, InstRef) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

fn access_of(e: &PEvent) -> Access {
    let (is_write, value, ty) = match e.kind {
        PKind::Read { value, ty, .. } => (false, value, ty),
        PKind::Write { value, .. } => (true, value, Type::I64),
        // Only plain accesses become candidates / hints.
        _ => unreachable!("access_of on a non-access event"),
    };
    Access {
        tid: e.tid,
        site: e.site,
        stack: e.stack.clone(),
        is_write,
        value,
        ty,
    }
}

fn sync_obj(kind: &PKind) -> Option<SyncObj> {
    match *kind {
        PKind::Lock { addr } | PKind::Unlock { addr } => Some(SyncObj::LockAddr(addr)),
        PKind::AtomicRead { addr } | PKind::AtomicWrite { addr } => {
            Some(SyncObj::AtomicAddr(addr))
        }
        _ => None,
    }
}

fn event_addr(kind: &PKind) -> Option<u64> {
    match *kind {
        PKind::Read { addr, .. }
        | PKind::Write { addr, .. }
        | PKind::AtomicRead { addr }
        | PKind::AtomicWrite { addr } => Some(addr),
        _ => None,
    }
}

/// Everything the witness machinery needs, computed in one pass.
struct TraceIndex {
    /// Previous event of the same thread, per event.
    po_pred: Vec<Option<usize>>,
    /// Event indices per thread, in program (= trace) order.
    thread_events: BTreeMap<ThreadId, Vec<usize>>,
    /// Observed writer per read event (plain and atomic); `None`
    /// inside the option = the read saw the initial value.
    rf: HashMap<usize, Option<usize>>,
    /// The `Fork` event that created each thread.
    forker: HashMap<ThreadId, usize>,
    /// Sync events per object, in trace order.
    sync_list: HashMap<SyncObj, Vec<usize>>,
    /// Plain, un-elided accesses per `(address, heap generation)` —
    /// the generation splits candidate lists across `Free`/reuse so a
    /// recycled address never pairs accesses to different objects.
    lists: BTreeMap<(u64, u64), Vec<usize>>,
    /// Whether any site emitted both `Lock` and `Unlock` events — the
    /// trace signature of a `CondWait` re-acquire.
    has_cond_reacquire: bool,
}

impl TraceIndex {
    fn build(events: &[PEvent]) -> Self {
        let mut po_pred = vec![None; events.len()];
        let mut thread_events: BTreeMap<ThreadId, Vec<usize>> = BTreeMap::new();
        let mut rf = HashMap::new();
        let mut forker = HashMap::new();
        let mut sync_list: HashMap<SyncObj, Vec<usize>> = HashMap::new();
        let mut lists: BTreeMap<(u64, u64), Vec<usize>> = BTreeMap::new();
        let mut last_of_thread: HashMap<ThreadId, usize> = HashMap::new();
        let mut last_writer: HashMap<u64, usize> = HashMap::new();
        let mut gen: BTreeMap<u64, u64> = BTreeMap::new();
        let mut lock_sites: HashSet<InstRef> = HashSet::new();
        let mut unlock_sites: HashSet<InstRef> = HashSet::new();
        for (i, e) in events.iter().enumerate() {
            po_pred[i] = last_of_thread.insert(e.tid, i);
            thread_events.entry(e.tid).or_default().push(i);
            if let Some(o) = sync_obj(&e.kind) {
                sync_list.entry(o).or_default().push(i);
            }
            match e.kind {
                PKind::Read { addr, .. } | PKind::AtomicRead { addr } => {
                    rf.insert(i, last_writer.get(&addr).copied());
                }
                PKind::Write { addr, .. } | PKind::AtomicWrite { addr } => {
                    last_writer.insert(addr, i);
                }
                PKind::Lock { .. } => {
                    lock_sites.insert(e.site);
                }
                PKind::Unlock { .. } => {
                    unlock_sites.insert(e.site);
                }
                PKind::Fork { child } => {
                    forker.insert(child, i);
                }
                PKind::Free { start, end } => {
                    for (_, g) in gen.range_mut(start..end) {
                        *g += 1;
                    }
                }
                PKind::Join { .. } => {}
            }
            if !e.elided {
                if let PKind::Read { addr, .. } | PKind::Write { addr, .. } = e.kind {
                    let g = *gen.entry(addr).or_insert(0);
                    lists.entry((addr, g)).or_default().push(i);
                }
            }
        }
        let has_cond_reacquire = lock_sites.iter().any(|s| unlock_sites.contains(s));
        TraceIndex {
            po_pred,
            thread_events,
            rf,
            forker,
            sync_list,
            lists,
            has_cond_reacquire,
        }
    }

    /// Events of `t` recorded in the whole trace.
    fn thread_len(&self, t: ThreadId) -> usize {
        self.thread_events.get(&t).map_or(0, Vec::len)
    }
}

/// The set of events that must precede both endpoints in any correct
/// reordering: PO-downward closure, each read's observed writer,
/// fork-before, join-pulls-the-whole-child. `None` when the pair is
/// ordered (an endpoint reached its own closure) or the closure blew
/// the cost ceiling.
fn closure(events: &[PEvent], idx: &TraceIndex, e1: usize, e2: usize) -> Option<Vec<usize>> {
    let mut set: HashSet<usize> = HashSet::new();
    let mut work: Vec<usize> = Vec::new();
    let seed = |e: usize, work: &mut Vec<usize>| match idx.po_pred[e] {
        Some(p) => work.push(p),
        None => {
            if let Some(&f) = idx.forker.get(&events[e].tid) {
                work.push(f);
            }
        }
    };
    seed(e1, &mut work);
    seed(e2, &mut work);
    while let Some(x) = work.pop() {
        if x == e1 || x == e2 {
            return None; // one endpoint must precede the other
        }
        if !set.insert(x) {
            continue;
        }
        if set.len() > MAX_CLOSURE {
            return None;
        }
        match idx.po_pred[x] {
            Some(p) => work.push(p),
            None => {
                if let Some(&f) = idx.forker.get(&events[x].tid) {
                    work.push(f);
                }
            }
        }
        if let Some(&Some(w)) = idx.rf.get(&x) {
            work.push(w);
        }
        if let PKind::Join { child } = events[x].kind {
            // A join in the reordering needs the whole child run.
            if let Some(&last) = idx.thread_events.get(&child).and_then(|v| v.last()) {
                work.push(last);
            }
        }
    }
    let mut v: Vec<usize> = set.into_iter().collect();
    v.sort_unstable();
    Some(v)
}

/// Tie-break rules for the greedy scheduler. A small fixed portfolio:
/// lowest-trace-index first (the sync-preserving natural order), then
/// endpoint-thread-first variants, which find the critical-section
/// reversals the plain greedy order walks past. All deterministic.
#[derive(Clone, Copy)]
enum Strategy {
    LowestIndex,
    PreferThread(ThreadId),
}

/// Greedily linearizes `set` under the reordering constraints.
/// Returns the full witness (closure order plus the two endpoints) or
/// `None` if the schedule gets stuck. `preserve_sync_order` keeps the
/// observed order of same-lock operations (the SyncP regime); atomic
/// order is always preserved.
fn schedule(
    events: &[PEvent],
    idx: &TraceIndex,
    set: &[usize],
    e1: usize,
    e2: usize,
    preserve_sync_order: bool,
    strat: Strategy,
) -> Option<Vec<usize>> {
    let mut by_thread: BTreeMap<ThreadId, Vec<usize>> = BTreeMap::new();
    for &x in set {
        by_thread.entry(events[x].tid).or_default().push(x);
    }
    let mut ptr: BTreeMap<ThreadId, usize> = by_thread.keys().map(|&t| (t, 0)).collect();
    // Per-object in-set sync events (trace order) and schedule cursor.
    let in_set: HashSet<usize> = set.iter().copied().collect();
    let mut sync_cursor: HashMap<SyncObj, (Vec<usize>, usize)> = HashMap::new();
    for (&o, all) in &idx.sync_list {
        let constrained = preserve_sync_order || matches!(o, SyncObj::AtomicAddr(_));
        if !constrained {
            continue;
        }
        let members: Vec<usize> = all.iter().copied().filter(|x| in_set.contains(x)).collect();
        if !members.is_empty() {
            sync_cursor.insert(o, (members, 0));
        }
    }
    let mut lock_owner: HashMap<u64, ThreadId> = HashMap::new();
    let mut mem_writer: HashMap<u64, Option<usize>> = HashMap::new();
    let mut forked: HashSet<ThreadId> = HashSet::from([ThreadId::MAIN]);
    for &t in by_thread.keys() {
        if !idx.forker.contains_key(&t) {
            forked.insert(t); // alive before recording began (defensive)
        }
    }
    for t in [events[e1].tid, events[e2].tid] {
        if !idx.forker.contains_key(&t) {
            forked.insert(t);
        }
    }
    let runnable = |x: usize,
                    lock_owner: &HashMap<u64, ThreadId>,
                    mem_writer: &HashMap<u64, Option<usize>>,
                    forked: &HashSet<ThreadId>,
                    ptr: &BTreeMap<ThreadId, usize>,
                    by_thread: &BTreeMap<ThreadId, Vec<usize>>,
                    sync_cursor: &HashMap<SyncObj, (Vec<usize>, usize)>|
     -> bool {
        let e = &events[x];
        if !forked.contains(&e.tid) {
            return false;
        }
        if let Some(o) = sync_obj(&e.kind) {
            if let Some((members, cur)) = sync_cursor.get(&o) {
                if members.get(*cur) != Some(&x) {
                    return false;
                }
            }
        }
        match e.kind {
            PKind::Lock { addr } => !lock_owner.contains_key(&addr),
            PKind::Unlock { addr } => lock_owner.get(&addr) == Some(&e.tid),
            PKind::Read { addr, .. } | PKind::AtomicRead { addr } => {
                mem_writer.get(&addr).copied().unwrap_or(None) == idx.rf.get(&x).copied().flatten()
            }
            PKind::Join { child } => {
                let total = idx.thread_len(child);
                let done = by_thread.get(&child).map_or(0, |v| {
                    // The closure pulled the whole child in, so the
                    // in-set count must equal the trace count too.
                    if v.len() == total {
                        ptr.get(&child).copied().unwrap_or(0)
                    } else {
                        0
                    }
                });
                total == 0 || done == total
            }
            _ => true,
        }
    };
    let mut order = Vec::with_capacity(set.len() + 2);
    for _ in 0..set.len() {
        // Candidates are the per-thread heads (PO forces thread-local
        // order, and downward closure makes in-set events per thread a
        // PO prefix).
        let mut pick: Option<usize> = None;
        let consider = |x: usize, pick: &mut Option<usize>| {
            if runnable(
                x,
                &lock_owner,
                &mem_writer,
                &forked,
                &ptr,
                &by_thread,
                &sync_cursor,
            ) && pick.is_none_or(|p| x < p)
            {
                *pick = Some(x);
            }
        };
        if let Strategy::PreferThread(t) = strat {
            if let (Some(evs), Some(&p)) = (by_thread.get(&t), ptr.get(&t)) {
                if let Some(&head) = evs.get(p) {
                    consider(head, &mut pick);
                }
            }
        }
        if pick.is_none() {
            for (&t, evs) in &by_thread {
                if let Some(&head) = evs.get(ptr[&t]) {
                    consider(head, &mut pick);
                }
            }
        }
        let x = pick?;
        let e = &events[x];
        *ptr.get_mut(&e.tid).expect("thread has a cursor") += 1;
        if let Some(o) = sync_obj(&e.kind) {
            if let Some((_, cur)) = sync_cursor.get_mut(&o) {
                *cur += 1;
            }
        }
        match e.kind {
            PKind::Lock { addr } => {
                lock_owner.insert(addr, e.tid);
            }
            PKind::Unlock { addr } => {
                lock_owner.remove(&addr);
            }
            PKind::Write { addr, .. } | PKind::AtomicWrite { addr } => {
                mem_writer.insert(addr, Some(x));
            }
            PKind::Fork { child } => {
                forked.insert(child);
            }
            _ => {}
        }
        order.push(x);
    }
    order.push(e1);
    order.push(e2);
    Some(order)
}

/// Independent witness check: replays `order` from scratch and
/// verifies it is a correct reordering ending in the co-enabled
/// conflicting pair. Shares no state with the scheduler — this is the
/// gate the soundness contract names.
fn validate_witness(events: &[PEvent], idx: &TraceIndex, order: &[usize], e1: usize, e2: usize) -> bool {
    let n = order.len();
    if n < 2 || order[n - 2] != e1 || order[n - 1] != e2 {
        return false;
    }
    let (a, b) = (&events[e1], &events[e2]);
    let conflict = a.tid != b.tid
        && event_addr(&a.kind) == event_addr(&b.kind)
        && event_addr(&a.kind).is_some()
        && (matches!(a.kind, PKind::Write { .. }) || matches!(b.kind, PKind::Write { .. }))
        && matches!(a.kind, PKind::Read { .. } | PKind::Write { .. })
        && matches!(b.kind, PKind::Read { .. } | PKind::Write { .. });
    if !conflict {
        return false;
    }
    let mut seen: HashMap<ThreadId, usize> = HashMap::new();
    let mut lock_owner: HashMap<u64, ThreadId> = HashMap::new();
    let mut writer: HashMap<u64, Option<usize>> = HashMap::new();
    let mut forked: HashSet<ThreadId> = HashSet::from([ThreadId::MAIN]);
    for &x in order {
        if !idx.forker.contains_key(&events[x].tid) {
            forked.insert(events[x].tid);
        }
    }
    for (k, &x) in order.iter().enumerate() {
        let e = &events[x];
        let endpoint = k >= n - 2;
        // Program order: the witness's events of each thread must be
        // exactly a prefix of that thread's trace events.
        let cnt = seen.entry(e.tid).or_insert(0);
        if idx.thread_events.get(&e.tid).and_then(|v| v.get(*cnt)) != Some(&x) {
            return false;
        }
        *cnt += 1;
        if !forked.contains(&e.tid) {
            return false;
        }
        match e.kind {
            PKind::Lock { addr } => {
                if lock_owner.contains_key(&addr) {
                    return false;
                }
                lock_owner.insert(addr, e.tid);
            }
            PKind::Unlock { addr } => {
                if lock_owner.remove(&addr) != Some(e.tid) {
                    return false;
                }
            }
            PKind::Read { addr, .. } | PKind::AtomicRead { addr } => {
                // Endpoints are exempt: the race is about the access
                // happening, not about which value it sees.
                if !endpoint
                    && writer.get(&addr).copied().unwrap_or(None)
                        != idx.rf.get(&x).copied().flatten()
                {
                    return false;
                }
            }
            PKind::Write { addr, .. } | PKind::AtomicWrite { addr } => {
                writer.insert(addr, Some(x));
            }
            PKind::Fork { child } => {
                forked.insert(child);
            }
            PKind::Join { child } => {
                if seen.get(&child).copied().unwrap_or(0) != idx.thread_len(child) {
                    return false;
                }
            }
            PKind::Free { .. } => {}
        }
    }
    true
}

/// Runs the full gate sequence for one candidate. Returns
/// `Some(reversal)` when a validated witness exists.
fn try_witness(
    events: &[PEvent],
    idx: &TraceIndex,
    e1: usize,
    e2: usize,
    mode: PredictMode,
) -> Option<bool> {
    let set = closure(events, idx, e1, e2)?;
    let strategies = [
        Strategy::LowestIndex,
        Strategy::PreferThread(events[e2].tid),
        Strategy::PreferThread(events[e1].tid),
    ];
    for strat in strategies {
        if let Some(order) = schedule(events, idx, &set, e1, e2, true, strat) {
            if validate_witness(events, idx, &order, e1, e2) {
                return Some(false);
            }
        }
    }
    if mode == PredictMode::SyncReversal {
        for strat in strategies {
            if let Some(order) = schedule(events, idx, &set, e1, e2, false, strat) {
                if validate_witness(events, idx, &order, e1, e2) {
                    return Some(true);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_ir::{FuncId, InstId};
    use std::sync::Arc;

    fn ev(tid: u32, func: u32, inst: u32, kind: PKind) -> PEvent {
        PEvent {
            tid: ThreadId(tid),
            site: InstRef::new(FuncId(func), InstId(inst)),
            stack: Arc::from(vec![].into_boxed_slice()),
            kind,
            elided: false,
        }
    }

    fn predictor_with(mode: PredictMode, events: Vec<PEvent>) -> Predictor {
        let mut p = Predictor::new(mode);
        p.events = events;
        p
    }

    const X: u64 = 0x1000;
    const L: u64 = 0x2000;

    /// main: fork; write x; lock; unlock; T1: lock; unlock; read x.
    /// HB-ordered in this trace (lock edge), but sync-preservingly
    /// racy: a reordering omitting main's critical section co-enables
    /// the write and the read.
    fn syncp_trace() -> Vec<PEvent> {
        vec![
            ev(0, 0, 0, PKind::Fork { child: ThreadId(1) }),
            ev(0, 0, 1, PKind::Write { addr: X, value: 1 }),
            ev(0, 0, 2, PKind::Lock { addr: L }),
            ev(0, 0, 3, PKind::Unlock { addr: L }),
            ev(1, 1, 0, PKind::Lock { addr: L }),
            ev(1, 1, 1, PKind::Unlock { addr: L }),
            ev(
                1,
                1,
                2,
                PKind::Read {
                    addr: X,
                    value: 1,
                    ty: Type::I64,
                },
            ),
        ]
    }

    /// main: fork; lock; write x; unlock; T1: lock; unlock; write x.
    /// Both accesses inside/behind critical sections on the same lock:
    /// only a critical-section reversal exposes the race.
    fn reversal_trace() -> Vec<PEvent> {
        vec![
            ev(0, 0, 0, PKind::Fork { child: ThreadId(1) }),
            ev(0, 0, 1, PKind::Lock { addr: L }),
            ev(0, 0, 2, PKind::Write { addr: X, value: 1 }),
            ev(1, 1, 0, PKind::Lock { addr: L }),
            ev(1, 1, 1, PKind::Unlock { addr: L }),
            ev(1, 1, 2, PKind::Write { addr: X, value: 2 }),
        ]
    }

    /// Both accesses *inside* same-lock critical sections: no correct
    /// reordering co-enables them, whatever the regime.
    fn locked_trace() -> Vec<PEvent> {
        vec![
            ev(0, 0, 0, PKind::Fork { child: ThreadId(1) }),
            ev(0, 0, 1, PKind::Lock { addr: L }),
            ev(0, 0, 2, PKind::Write { addr: X, value: 1 }),
            ev(0, 0, 3, PKind::Unlock { addr: L }),
            ev(1, 1, 0, PKind::Lock { addr: L }),
            ev(
                1,
                1,
                1,
                PKind::Read {
                    addr: X,
                    value: 1,
                    ty: Type::I64,
                },
            ),
            ev(1, 1, 2, PKind::Unlock { addr: L }),
        ]
    }

    #[test]
    fn syncp_predicts_hb_ordered_race() {
        let mut p = predictor_with(PredictMode::SyncPreserving, syncp_trace());
        let races = p.predict(&HashSet::new());
        assert_eq!(races.len(), 1, "{:?}", p.stats);
        assert_eq!(races[0].addr, X);
        assert_eq!(p.stats.witnessed, 1);
        assert_eq!(p.stats.reversal_races, 0);
    }

    #[test]
    fn reversal_needs_osr_mode() {
        let mut syncp = predictor_with(PredictMode::SyncPreserving, reversal_trace());
        assert!(
            syncp.predict(&HashSet::new()).is_empty(),
            "SyncP must not reverse lock order: {:?}",
            syncp.stats
        );
        assert!(syncp.stats.witness_rejected >= 1);

        let mut osr = predictor_with(PredictMode::SyncReversal, reversal_trace());
        let races = osr.predict(&HashSet::new());
        assert_eq!(races.len(), 1, "{:?}", osr.stats);
        assert_eq!(osr.stats.reversal_races, 1);
    }

    #[test]
    fn same_lock_protection_is_never_predicted() {
        for mode in [PredictMode::SyncPreserving, PredictMode::SyncReversal] {
            let mut p = predictor_with(mode, locked_trace());
            assert!(
                p.predict(&HashSet::new()).is_empty(),
                "{mode:?} predicted through a common lock: {:?}",
                p.stats
            );
        }
    }

    #[test]
    fn rf_constraint_blocks_control_flow_divergence() {
        // T1 writes x; T2 reads x (from T1's write) and then writes y;
        // candidate pair is (write y, read y by main)... simplified:
        // the read of x inside the closure must still see T1's write,
        // which forces the write before it in every witness.
        let trace = vec![
            ev(0, 0, 0, PKind::Fork { child: ThreadId(1) }),
            ev(0, 0, 1, PKind::Fork { child: ThreadId(2) }),
            ev(1, 1, 0, PKind::Write { addr: X, value: 7 }),
            ev(
                2,
                2,
                0,
                PKind::Read {
                    addr: X,
                    value: 7,
                    ty: Type::I64,
                },
            ),
            ev(2, 2, 1, PKind::Write { addr: X + 1, value: 1 }),
            ev(0, 0, 2, PKind::Write { addr: X + 1, value: 2 }),
        ];
        let idx = TraceIndex::build(&trace);
        // Candidate: (T2's write at 4, main's write at 5) on X+1. The
        // closure must contain T2's read (PO) and transitively T1's
        // write (RF).
        let set = closure(&trace, &idx, 4, 5).expect("co-enablable");
        assert!(set.contains(&3), "PO pred of endpoint in closure");
        assert!(set.contains(&2), "observed writer pulled in via RF");
        let order = schedule(&trace, &idx, &set, 4, 5, true, Strategy::LowestIndex)
            .expect("schedulable");
        assert!(validate_witness(&trace, &idx, &order, 4, 5));
        // The validator rejects a witness whose read sees the wrong
        // writer: drop T1's write from the order.
        let broken: Vec<usize> = order.iter().copied().filter(|&x| x != 2).collect();
        assert!(!validate_witness(&trace, &idx, &broken, 4, 5));
    }

    #[test]
    fn free_generation_split_prevents_cross_object_pairs() {
        // T1 writes addr inside region; main frees the region; T2
        // writes the recycled addr. Different heap objects — not a
        // candidate pair.
        let trace = vec![
            ev(0, 0, 0, PKind::Fork { child: ThreadId(1) }),
            ev(1, 1, 0, PKind::Write { addr: X, value: 1 }),
            ev(0, 0, 1, PKind::Join { child: ThreadId(1) }),
            ev(
                0,
                0,
                2,
                PKind::Free {
                    start: X,
                    end: X + 4,
                },
            ),
            ev(0, 0, 3, PKind::Fork { child: ThreadId(2) }),
            ev(2, 2, 0, PKind::Write { addr: X, value: 2 }),
        ];
        let idx = TraceIndex::build(&trace);
        assert_eq!(idx.lists.len(), 2, "free splits the generation");
        let mut p = predictor_with(PredictMode::SyncReversal, trace);
        assert!(p.predict(&HashSet::new()).is_empty());
        assert_eq!(p.stats.candidates, 0, "no cross-generation candidates");
    }

    #[test]
    fn cond_reacquire_signature_disables_prediction() {
        // A CondWait re-acquire emits Lock at the same site as its
        // phase-1 Unlock; such traces must predict nothing.
        let mut trace = syncp_trace();
        trace.push(ev(1, 1, 3, PKind::Unlock { addr: L }));
        trace.push(ev(1, 1, 3, PKind::Lock { addr: L }));
        let mut p = predictor_with(PredictMode::SyncReversal, trace);
        assert!(p.predict(&HashSet::new()).is_empty());
        assert_eq!(p.stats.candidates, 0);
    }

    #[test]
    fn join_pulls_whole_child_into_witness() {
        // main forks T1, joins it, then writes x; T2 writes x. The
        // join in main's prefix forces all of T1 into the witness.
        let trace = vec![
            ev(0, 0, 0, PKind::Fork { child: ThreadId(1) }),
            ev(0, 0, 1, PKind::Fork { child: ThreadId(2) }),
            ev(1, 1, 0, PKind::Write { addr: X + 9, value: 3 }),
            ev(0, 0, 2, PKind::Join { child: ThreadId(1) }),
            ev(0, 0, 3, PKind::Write { addr: X, value: 1 }),
            ev(2, 2, 0, PKind::Write { addr: X, value: 2 }),
        ];
        let idx = TraceIndex::build(&trace);
        let set = closure(&trace, &idx, 4, 5).expect("co-enablable");
        assert!(set.contains(&2), "child's events pulled in by the join");
        assert!(set.contains(&3));
        let order = schedule(&trace, &idx, &set, 4, 5, true, Strategy::LowestIndex)
            .expect("schedulable");
        assert!(validate_witness(&trace, &idx, &order, 4, 5));
    }

    #[test]
    fn elided_accesses_are_memory_events_but_not_candidates() {
        let mut trace = syncp_trace();
        for e in &mut trace {
            if matches!(e.kind, PKind::Read { .. } | PKind::Write { .. }) {
                e.elided = true;
            }
        }
        let mut p = predictor_with(PredictMode::SyncPreserving, trace);
        assert!(p.predict(&HashSet::new()).is_empty());
        assert_eq!(p.stats.candidates, 0);
    }
}
