//! SKI-style schedule exploration.
//!
//! SKI exposed kernel races by systematically exploring thread
//! interleavings of syscall handlers. The explorer reproduces that
//! regime: it re-runs a program under PCT and random schedulers across
//! a seed sweep (and across the workload's inputs), aggregates
//! deduplicated race reports, and keeps per-run statistics. The same
//! machinery doubles as the "repeated native executions" driver used in
//! the paper's triggerability study (Table 4's ≤ 20 re-executions).
//!
//! Every `(input, seed)` unit runs in its own VM with its own
//! detector, so the sweep fans out over [`ExplorerConfig::workers`]
//! scoped threads. Determinism is preserved by construction:
//!
//! * units are claimed in sweep order under a lock, and every claimed
//!   unit runs to completion, so the completed units always form a
//!   contiguous prefix of the sweep (even when a deadline cuts it
//!   short);
//! * per-unit outputs are merged *in unit order* — reports dedup by
//!   normalized site pair keeping the first unit's report (adopting
//!   the first available read hint among later duplicates), counters
//!   are summed, and the merged set gets a final stable sort by site
//!   pair.
//!
//! Any worker count therefore yields byte-identical results; workers
//! only change wall-clock time.

use crate::hb::{HbAnnotation, HbBackend, HbConfig, HbDetector};
use crate::report::RaceReport;
use owl_ir::{FuncId, InstRef, Module};
use owl_vm::{ExecOutcome, PctScheduler, ProgramInput, RandomScheduler, RunConfig, Scheduler, Vm};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How the explorer produces schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExploreStrategy {
    /// Seeded uniform-random scheduling (native-execution stand-in,
    /// what TSan observes).
    Random,
    /// PCT with the given depth (systematic exploration, what SKI
    /// does).
    Pct {
        /// Number of priority change points.
        depth: usize,
    },
}

/// Exploration parameters.
#[derive(Clone, Debug)]
pub struct ExplorerConfig {
    /// Number of schedule seeds per input.
    pub runs_per_input: u64,
    /// First seed (seeds are contiguous).
    pub base_seed: u64,
    /// Scheduling strategy.
    pub strategy: ExploreStrategy,
    /// Expected execution length (PCT change-point placement).
    pub expected_steps: u64,
    /// VM limits.
    pub run_config: RunConfig,
    /// Adhoc-sync annotations to honour during detection.
    pub annotations: Vec<HbAnnotation>,
    /// Worker threads for the seed sweep (0 is treated as 1). Results
    /// are byte-identical for any count; see the module docs.
    pub workers: usize,
    /// Shadow-memory backend for the per-unit detectors.
    pub hb_backend: HbBackend,
    /// Sites the static check-elision pre-pass proved race-free, to be
    /// installed in every per-unit VM (`None` disables stamping). Does
    /// not change any result — only how much shadow work the epoch
    /// backend performs.
    pub elided_sites: Option<Arc<HashSet<InstRef>>>,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        ExplorerConfig {
            runs_per_input: 10,
            base_seed: 1,
            strategy: ExploreStrategy::Pct { depth: 3 },
            expected_steps: 2_000,
            run_config: RunConfig::default(),
            annotations: Vec::new(),
            workers: 1,
            hb_backend: HbBackend::default(),
            elided_sites: None,
        }
    }
}

/// Aggregated exploration results.
#[derive(Clone, Debug)]
pub struct ExploreResult {
    /// Deduplicated race reports across all runs.
    pub reports: Vec<RaceReport>,
    /// Total executions performed.
    pub runs: u64,
    /// Race observations suppressed by annotations, summed over runs.
    pub suppressed: usize,
    /// Observations of new site pairs dropped by the per-run
    /// [`HbConfig::max_reports`] cap, summed over runs. Non-zero means
    /// the aggregated report set is truncated.
    pub reports_dropped: usize,
    /// Outcome of every execution (violations, outputs, schedules).
    pub outcomes: Vec<ExecOutcome>,
    /// Total faults the VM's fault plan injected across all runs.
    pub injected_faults: u64,
    /// Accesses whose shadow work the epoch backend skipped thanks to
    /// the static elision pre-pass, summed over runs (0 under the
    /// reference backend, which always does the full work).
    pub events_elided: u64,
    /// Whether a wall-clock budget cut the sweep short (see
    /// [`explore_with_deadline`]).
    pub deadline_hit: bool,
}

impl ExploreResult {
    /// Reports whose racing address falls in the named global.
    pub fn reports_on<'a>(&'a self, global: &str) -> impl Iterator<Item = &'a RaceReport> + 'a {
        let g = global.to_string();
        self.reports
            .iter()
            .filter(move |r| r.global_name.as_deref() == Some(g.as_str()))
    }

    /// Whether any run triggered a violation matching `pred`.
    pub fn any_outcome_violation(&self, mut pred: impl FnMut(&owl_vm::Violation) -> bool) -> bool {
        self.outcomes.iter().any(|o| o.any_violation(&mut pred))
    }
}

/// Runs the exploration: for every input, `runs_per_input` executions,
/// each under a fresh scheduler and a fresh detector, merged
/// deterministically (see the module docs).
pub fn explore(
    module: &Module,
    entry: FuncId,
    inputs: &[ProgramInput],
    cfg: &ExplorerConfig,
) -> ExploreResult {
    explore_with_deadline(module, entry, inputs, cfg, None)
}

/// One `(input, seed)` execution's raw output, pre-merge.
struct UnitOutput {
    reports: Vec<RaceReport>,
    suppressed: usize,
    reports_dropped: usize,
    events_elided: u64,
    outcome: ExecOutcome,
}

fn run_unit(
    module: &Module,
    entry: FuncId,
    input: &ProgramInput,
    seed: u64,
    cfg: &ExplorerConfig,
) -> UnitOutput {
    let mut detector = HbDetector::new(HbConfig {
        annotations: cfg.annotations.clone(),
        backend: cfg.hb_backend,
        ..HbConfig::default()
    });
    let mut sched: Box<dyn Scheduler> = match cfg.strategy {
        ExploreStrategy::Random => Box::new(RandomScheduler::new(seed)),
        ExploreStrategy::Pct { depth } => {
            Box::new(PctScheduler::new(seed, depth, cfg.expected_steps))
        }
    };
    let mut vm = Vm::new(module, entry, input.clone(), cfg.run_config.clone());
    if let Some(elided) = &cfg.elided_sites {
        vm = vm.with_elided_sites(Arc::clone(elided));
    }
    let outcome = vm.run(sched.as_mut(), &mut detector);
    UnitOutput {
        suppressed: detector.suppressed(),
        reports_dropped: detector.reports_dropped(),
        events_elided: detector
            .epoch_stats()
            .map_or(0, |s| s.events_elided()),
        reports: detector.finish(module),
        outcome,
    }
}

/// Claim state for the sweep: units are handed out strictly in order,
/// so completed units always form a contiguous prefix of the sweep.
struct Claim {
    next: usize,
    deadline_hit: bool,
}

/// [`explore`] under a wall-clock budget: the seed sweep stops early
/// (with `deadline_hit` set) once `deadline` has elapsed. The first
/// unit always runs; reports found before the cut-off are still
/// aggregated and deduplicated.
pub fn explore_with_deadline(
    module: &Module,
    entry: FuncId,
    inputs: &[ProgramInput],
    cfg: &ExplorerConfig,
    deadline: Option<Duration>,
) -> ExploreResult {
    let start = Instant::now();
    let default_input = [ProgramInput::empty()];
    let inputs: &[ProgramInput] = if inputs.is_empty() {
        &default_input
    } else {
        inputs
    };
    // The sweep, flattened in deterministic unit order.
    let units: Vec<(usize, u64)> = (0..inputs.len())
        .flat_map(|i| (0..cfg.runs_per_input).map(move |k| (i, k)))
        .collect();
    let claim = Mutex::new(Claim {
        next: 0,
        deadline_hit: false,
    });
    let slots: Vec<Mutex<Option<UnitOutput>>> = units.iter().map(|_| Mutex::new(None)).collect();
    let worker = || {
        loop {
            let i = {
                let mut c = claim.lock().unwrap_or_else(PoisonError::into_inner);
                if c.next >= units.len() {
                    break;
                }
                if let Some(d) = deadline {
                    if c.next > 0 && start.elapsed() >= d {
                        c.deadline_hit = true;
                        break;
                    }
                }
                let i = c.next;
                c.next += 1;
                i
            };
            let (input_idx, k) = units[i];
            let out = run_unit(module, entry, &inputs[input_idx], cfg.base_seed + k, cfg);
            *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
        }
    };
    let workers = cfg.workers.max(1).min(units.len().max(1));
    if workers <= 1 {
        worker();
    } else {
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(worker);
            }
        });
    }

    // Deterministic merge, in unit order. Claims are a prefix, so the
    // first empty slot ends the completed range.
    let mut reports: Vec<RaceReport> = Vec::new();
    let mut by_key: HashMap<(InstRef, InstRef), usize> = HashMap::new();
    let mut outcomes = Vec::new();
    let mut runs = 0u64;
    let mut suppressed = 0usize;
    let mut reports_dropped = 0usize;
    let mut injected_faults = 0u64;
    let mut events_elided = 0u64;
    for slot in slots {
        let Some(unit) = slot.into_inner().unwrap_or_else(PoisonError::into_inner) else {
            break;
        };
        runs += 1;
        suppressed += unit.suppressed;
        reports_dropped += unit.reports_dropped;
        injected_faults += unit.outcome.injected_faults.len() as u64;
        events_elided += unit.events_elided;
        outcomes.push(unit.outcome);
        for r in unit.reports {
            match by_key.entry(r.key()) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(reports.len());
                    reports.push(r);
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    // Keep the first unit's report, but adopt a read
                    // hint from a later duplicate if it has one and
                    // the kept report does not.
                    let kept = &mut reports[*e.get()];
                    if kept.read_hint.is_none() {
                        kept.read_hint = r.read_hint;
                    }
                }
            }
        }
    }
    // Reports stay in discovery order (unit order, then within-unit
    // detection order) — the order is already deterministic for any
    // worker count because units merge by index, and downstream
    // consumers treat the first report on a global as the
    // representative one.
    let deadline_hit = claim
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .deadline_hit;
    ExploreResult {
        reports,
        runs,
        suppressed,
        reports_dropped,
        outcomes,
        injected_faults,
        events_elided,
        deadline_hit,
    }
}

/// Repeatedly executes `module` under fresh random schedules until
/// `success` holds on an outcome or `max_tries` is exhausted; returns
/// the number of executions used (the paper's "repetitive executions"
/// metric from §3.1/Table 4).
pub fn executions_until(
    module: &Module,
    entry: FuncId,
    input: &ProgramInput,
    run_config: &RunConfig,
    base_seed: u64,
    max_tries: u64,
    mut success: impl FnMut(&ExecOutcome) -> bool,
) -> Option<u64> {
    for k in 0..max_tries {
        let mut sched = RandomScheduler::new(base_seed + k);
        let vm = Vm::new(module, entry, input.clone(), run_config.clone());
        let outcome = vm.run(&mut sched, &mut owl_vm::NullSink);
        if success(&outcome) {
            return Some(k + 1);
        }
    }
    None
}

/// Returns the set of distinct racy site pairs, useful for comparing
/// strategies.
pub fn site_pairs(reports: &[RaceReport]) -> HashSet<(InstRef, InstRef)> {
    reports.iter().map(RaceReport::key).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_ir::{ModuleBuilder, Type};

    /// A narrow race: the write happens in a tiny window after a flag
    /// check, so fixed round-robin rarely sees it but exploration does.
    fn narrow_race() -> (Module, FuncId) {
        let mut mb = ModuleBuilder::new("narrow");
        let g = mb.global("x", 1, Type::I64);
        let w = mb.declare_func("w", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(w);
            let a = b.global_addr(g);
            b.store(a, 1);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t = b.thread_create(w, 0);
            let a = b.global_addr(g);
            b.load(a, Type::I64);
            b.thread_join(t);
            b.ret(None);
        }
        (mb.finish(), main)
    }

    #[test]
    fn exploration_finds_races_and_dedups() {
        let (m, main) = narrow_race();
        let result = explore(
            &m,
            main,
            &[],
            &ExplorerConfig {
                runs_per_input: 20,
                ..ExplorerConfig::default()
            },
        );
        assert_eq!(result.runs, 20);
        assert_eq!(result.reports.len(), 1, "{:?}", result.reports);
        assert_eq!(result.reports_on("x").count(), 1);
    }

    #[test]
    fn strategies_cover_both_ways() {
        let (m, main) = narrow_race();
        for strategy in [ExploreStrategy::Random, ExploreStrategy::Pct { depth: 2 }] {
            let result = explore(
                &m,
                main,
                &[],
                &ExplorerConfig {
                    runs_per_input: 30,
                    strategy,
                    ..ExplorerConfig::default()
                },
            );
            assert!(
                !result.reports.is_empty(),
                "strategy {strategy:?} found nothing"
            );
        }
    }

    #[test]
    fn executions_until_counts_tries() {
        let (m, main) = narrow_race();
        let tries = executions_until(
            &m,
            main,
            &ProgramInput::empty(),
            &RunConfig::default(),
            7,
            50,
            |o| o.status == owl_vm::ExitStatus::Finished,
        );
        assert_eq!(tries, Some(1), "every run finishes");
        let never = executions_until(
            &m,
            main,
            &ProgramInput::empty(),
            &RunConfig::default(),
            7,
            5,
            |_| false,
        );
        assert_eq!(never, None);
    }

    #[test]
    fn expired_deadline_stops_after_first_run() {
        let (m, main) = narrow_race();
        let result = explore_with_deadline(
            &m,
            main,
            &[],
            &ExplorerConfig {
                runs_per_input: 50,
                ..ExplorerConfig::default()
            },
            Some(Duration::from_secs(0)),
        );
        assert_eq!(result.runs, 1, "one run happens before the check");
        assert!(result.deadline_hit);
    }

    #[test]
    fn site_pair_sets() {
        let (m, main) = narrow_race();
        let r = explore(&m, main, &[], &ExplorerConfig::default());
        assert_eq!(site_pairs(&r.reports).len(), r.reports.len());
    }
}
