//! SKI-style schedule exploration.
//!
//! SKI exposed kernel races by systematically exploring thread
//! interleavings of syscall handlers. The explorer reproduces that
//! regime: it re-runs a program under PCT and random schedulers across
//! a seed sweep (and across the workload's inputs), aggregates
//! deduplicated race reports, and keeps per-run statistics. The same
//! machinery doubles as the "repeated native executions" driver used in
//! the paper's triggerability study (Table 4's ≤ 20 re-executions).

use crate::hb::{HbAnnotation, HbConfig, HbDetector};
use crate::report::RaceReport;
use owl_ir::{FuncId, InstRef, Module};
use owl_vm::{ExecOutcome, PctScheduler, ProgramInput, RandomScheduler, RunConfig, Scheduler, Vm};
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// How the explorer produces schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExploreStrategy {
    /// Seeded uniform-random scheduling (native-execution stand-in,
    /// what TSan observes).
    Random,
    /// PCT with the given depth (systematic exploration, what SKI
    /// does).
    Pct {
        /// Number of priority change points.
        depth: usize,
    },
}

/// Exploration parameters.
#[derive(Clone, Debug)]
pub struct ExplorerConfig {
    /// Number of schedule seeds per input.
    pub runs_per_input: u64,
    /// First seed (seeds are contiguous).
    pub base_seed: u64,
    /// Scheduling strategy.
    pub strategy: ExploreStrategy,
    /// Expected execution length (PCT change-point placement).
    pub expected_steps: u64,
    /// VM limits.
    pub run_config: RunConfig,
    /// Adhoc-sync annotations to honour during detection.
    pub annotations: Vec<HbAnnotation>,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        ExplorerConfig {
            runs_per_input: 10,
            base_seed: 1,
            strategy: ExploreStrategy::Pct { depth: 3 },
            expected_steps: 2_000,
            run_config: RunConfig::default(),
            annotations: Vec::new(),
        }
    }
}

/// Aggregated exploration results.
#[derive(Clone, Debug)]
pub struct ExploreResult {
    /// Deduplicated race reports across all runs.
    pub reports: Vec<RaceReport>,
    /// Total executions performed.
    pub runs: u64,
    /// Race observations suppressed by annotations, summed over runs.
    pub suppressed: usize,
    /// Outcome of every execution (violations, outputs, schedules).
    pub outcomes: Vec<ExecOutcome>,
    /// Total faults the VM's fault plan injected across all runs.
    pub injected_faults: u64,
    /// Whether a wall-clock budget cut the sweep short (see
    /// [`explore_with_deadline`]).
    pub deadline_hit: bool,
}

impl ExploreResult {
    /// Reports whose racing address falls in the named global.
    pub fn reports_on<'a>(&'a self, global: &str) -> impl Iterator<Item = &'a RaceReport> + 'a {
        let g = global.to_string();
        self.reports
            .iter()
            .filter(move |r| r.global_name.as_deref() == Some(g.as_str()))
    }

    /// Whether any run triggered a violation matching `pred`.
    pub fn any_outcome_violation(&self, mut pred: impl FnMut(&owl_vm::Violation) -> bool) -> bool {
        self.outcomes.iter().any(|o| o.any_violation(&mut pred))
    }
}

/// Runs the exploration: for every input, `runs_per_input` executions
/// under fresh schedulers, all feeding one deduplicating detector.
pub fn explore(
    module: &Module,
    entry: FuncId,
    inputs: &[ProgramInput],
    cfg: &ExplorerConfig,
) -> ExploreResult {
    explore_with_deadline(module, entry, inputs, cfg, None)
}

/// [`explore`] under a wall-clock budget: the seed sweep stops early
/// (with `deadline_hit` set) once `deadline` has elapsed. Reports
/// found before the cut-off are still aggregated and deduplicated.
pub fn explore_with_deadline(
    module: &Module,
    entry: FuncId,
    inputs: &[ProgramInput],
    cfg: &ExplorerConfig,
    deadline: Option<Duration>,
) -> ExploreResult {
    let start = Instant::now();
    let mut detector = HbDetector::new(HbConfig {
        annotations: cfg.annotations.clone(),
        ..HbConfig::default()
    });
    let mut outcomes = Vec::new();
    let mut runs = 0;
    let mut injected_faults = 0u64;
    let mut deadline_hit = false;
    let default_input = [ProgramInput::empty()];
    let inputs: &[ProgramInput] = if inputs.is_empty() {
        &default_input
    } else {
        inputs
    };
    'sweep: for input in inputs {
        for k in 0..cfg.runs_per_input {
            if let Some(d) = deadline {
                if runs > 0 && start.elapsed() >= d {
                    deadline_hit = true;
                    break 'sweep;
                }
            }
            let seed = cfg.base_seed + k;
            let mut sched: Box<dyn Scheduler> = match cfg.strategy {
                ExploreStrategy::Random => Box::new(RandomScheduler::new(seed)),
                ExploreStrategy::Pct { depth } => {
                    Box::new(PctScheduler::new(seed, depth, cfg.expected_steps))
                }
            };
            let vm = Vm::new(module, entry, input.clone(), cfg.run_config.clone());
            let outcome = vm.run(sched.as_mut(), &mut detector);
            injected_faults += outcome.injected_faults.len() as u64;
            outcomes.push(outcome);
            runs += 1;
        }
    }
    let suppressed = detector.suppressed();
    let reports = detector.finish(module);
    ExploreResult {
        reports,
        runs,
        suppressed,
        outcomes,
        injected_faults,
        deadline_hit,
    }
}

/// Repeatedly executes `module` under fresh random schedules until
/// `success` holds on an outcome or `max_tries` is exhausted; returns
/// the number of executions used (the paper's "repetitive executions"
/// metric from §3.1/Table 4).
pub fn executions_until(
    module: &Module,
    entry: FuncId,
    input: &ProgramInput,
    run_config: &RunConfig,
    base_seed: u64,
    max_tries: u64,
    mut success: impl FnMut(&ExecOutcome) -> bool,
) -> Option<u64> {
    for k in 0..max_tries {
        let mut sched = RandomScheduler::new(base_seed + k);
        let vm = Vm::new(module, entry, input.clone(), run_config.clone());
        let outcome = vm.run(&mut sched, &mut owl_vm::NullSink);
        if success(&outcome) {
            return Some(k + 1);
        }
    }
    None
}

/// Returns the set of distinct racy site pairs, useful for comparing
/// strategies.
pub fn site_pairs(reports: &[RaceReport]) -> HashSet<(InstRef, InstRef)> {
    reports.iter().map(RaceReport::key).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_ir::{ModuleBuilder, Type};

    /// A narrow race: the write happens in a tiny window after a flag
    /// check, so fixed round-robin rarely sees it but exploration does.
    fn narrow_race() -> (Module, FuncId) {
        let mut mb = ModuleBuilder::new("narrow");
        let g = mb.global("x", 1, Type::I64);
        let w = mb.declare_func("w", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(w);
            let a = b.global_addr(g);
            b.store(a, 1);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t = b.thread_create(w, 0);
            let a = b.global_addr(g);
            b.load(a, Type::I64);
            b.thread_join(t);
            b.ret(None);
        }
        (mb.finish(), main)
    }

    #[test]
    fn exploration_finds_races_and_dedups() {
        let (m, main) = narrow_race();
        let result = explore(
            &m,
            main,
            &[],
            &ExplorerConfig {
                runs_per_input: 20,
                ..ExplorerConfig::default()
            },
        );
        assert_eq!(result.runs, 20);
        assert_eq!(result.reports.len(), 1, "{:?}", result.reports);
        assert_eq!(result.reports_on("x").count(), 1);
    }

    #[test]
    fn strategies_cover_both_ways() {
        let (m, main) = narrow_race();
        for strategy in [ExploreStrategy::Random, ExploreStrategy::Pct { depth: 2 }] {
            let result = explore(
                &m,
                main,
                &[],
                &ExplorerConfig {
                    runs_per_input: 30,
                    strategy,
                    ..ExplorerConfig::default()
                },
            );
            assert!(
                !result.reports.is_empty(),
                "strategy {strategy:?} found nothing"
            );
        }
    }

    #[test]
    fn executions_until_counts_tries() {
        let (m, main) = narrow_race();
        let tries = executions_until(
            &m,
            main,
            &ProgramInput::empty(),
            &RunConfig::default(),
            7,
            50,
            |o| o.status == owl_vm::ExitStatus::Finished,
        );
        assert_eq!(tries, Some(1), "every run finishes");
        let never = executions_until(
            &m,
            main,
            &ProgramInput::empty(),
            &RunConfig::default(),
            7,
            5,
            |_| false,
        );
        assert_eq!(never, None);
    }

    #[test]
    fn expired_deadline_stops_after_first_run() {
        let (m, main) = narrow_race();
        let result = explore_with_deadline(
            &m,
            main,
            &[],
            &ExplorerConfig {
                runs_per_input: 50,
                ..ExplorerConfig::default()
            },
            Some(Duration::from_secs(0)),
        );
        assert_eq!(result.runs, 1, "one run happens before the check");
        assert!(result.deadline_hit);
    }

    #[test]
    fn site_pair_sets() {
        let (m, main) = narrow_race();
        let r = explore(&m, main, &[], &ExplorerConfig::default());
        assert_eq!(site_pairs(&r.reports).len(), r.reports.len());
    }
}
