//! SKI-style schedule exploration.
//!
//! SKI exposed kernel races by systematically exploring thread
//! interleavings of syscall handlers. The explorer reproduces that
//! regime: it re-runs a program under PCT and random schedulers across
//! a seed sweep (and across the workload's inputs), aggregates
//! deduplicated race reports, and keeps per-run statistics. The same
//! machinery doubles as the "repeated native executions" driver used in
//! the paper's triggerability study (Table 4's ≤ 20 re-executions).
//!
//! Every `(input, seed)` unit runs in its own VM with its own
//! detector, so the sweep fans out over [`ExplorerConfig::workers`]
//! scoped threads. Determinism is preserved by construction:
//!
//! * units are claimed in sweep order under a lock, and every claimed
//!   unit runs to completion, so the completed units always form a
//!   contiguous prefix of the sweep (even when a deadline cuts it
//!   short);
//! * per-unit outputs are merged *in unit order* — reports dedup by
//!   normalized site pair keeping the first unit's report (adopting
//!   the first available read hint among later duplicates), counters
//!   are summed, and the merged set gets a final stable sort by site
//!   pair.
//!
//! Any worker count therefore yields byte-identical results; workers
//! only change wall-clock time.

use crate::hb::{HbAnnotation, HbBackend, HbConfig, HbDetector};
use crate::report::RaceReport;
use crate::spill::{self, SpillKillSwitch};
use owl_ir::{FuncId, InstRef, Module};
use owl_vm::{
    event_channel, ChannelReceiver, ExecOutcome, PctScheduler, ProgramInput, RandomScheduler,
    RunConfig, Scheduler, TraceSink, Vm,
};
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How the explorer produces schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExploreStrategy {
    /// Seeded uniform-random scheduling (native-execution stand-in,
    /// what TSan observes).
    Random,
    /// PCT with the given depth (systematic exploration, what SKI
    /// does).
    Pct {
        /// Number of priority change points.
        depth: usize,
    },
}

/// Streaming hand-off and memory-governance parameters for the
/// VM→detector pipeline.
///
/// With a non-zero `channel_capacity`, every `(input, seed)` unit runs
/// its VM on a producer thread feeding a bounded event channel; the
/// detector consumes on the claiming worker thread, and a full channel
/// blocks the producer (backpressure) instead of growing a buffer.
/// `max_trace_mem` adds a budget on the in-flight window: past the
/// soft limit (half the budget) the window spills to checksummed
/// segment files under `spill_dir` and is immediately replayed into
/// the detector; past the hard limit with nowhere to spill, the unit
/// aborts with a typed memory-budget verdict instead of OOMing.
///
/// None of this changes results: report streams are byte-identical at
/// any capacity and any spill threshold (enforced by
/// `tests/detector_equivalence.rs`), because spill points depend only
/// on event sizes, never on thread timing.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Bounded channel capacity in events. `0` disables streaming and
    /// runs the VM inline on the worker thread (the legacy in-memory
    /// path, kept as the equivalence baseline).
    pub channel_capacity: usize,
    /// Hard cap, in bytes, on a unit's in-flight event window
    /// (`--max-trace-mem`). `None` = unbounded.
    pub max_trace_mem: Option<u64>,
    /// Where spill segments go. `None` with a budget set means the
    /// unit aborts as soon as the window crosses the hard limit.
    pub spill_dir: Option<PathBuf>,
    /// Prefix for segment file names (campaigns set the program name,
    /// the daemon a job id), keeping concurrent units collision-free
    /// alongside the `-u<input>-s<seed>-<seq>.seg` suffix.
    pub tag_prefix: String,
    /// Crash-injection switch for the spill writer (tests only).
    pub spill_kill: Option<SpillKillSwitch>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            channel_capacity: 1024,
            max_trace_mem: None,
            spill_dir: None,
            tag_prefix: "unit".to_string(),
            spill_kill: None,
        }
    }
}

/// Exploration parameters.
#[derive(Clone, Debug)]
pub struct ExplorerConfig {
    /// Number of schedule seeds per input.
    pub runs_per_input: u64,
    /// First seed (seeds are contiguous).
    pub base_seed: u64,
    /// Scheduling strategy.
    pub strategy: ExploreStrategy,
    /// Expected execution length (PCT change-point placement).
    pub expected_steps: u64,
    /// VM limits.
    pub run_config: RunConfig,
    /// Adhoc-sync annotations to honour during detection.
    pub annotations: Vec<HbAnnotation>,
    /// Worker threads for the seed sweep (0 is treated as 1). Results
    /// are byte-identical for any count; see the module docs.
    pub workers: usize,
    /// Shadow-memory backend for the per-unit detectors.
    pub hb_backend: HbBackend,
    /// Sites the static check-elision pre-pass proved race-free, to be
    /// installed in every per-unit VM (`None` disables stamping). Does
    /// not change any result — only how much shadow work the epoch
    /// backend performs.
    pub elided_sites: Option<Arc<HashSet<InstRef>>>,
    /// Streaming hand-off and memory governance (see [`StreamConfig`]).
    pub stream: StreamConfig,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        ExplorerConfig {
            runs_per_input: 10,
            base_seed: 1,
            strategy: ExploreStrategy::Pct { depth: 3 },
            expected_steps: 2_000,
            run_config: RunConfig::default(),
            annotations: Vec::new(),
            workers: 1,
            hb_backend: HbBackend::default(),
            elided_sites: None,
            stream: StreamConfig::default(),
        }
    }
}

/// Aggregated exploration results.
#[derive(Clone, Debug)]
pub struct ExploreResult {
    /// Deduplicated race reports across all runs.
    pub reports: Vec<RaceReport>,
    /// Total executions performed.
    pub runs: u64,
    /// Race observations suppressed by annotations, summed over runs.
    pub suppressed: usize,
    /// Observations of new site pairs dropped by the per-run
    /// [`HbConfig::max_reports`] cap, summed over runs. Non-zero means
    /// the aggregated report set is truncated.
    pub reports_dropped: usize,
    /// Outcome of every execution (violations, outputs, schedules).
    pub outcomes: Vec<ExecOutcome>,
    /// Total faults the VM's fault plan injected across all runs.
    pub injected_faults: u64,
    /// Accesses whose shadow work the epoch backend skipped thanks to
    /// the static elision pre-pass, summed over runs (0 under the
    /// reference backend, which always does the full work).
    pub events_elided: u64,
    /// Bytes of trace spilled to segment files, summed over units.
    pub trace_spilled_bytes: u64,
    /// Spill segments written (each immediately replayed and deleted).
    pub trace_spill_segments: u64,
    /// Times a unit's in-flight window crossed the soft memory limit
    /// (each either spilled or, with nowhere to spill, aborted).
    pub mem_pressure_events: u64,
    /// Shadow cells reclaimed by the detectors' thread-exit/free GC,
    /// summed over units.
    pub shadow_cells_gced: u64,
    /// Units aborted because their trace outgrew
    /// [`StreamConfig::max_trace_mem`] with nowhere to spill. Aborted
    /// units contribute no reports; the pipeline turns a non-zero
    /// count into a typed memory-budget verdict.
    pub units_aborted_mem_budget: u64,
    /// Conflicting pairs the predictive backends submitted to the
    /// witness machinery, summed over units (0 for non-predictive
    /// backends; see [`crate::PredictStats`]).
    pub predict_candidates: u64,
    /// Predicted-race candidates that got a validated witness
    /// reordering, summed over units.
    pub predict_witnessed: u64,
    /// Candidates rejected by closure, scheduling, or witness
    /// validation, summed over units.
    pub predict_witness_rejected: u64,
    /// Witnessed races that required a lock-acquire reversal (only
    /// non-zero under [`HbBackend::SyncReversal`]), summed over units.
    pub predict_reversal_races: u64,
    /// Whether a wall-clock budget cut the sweep short (see
    /// [`explore_with_deadline`]).
    pub deadline_hit: bool,
}

impl ExploreResult {
    /// Reports whose racing address falls in the named global.
    pub fn reports_on<'a>(&'a self, global: &str) -> impl Iterator<Item = &'a RaceReport> + 'a {
        let g = global.to_string();
        self.reports
            .iter()
            .filter(move |r| r.global_name.as_deref() == Some(g.as_str()))
    }

    /// Whether any run triggered a violation matching `pred`.
    pub fn any_outcome_violation(&self, mut pred: impl FnMut(&owl_vm::Violation) -> bool) -> bool {
        self.outcomes.iter().any(|o| o.any_violation(&mut pred))
    }
}

/// Runs the exploration: for every input, `runs_per_input` executions,
/// each under a fresh scheduler and a fresh detector, merged
/// deterministically (see the module docs).
pub fn explore(
    module: &Module,
    entry: FuncId,
    inputs: &[ProgramInput],
    cfg: &ExplorerConfig,
) -> ExploreResult {
    explore_with_deadline(module, entry, inputs, cfg, None)
}

/// One `(input, seed)` execution's raw output, pre-merge.
struct UnitOutput {
    reports: Vec<RaceReport>,
    suppressed: usize,
    reports_dropped: usize,
    events_elided: u64,
    outcome: ExecOutcome,
    spilled_bytes: u64,
    spill_segments: u64,
    pressure_events: u64,
    cells_gced: u64,
    mem_budget_aborted: bool,
    predict: crate::PredictStats,
}

/// What the consuming side of one streamed unit did.
#[derive(Debug, Default)]
struct StreamStats {
    spilled_bytes: u64,
    spill_segments: u64,
    pressure_events: u64,
    aborted: bool,
}

/// Drains the event channel into the detector, enforcing the memory
/// budget. With no budget every event is fed straight through; with a
/// budget events buffer into a window that spills (and immediately
/// replays) whole segments past the soft limit, and the unit aborts if
/// the window crosses the hard limit with nowhere to spill. A typed
/// spill failure ([`crate::spill::SpillError`] — I/O or an uncodable
/// event) also aborts: the budget could not be honored, which is
/// exactly what the typed verdict reports.
fn consume_stream(
    rx: &ChannelReceiver,
    detector: &mut HbDetector,
    stream: &StreamConfig,
    tag: &str,
) -> StreamStats {
    let mut stats = StreamStats::default();
    let Some(hard) = stream.max_trace_mem else {
        while let Some(ev) = rx.recv() {
            detector.on_event_owned(ev);
        }
        return stats;
    };
    let soft = (hard / 2).max(1);
    let mut window: VecDeque<owl_vm::TraceEvent> = VecDeque::new();
    let mut window_bytes = 0u64;
    let mut seq = 0u64;
    while let Some(ev) = rx.recv() {
        window_bytes += spill::approx_event_bytes(&ev) as u64;
        window.push_back(ev);
        if window_bytes <= soft {
            continue;
        }
        match &stream.spill_dir {
            Some(dir) => {
                stats.pressure_events += 1;
                let spilled = (|| -> Result<u64, spill::SpillError> {
                    std::fs::create_dir_all(dir)?;
                    let path = dir.join(format!("{tag}-{seq}.seg"));
                    if path.exists() {
                        // Leftover from a killed run: restore the
                        // every-line-valid invariant before reuse.
                        let _ = spill::recover_segment(&path);
                    }
                    let bytes =
                        spill::write_segment(&path, window.iter(), stream.spill_kill.as_ref())?;
                    spill::replay_segment(&path, detector)?;
                    std::fs::remove_file(&path)?;
                    Ok(bytes)
                })();
                match spilled {
                    Ok(bytes) => {
                        stats.spilled_bytes += bytes;
                        stats.spill_segments += 1;
                        seq += 1;
                        window.clear();
                        window_bytes = 0;
                    }
                    Err(_) => {
                        stats.aborted = true;
                        return stats;
                    }
                }
            }
            None if window_bytes > hard => {
                stats.pressure_events += 1;
                stats.aborted = true;
                return stats;
            }
            None => {}
        }
    }
    for ev in window {
        detector.on_event_owned(ev);
    }
    stats
}

fn run_unit(
    module: &Module,
    entry: FuncId,
    input: &ProgramInput,
    input_idx: usize,
    seed: u64,
    cfg: &ExplorerConfig,
) -> UnitOutput {
    let mut detector = HbDetector::new(HbConfig {
        annotations: cfg.annotations.clone(),
        backend: cfg.hb_backend,
        ..HbConfig::default()
    });
    let build_sched = || -> Box<dyn Scheduler> {
        match cfg.strategy {
            ExploreStrategy::Random => Box::new(RandomScheduler::new(seed)),
            ExploreStrategy::Pct { depth } => {
                Box::new(PctScheduler::new(seed, depth, cfg.expected_steps))
            }
        }
    };
    let build_vm = || {
        let mut vm = Vm::new(module, entry, input.clone(), cfg.run_config.clone());
        if let Some(elided) = &cfg.elided_sites {
            vm = vm.with_elided_sites(Arc::clone(elided));
        }
        vm
    };

    let (outcome, stream_stats) = if cfg.stream.channel_capacity == 0 {
        // Legacy inline path: the detector consumes directly inside
        // the VM's emit hook. Baseline for the streaming equivalence
        // tests; no budget applies (there is no in-flight window).
        let mut sched = build_sched();
        let outcome = build_vm().run(sched.as_mut(), &mut detector);
        (outcome, StreamStats::default())
    } else {
        let (tx, rx) = event_channel(cfg.stream.channel_capacity);
        let tag = format!("{}-u{input_idx}-s{seed}", cfg.stream.tag_prefix);
        std::thread::scope(|s| {
            let producer = s.spawn(move || {
                let mut tx = tx;
                let mut sched = build_sched();
                build_vm().run(sched.as_mut(), &mut tx)
                // `tx` drops here, closing the channel.
            });
            // The consumer may panic (spill kill switch) while the
            // producer is blocked on a full channel; catch it, release
            // the producer by closing the receiver, join, and only
            // then re-raise — otherwise the scope would deadlock and
            // the crash payload would be lost.
            let consumed = catch_unwind(AssertUnwindSafe(|| {
                consume_stream(&rx, &mut detector, &cfg.stream, &tag)
            }));
            rx.close();
            let outcome = match producer.join() {
                Ok(o) => o,
                Err(p) => resume_unwind(p),
            };
            match consumed {
                Ok(stats) => (outcome, stats),
                Err(p) => resume_unwind(p),
            }
        })
    };

    // The predictive pass runs before any counter is read so its
    // reports and stats land in this unit's output. An aborted unit
    // saw only a trace prefix and reports nothing, so predicting on it
    // would only waste time.
    if !stream_stats.aborted {
        detector.run_prediction();
    }
    let cells_gced = detector.shadow_cells_gced();
    let predict = detector.predict_stats();
    UnitOutput {
        suppressed: detector.suppressed(),
        reports_dropped: detector.reports_dropped(),
        events_elided: detector.epoch_stats().map_or(0, |s| s.events_elided()),
        // An aborted unit saw only a prefix of its trace: its partial
        // reports are discarded so the (quarantined) result never
        // mixes complete and truncated detection.
        reports: if stream_stats.aborted {
            Vec::new()
        } else {
            detector.finish(module)
        },
        outcome,
        spilled_bytes: stream_stats.spilled_bytes,
        spill_segments: stream_stats.spill_segments,
        pressure_events: stream_stats.pressure_events,
        cells_gced,
        mem_budget_aborted: stream_stats.aborted,
        predict,
    }
}

/// Claim state for the sweep: units are handed out strictly in order,
/// so completed units always form a contiguous prefix of the sweep.
struct Claim {
    next: usize,
    deadline_hit: bool,
}

/// [`explore`] under a wall-clock budget: the seed sweep stops early
/// (with `deadline_hit` set) once `deadline` has elapsed. The first
/// unit always runs; reports found before the cut-off are still
/// aggregated and deduplicated.
pub fn explore_with_deadline(
    module: &Module,
    entry: FuncId,
    inputs: &[ProgramInput],
    cfg: &ExplorerConfig,
    deadline: Option<Duration>,
) -> ExploreResult {
    let start = Instant::now();
    let default_input = [ProgramInput::empty()];
    let inputs: &[ProgramInput] = if inputs.is_empty() {
        &default_input
    } else {
        inputs
    };
    // The sweep, flattened in deterministic unit order.
    let units: Vec<(usize, u64)> = (0..inputs.len())
        .flat_map(|i| (0..cfg.runs_per_input).map(move |k| (i, k)))
        .collect();
    let claim = Mutex::new(Claim {
        next: 0,
        deadline_hit: false,
    });
    let slots: Vec<Mutex<Option<UnitOutput>>> = units.iter().map(|_| Mutex::new(None)).collect();
    let worker = || {
        loop {
            let i = {
                let mut c = claim.lock().unwrap_or_else(PoisonError::into_inner);
                if c.next >= units.len() {
                    break;
                }
                if let Some(d) = deadline {
                    if c.next > 0 && start.elapsed() >= d {
                        c.deadline_hit = true;
                        break;
                    }
                }
                let i = c.next;
                c.next += 1;
                i
            };
            let (input_idx, k) = units[i];
            let out = run_unit(
                module,
                entry,
                &inputs[input_idx],
                input_idx,
                cfg.base_seed + k,
                cfg,
            );
            *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
        }
    };
    let workers = cfg.workers.max(1).min(units.len().max(1));
    if workers <= 1 {
        worker();
    } else {
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(worker);
            }
        });
    }

    // Deterministic merge, in unit order. Claims are a prefix, so the
    // first empty slot ends the completed range.
    let mut reports: Vec<RaceReport> = Vec::new();
    let mut by_key: HashMap<(InstRef, InstRef), usize> = HashMap::new();
    let mut outcomes = Vec::new();
    let mut runs = 0u64;
    let mut suppressed = 0usize;
    let mut reports_dropped = 0usize;
    let mut injected_faults = 0u64;
    let mut events_elided = 0u64;
    let mut trace_spilled_bytes = 0u64;
    let mut trace_spill_segments = 0u64;
    let mut mem_pressure_events = 0u64;
    let mut shadow_cells_gced = 0u64;
    let mut units_aborted_mem_budget = 0u64;
    let mut predict_candidates = 0u64;
    let mut predict_witnessed = 0u64;
    let mut predict_witness_rejected = 0u64;
    let mut predict_reversal_races = 0u64;
    for slot in slots {
        let Some(unit) = slot.into_inner().unwrap_or_else(PoisonError::into_inner) else {
            break;
        };
        runs += 1;
        suppressed += unit.suppressed;
        reports_dropped += unit.reports_dropped;
        injected_faults += unit.outcome.injected_faults.len() as u64;
        events_elided += unit.events_elided;
        trace_spilled_bytes += unit.spilled_bytes;
        trace_spill_segments += unit.spill_segments;
        mem_pressure_events += unit.pressure_events;
        shadow_cells_gced += unit.cells_gced;
        units_aborted_mem_budget += u64::from(unit.mem_budget_aborted);
        predict_candidates += unit.predict.candidates;
        predict_witnessed += unit.predict.witnessed;
        predict_witness_rejected += unit.predict.witness_rejected;
        predict_reversal_races += unit.predict.reversal_races;
        outcomes.push(unit.outcome);
        for r in unit.reports {
            match by_key.entry(r.key()) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(reports.len());
                    reports.push(r);
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    // Keep the first unit's report, but adopt a read
                    // hint from a later duplicate if it has one and
                    // the kept report does not.
                    let kept = &mut reports[*e.get()];
                    if kept.read_hint.is_none() {
                        kept.read_hint = r.read_hint;
                    }
                }
            }
        }
    }
    // Reports stay in discovery order (unit order, then within-unit
    // detection order) — the order is already deterministic for any
    // worker count because units merge by index, and downstream
    // consumers treat the first report on a global as the
    // representative one.
    let deadline_hit = claim
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .deadline_hit;
    ExploreResult {
        reports,
        runs,
        suppressed,
        reports_dropped,
        outcomes,
        injected_faults,
        events_elided,
        trace_spilled_bytes,
        trace_spill_segments,
        mem_pressure_events,
        shadow_cells_gced,
        units_aborted_mem_budget,
        predict_candidates,
        predict_witnessed,
        predict_witness_rejected,
        predict_reversal_races,
        deadline_hit,
    }
}

/// Repeatedly executes `module` under fresh random schedules until
/// `success` holds on an outcome or `max_tries` is exhausted; returns
/// the number of executions used (the paper's "repetitive executions"
/// metric from §3.1/Table 4).
pub fn executions_until(
    module: &Module,
    entry: FuncId,
    input: &ProgramInput,
    run_config: &RunConfig,
    base_seed: u64,
    max_tries: u64,
    mut success: impl FnMut(&ExecOutcome) -> bool,
) -> Option<u64> {
    for k in 0..max_tries {
        let mut sched = RandomScheduler::new(base_seed + k);
        let vm = Vm::new(module, entry, input.clone(), run_config.clone());
        let outcome = vm.run(&mut sched, &mut owl_vm::NullSink);
        if success(&outcome) {
            return Some(k + 1);
        }
    }
    None
}

/// Returns the set of distinct racy site pairs, useful for comparing
/// strategies.
pub fn site_pairs(reports: &[RaceReport]) -> HashSet<(InstRef, InstRef)> {
    reports.iter().map(RaceReport::key).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_ir::{ModuleBuilder, Type};

    /// A narrow race: the write happens in a tiny window after a flag
    /// check, so fixed round-robin rarely sees it but exploration does.
    fn narrow_race() -> (Module, FuncId) {
        let mut mb = ModuleBuilder::new("narrow");
        let g = mb.global("x", 1, Type::I64);
        let w = mb.declare_func("w", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(w);
            let a = b.global_addr(g);
            b.store(a, 1);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t = b.thread_create(w, 0);
            let a = b.global_addr(g);
            b.load(a, Type::I64);
            b.thread_join(t);
            b.ret(None);
        }
        (mb.finish(), main)
    }

    #[test]
    fn exploration_finds_races_and_dedups() {
        let (m, main) = narrow_race();
        let result = explore(
            &m,
            main,
            &[],
            &ExplorerConfig {
                runs_per_input: 20,
                ..ExplorerConfig::default()
            },
        );
        assert_eq!(result.runs, 20);
        assert_eq!(result.reports.len(), 1, "{:?}", result.reports);
        assert_eq!(result.reports_on("x").count(), 1);
    }

    #[test]
    fn strategies_cover_both_ways() {
        let (m, main) = narrow_race();
        for strategy in [ExploreStrategy::Random, ExploreStrategy::Pct { depth: 2 }] {
            let result = explore(
                &m,
                main,
                &[],
                &ExplorerConfig {
                    runs_per_input: 30,
                    strategy,
                    ..ExplorerConfig::default()
                },
            );
            assert!(
                !result.reports.is_empty(),
                "strategy {strategy:?} found nothing"
            );
        }
    }

    #[test]
    fn executions_until_counts_tries() {
        let (m, main) = narrow_race();
        let tries = executions_until(
            &m,
            main,
            &ProgramInput::empty(),
            &RunConfig::default(),
            7,
            50,
            |o| o.status == owl_vm::ExitStatus::Finished,
        );
        assert_eq!(tries, Some(1), "every run finishes");
        let never = executions_until(
            &m,
            main,
            &ProgramInput::empty(),
            &RunConfig::default(),
            7,
            5,
            |_| false,
        );
        assert_eq!(never, None);
    }

    #[test]
    fn expired_deadline_stops_after_first_run() {
        let (m, main) = narrow_race();
        let result = explore_with_deadline(
            &m,
            main,
            &[],
            &ExplorerConfig {
                runs_per_input: 50,
                ..ExplorerConfig::default()
            },
            Some(Duration::from_secs(0)),
        );
        assert_eq!(result.runs, 1, "one run happens before the check");
        assert!(result.deadline_hit);
    }

    #[test]
    fn site_pair_sets() {
        let (m, main) = narrow_race();
        let r = explore(&m, main, &[], &ExplorerConfig::default());
        assert_eq!(site_pairs(&r.reports).len(), r.reports.len());
    }

    fn scratch_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "owl-explorer-test-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cfg_with_stream(stream: StreamConfig) -> ExplorerConfig {
        ExplorerConfig {
            runs_per_input: 10,
            stream,
            ..ExplorerConfig::default()
        }
    }

    #[test]
    fn streaming_matches_inline_at_any_capacity() {
        let (m, main) = narrow_race();
        let base = explore(
            &m,
            main,
            &[],
            &cfg_with_stream(StreamConfig {
                channel_capacity: 0,
                ..StreamConfig::default()
            }),
        );
        for capacity in [1, 2, 7, 1024] {
            let r = explore(
                &m,
                main,
                &[],
                &cfg_with_stream(StreamConfig {
                    channel_capacity: capacity,
                    ..StreamConfig::default()
                }),
            );
            assert_eq!(r.reports, base.reports, "capacity {capacity}");
            assert_eq!(
                (r.runs, r.suppressed, r.reports_dropped),
                (base.runs, base.suppressed, base.reports_dropped),
                "capacity {capacity}"
            );
        }
    }

    #[test]
    fn budget_with_spill_dir_completes_and_matches_inline() {
        let (m, main) = narrow_race();
        let base = explore(
            &m,
            main,
            &[],
            &cfg_with_stream(StreamConfig {
                channel_capacity: 0,
                ..StreamConfig::default()
            }),
        );
        let dir = scratch_dir("spill");
        let r = explore(
            &m,
            main,
            &[],
            &cfg_with_stream(StreamConfig {
                channel_capacity: 4,
                max_trace_mem: Some(256),
                spill_dir: Some(dir.clone()),
                ..StreamConfig::default()
            }),
        );
        assert!(r.trace_spill_segments > 0, "tiny budget must force spills");
        assert!(r.trace_spilled_bytes > 0);
        assert!(r.mem_pressure_events >= r.trace_spill_segments);
        assert_eq!(r.units_aborted_mem_budget, 0);
        assert_eq!(r.reports, base.reports, "spilling must not change reports");
        // Every segment is replayed and deleted on the spot.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .map(|rd| rd.filter_map(|e| e.ok()).collect())
            .unwrap_or_default();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_without_spill_dir_aborts_units_typed() {
        let (m, main) = narrow_race();
        let r = explore(
            &m,
            main,
            &[],
            &cfg_with_stream(StreamConfig {
                channel_capacity: 4,
                max_trace_mem: Some(64),
                spill_dir: None,
                ..StreamConfig::default()
            }),
        );
        assert_eq!(r.units_aborted_mem_budget, r.runs, "every unit overflows");
        assert!(r.mem_pressure_events > 0);
        assert!(
            r.reports.is_empty(),
            "aborted units must not leak partial reports: {:?}",
            r.reports
        );
    }

    #[test]
    fn streaming_parallel_workers_stay_byte_identical() {
        let (m, main) = narrow_race();
        let dir = scratch_dir("parallel");
        let run = |workers: usize| {
            explore(
                &m,
                main,
                &[],
                &ExplorerConfig {
                    runs_per_input: 12,
                    workers,
                    stream: StreamConfig {
                        channel_capacity: 8,
                        max_trace_mem: Some(512),
                        spill_dir: Some(dir.clone()),
                        ..StreamConfig::default()
                    },
                    ..ExplorerConfig::default()
                },
            )
        };
        let one = run(1);
        for workers in [2, 4] {
            let r = run(workers);
            assert_eq!(r.reports, one.reports, "workers {workers}");
            assert_eq!(
                (
                    r.runs,
                    r.trace_spilled_bytes,
                    r.trace_spill_segments,
                    r.mem_pressure_events,
                    r.shadow_cells_gced
                ),
                (
                    one.runs,
                    one.trace_spilled_bytes,
                    one.trace_spill_segments,
                    one.mem_pressure_events,
                    one.shadow_cells_gced
                ),
                "workers {workers}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
