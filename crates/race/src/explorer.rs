//! SKI-style schedule exploration.
//!
//! SKI exposed kernel races by systematically exploring thread
//! interleavings of syscall handlers. The explorer reproduces that
//! regime: it re-runs a program under PCT and random schedulers across
//! a seed sweep (and across the workload's inputs), aggregates
//! deduplicated race reports, and keeps per-run statistics. The same
//! machinery doubles as the "repeated native executions" driver used in
//! the paper's triggerability study (Table 4's ≤ 20 re-executions).
//!
//! Every `(input, seed)` unit runs in its own VM with its own
//! detector, so the sweep fans out over [`ExplorerConfig::workers`]
//! scoped threads. Determinism is preserved by construction:
//!
//! * units are claimed in sweep order under a lock, and every claimed
//!   unit runs to completion, so the completed units always form a
//!   contiguous prefix of the sweep (even when a deadline cuts it
//!   short);
//! * per-unit outputs are merged *in unit order* — reports dedup by
//!   normalized site pair keeping the first unit's report (adopting
//!   the first available read hint among later duplicates), counters
//!   are summed, and the merged set gets a final stable sort by site
//!   pair.
//!
//! Any worker count therefore yields byte-identical results; workers
//! only change wall-clock time.
//!
//! ## Prefix-sharing fork mode
//!
//! With [`ExplorerConfig::fork`] on (the default), each input's units
//! share the program's single-threaded startup prefix instead of each
//! re-executing it. Every scheduler is *forced* to make identical
//! choices while only one thread is runnable, so the explorer runs
//! each input once up to the first point where ≥ 2 threads could
//! interleave ([`Vm::run_until_concurrent`]), snapshots the machine
//! there ([`Vm::snapshot`], CoW-cheap), forks the detector shadow
//! state ([`HbDetector::fork`]), and launches every per-seed unit from
//! the snapshot with its own scheduler fast-forwarded over the
//! recorded prefix pick calls (which reproduces the exact RNG state a
//! scratch run would have had at that point). A schedule-signature
//! pass then dedups whole units: executed units record their realized
//! choice sequence plus an incrementally-computed FNV signature; any
//! later seed whose scheduler realizes an already-run sequence must
//! produce the identical execution, so that unit's outcome is reused
//! without running the VM at all. A serial sweep (`workers <= 1`, the
//! default) merges recorded traces into a path-compressed decision
//! trie, so probing every schedule realized so far costs a single
//! walk; after [`DEDUP_PATIENCE`] consecutive misses the sweep stops
//! recording and probing for that input, so sweeps that keep
//! realizing distinct schedules shed the dedup overhead. A parallel
//! sweep probes only against the first unit's (the pilot's) schedule,
//! the one key that is complete before workers race. Either way the
//! probe history — and so every fork counter — depends only on the
//! deterministic claim order, never on thread timing.
//!
//! None of this changes results — reports, outcomes, and every
//! pre-existing counter are byte-identical fork on or off, at any
//! worker count × channel capacity × spill budget (enforced by
//! `tests/detector_equivalence.rs`). Only the four fork counters
//! ([`ExploreResult::units_forked`], `prefix_steps_saved`,
//! `schedules_deduped`, `snapshot_bytes`) and wall-clock time differ.

use crate::hb::{HbAnnotation, HbBackend, HbConfig, HbDetector};
use crate::report::RaceReport;
use crate::spill::{self, SpillKillSwitch};
use owl_ir::{FuncId, InstRef, Module};
use owl_vm::{
    event_channel, ChannelReceiver, ExecOutcome, PctScheduler, ProgramInput, RandomScheduler,
    RunConfig, Scheduler, Snapshot, ThreadId, TraceEvent, TraceSink, Vm,
};
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How the explorer produces schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExploreStrategy {
    /// Seeded uniform-random scheduling (native-execution stand-in,
    /// what TSan observes).
    Random,
    /// PCT with the given depth (systematic exploration, what SKI
    /// does).
    Pct {
        /// Number of priority change points.
        depth: usize,
    },
}

/// Streaming hand-off and memory-governance parameters for the
/// VM→detector pipeline.
///
/// With a non-zero `channel_capacity`, every `(input, seed)` unit runs
/// its VM on a producer thread feeding a bounded event channel; the
/// detector consumes on the claiming worker thread, and a full channel
/// blocks the producer (backpressure) instead of growing a buffer.
/// `max_trace_mem` adds a budget on the in-flight window: past the
/// soft limit (half the budget) the window spills to checksummed
/// segment files under `spill_dir` and is immediately replayed into
/// the detector; past the hard limit with nowhere to spill, the unit
/// aborts with a typed memory-budget verdict instead of OOMing.
///
/// None of this changes results: report streams are byte-identical at
/// any capacity and any spill threshold (enforced by
/// `tests/detector_equivalence.rs`), because spill points depend only
/// on event sizes, never on thread timing.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Bounded channel capacity in events. `0` disables streaming and
    /// runs the VM inline on the worker thread (the legacy in-memory
    /// path, kept as the equivalence baseline).
    pub channel_capacity: usize,
    /// Hard cap, in bytes, on a unit's in-flight event window
    /// (`--max-trace-mem`). `None` = unbounded.
    pub max_trace_mem: Option<u64>,
    /// Where spill segments go. `None` with a budget set means the
    /// unit aborts as soon as the window crosses the hard limit.
    pub spill_dir: Option<PathBuf>,
    /// Prefix for segment file names (campaigns set the program name,
    /// the daemon a job id), keeping concurrent units collision-free
    /// alongside the `-u<input>-s<seed>-<seq>.seg` suffix.
    pub tag_prefix: String,
    /// Crash-injection switch for the spill writer (tests only).
    pub spill_kill: Option<SpillKillSwitch>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            channel_capacity: 1024,
            max_trace_mem: None,
            spill_dir: None,
            tag_prefix: "unit".to_string(),
            spill_kill: None,
        }
    }
}

/// Exploration parameters.
#[derive(Clone, Debug)]
pub struct ExplorerConfig {
    /// Number of schedule seeds per input.
    pub runs_per_input: u64,
    /// First seed (seeds are contiguous).
    pub base_seed: u64,
    /// Scheduling strategy.
    pub strategy: ExploreStrategy,
    /// Expected execution length (PCT change-point placement).
    pub expected_steps: u64,
    /// VM limits.
    pub run_config: RunConfig,
    /// Adhoc-sync annotations to honour during detection.
    pub annotations: Vec<HbAnnotation>,
    /// Worker threads for the seed sweep (0 is treated as 1). Results
    /// are byte-identical for any count; see the module docs.
    pub workers: usize,
    /// Shadow-memory backend for the per-unit detectors.
    pub hb_backend: HbBackend,
    /// Sites the static check-elision pre-pass proved race-free, to be
    /// installed in every per-unit VM (`None` disables stamping). Does
    /// not change any result — only how much shadow work the epoch
    /// backend performs.
    pub elided_sites: Option<Arc<HashSet<InstRef>>>,
    /// Streaming hand-off and memory governance (see [`StreamConfig`]).
    pub stream: StreamConfig,
    /// Prefix-sharing fork mode (`--no-fork` clears it): run each
    /// input's single-threaded startup prefix once, snapshot the VM at
    /// the first point two threads could interleave, launch every
    /// seed's unit from the snapshot, and dedup units whose realized
    /// schedule collapses to an already-run signature. Results are
    /// byte-identical either way (see the module docs); only the fork
    /// counters and wall-clock time change.
    pub fork: bool,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        ExplorerConfig {
            runs_per_input: 10,
            base_seed: 1,
            strategy: ExploreStrategy::Pct { depth: 3 },
            expected_steps: 2_000,
            run_config: RunConfig::default(),
            annotations: Vec::new(),
            workers: 1,
            hb_backend: HbBackend::default(),
            elided_sites: None,
            stream: StreamConfig::default(),
            fork: true,
        }
    }
}

/// Aggregated exploration results.
#[derive(Clone, Debug)]
pub struct ExploreResult {
    /// Deduplicated race reports across all runs.
    pub reports: Vec<RaceReport>,
    /// Total executions performed.
    pub runs: u64,
    /// Race observations suppressed by annotations, summed over runs.
    pub suppressed: usize,
    /// Observations of new site pairs dropped by the per-run
    /// [`HbConfig::max_reports`] cap, summed over runs. Non-zero means
    /// the aggregated report set is truncated.
    pub reports_dropped: usize,
    /// Outcome of every execution (violations, outputs, schedules).
    pub outcomes: Vec<ExecOutcome>,
    /// Total faults the VM's fault plan injected across all runs.
    pub injected_faults: u64,
    /// Accesses whose shadow work the epoch backend skipped thanks to
    /// the static elision pre-pass, summed over runs (0 under the
    /// reference backend, which always does the full work).
    pub events_elided: u64,
    /// Bytes of trace spilled to segment files, summed over units.
    pub trace_spilled_bytes: u64,
    /// Spill segments written (each immediately replayed and deleted).
    pub trace_spill_segments: u64,
    /// Times a unit's in-flight window crossed the soft memory limit
    /// (each either spilled or, with nowhere to spill, aborted).
    pub mem_pressure_events: u64,
    /// Shadow cells reclaimed by the detectors' thread-exit/free GC,
    /// summed over units.
    pub shadow_cells_gced: u64,
    /// Units aborted because their trace outgrew
    /// [`StreamConfig::max_trace_mem`] with nowhere to spill. Aborted
    /// units contribute no reports; the pipeline turns a non-zero
    /// count into a typed memory-budget verdict.
    pub units_aborted_mem_budget: u64,
    /// Conflicting pairs the predictive backends submitted to the
    /// witness machinery, summed over units (0 for non-predictive
    /// backends; see [`crate::PredictStats`]).
    pub predict_candidates: u64,
    /// Predicted-race candidates that got a validated witness
    /// reordering, summed over units.
    pub predict_witnessed: u64,
    /// Candidates rejected by closure, scheduling, or witness
    /// validation, summed over units.
    pub predict_witness_rejected: u64,
    /// Witnessed races that required a lock-acquire reversal (only
    /// non-zero under [`HbBackend::SyncReversal`]), summed over units.
    pub predict_reversal_races: u64,
    /// Units that executed from a mid-run snapshot instead of from
    /// instruction zero: each input's pilot plus every unit whose
    /// schedule diverged from the pilot's. Zero with
    /// [`ExplorerConfig::fork`] off.
    pub units_forked: u64,
    /// VM steps not re-executed thanks to prefix sharing: the shared
    /// prefix length times the number of units that reused it, summed
    /// over inputs. Zero with fork off.
    pub prefix_steps_saved: u64,
    /// Units whose entire realized choice sequence collapsed to an
    /// already-run schedule signature, so their outcome was reused
    /// without executing the VM at all. Zero with fork off.
    pub schedules_deduped: u64,
    /// Bytes of machine state captured by per-input snapshots (an
    /// upper-bound estimate; heap payloads are CoW-shared with the
    /// resumed units), summed over inputs. Zero with fork off.
    pub snapshot_bytes: u64,
    /// Whether a wall-clock budget cut the sweep short (see
    /// [`explore_with_deadline`]).
    pub deadline_hit: bool,
}

impl ExploreResult {
    /// Reports whose racing address falls in the named global.
    pub fn reports_on<'a>(&'a self, global: &str) -> impl Iterator<Item = &'a RaceReport> + 'a {
        let g = global.to_string();
        self.reports
            .iter()
            .filter(move |r| r.global_name.as_deref() == Some(g.as_str()))
    }

    /// Whether any run triggered a violation matching `pred`.
    pub fn any_outcome_violation(&self, mut pred: impl FnMut(&owl_vm::Violation) -> bool) -> bool {
        self.outcomes.iter().any(|o| o.any_violation(&mut pred))
    }
}

/// Runs the exploration: for every input, `runs_per_input` executions,
/// each under a fresh scheduler and a fresh detector, merged
/// deterministically (see the module docs).
pub fn explore(
    module: &Module,
    entry: FuncId,
    inputs: &[ProgramInput],
    cfg: &ExplorerConfig,
) -> ExploreResult {
    explore_with_deadline(module, entry, inputs, cfg, None)
}

/// One `(input, seed)` execution's raw output, pre-merge. `Clone`
/// because fork mode reuses a pilot's output verbatim for every unit
/// whose schedule collapses to the pilot's signature.
#[derive(Clone)]
struct UnitOutput {
    reports: Vec<RaceReport>,
    suppressed: usize,
    reports_dropped: usize,
    events_elided: u64,
    outcome: ExecOutcome,
    spilled_bytes: u64,
    spill_segments: u64,
    pressure_events: u64,
    cells_gced: u64,
    mem_budget_aborted: bool,
    predict: crate::PredictStats,
    /// Unit executed from a snapshot (fork mode pilot or a
    /// schedule-divergent unit).
    forked: bool,
    /// Unit's outcome was cloned from an identical already-run
    /// schedule; no VM executed.
    deduped: bool,
    /// Prefix steps this unit did not re-execute.
    prefix_steps_saved: u64,
    /// Snapshot footprint charged to this unit (the pilot carries its
    /// input's snapshot).
    snapshot_bytes: u64,
}

/// What the consuming side of one streamed unit did.
#[derive(Clone, Debug, Default)]
struct StreamStats {
    spilled_bytes: u64,
    spill_segments: u64,
    pressure_events: u64,
    aborted: bool,
}

/// The in-flight event window and spill bookkeeping of one unit's
/// stream under the memory budget. Extracted from the consume loop so
/// fork mode can run the shared prefix inline through the identical
/// logic, clone this state per unit, and have every unit's counters
/// come out exactly as if it had streamed its whole trace from
/// scratch.
#[derive(Clone, Default)]
struct BudgetWindow {
    window: VecDeque<TraceEvent>,
    window_bytes: u64,
    seq: u64,
    stats: StreamStats,
}

impl BudgetWindow {
    /// Feeds one event toward `detector`, enforcing the budget. With
    /// no budget the event goes straight through; with one it buffers
    /// into the window, which spills (and immediately replays) whole
    /// segments past the soft limit (half the budget). Returns `false`
    /// — with `stats.aborted` set — when the budget cannot be honored:
    /// the window crossed the hard limit with nowhere to spill, or the
    /// spill itself failed with a typed [`spill::SpillError`].
    fn push(
        &mut self,
        ev: TraceEvent,
        detector: &mut HbDetector,
        stream: &StreamConfig,
        tag: &str,
    ) -> bool {
        let Some(hard) = stream.max_trace_mem else {
            detector.on_event_owned(ev);
            return true;
        };
        let soft = (hard / 2).max(1);
        self.window_bytes += spill::approx_event_bytes(&ev) as u64;
        self.window.push_back(ev);
        if self.window_bytes <= soft {
            return true;
        }
        match &stream.spill_dir {
            Some(dir) => {
                self.stats.pressure_events += 1;
                let spilled = (|| -> Result<u64, spill::SpillError> {
                    std::fs::create_dir_all(dir)?;
                    let path = dir.join(format!("{tag}-{}.seg", self.seq));
                    if path.exists() {
                        // Leftover from a killed run: restore the
                        // every-line-valid invariant before reuse.
                        let _ = spill::recover_segment(&path);
                    }
                    let bytes =
                        spill::write_segment(&path, self.window.iter(), stream.spill_kill.as_ref())?;
                    spill::replay_segment(&path, detector)?;
                    std::fs::remove_file(&path)?;
                    Ok(bytes)
                })();
                match spilled {
                    Ok(bytes) => {
                        self.stats.spilled_bytes += bytes;
                        self.stats.spill_segments += 1;
                        self.seq += 1;
                        self.window.clear();
                        self.window_bytes = 0;
                        true
                    }
                    Err(_) => {
                        self.stats.aborted = true;
                        false
                    }
                }
            }
            None if self.window_bytes > hard => {
                self.stats.pressure_events += 1;
                self.stats.aborted = true;
                false
            }
            None => true,
        }
    }

    /// End of stream: the trailing window drains into the detector.
    fn drain(&mut self, detector: &mut HbDetector) {
        for ev in self.window.drain(..) {
            detector.on_event_owned(ev);
        }
        self.window_bytes = 0;
    }
}

/// Drains the event channel into the detector through `window`'s
/// budget logic, stopping (with `window.stats.aborted` set) as soon as
/// the budget cannot be honored.
fn consume_stream(
    rx: &ChannelReceiver,
    detector: &mut HbDetector,
    stream: &StreamConfig,
    tag: &str,
    window: &mut BudgetWindow,
) {
    while let Some(ev) = rx.recv() {
        if !window.push(ev, detector, stream, tag) {
            return;
        }
    }
    window.drain(detector);
}

fn run_unit(
    module: &Module,
    entry: FuncId,
    input: &ProgramInput,
    input_idx: usize,
    seed: u64,
    cfg: &ExplorerConfig,
) -> UnitOutput {
    let mut detector = HbDetector::new(HbConfig {
        annotations: cfg.annotations.clone(),
        backend: cfg.hb_backend,
        ..HbConfig::default()
    });
    let build_sched = || -> Box<dyn Scheduler> {
        match cfg.strategy {
            ExploreStrategy::Random => Box::new(RandomScheduler::new(seed)),
            ExploreStrategy::Pct { depth } => {
                Box::new(PctScheduler::new(seed, depth, cfg.expected_steps))
            }
        }
    };
    let build_vm = || {
        let mut vm = Vm::new(module, entry, input.clone(), cfg.run_config.clone());
        if let Some(elided) = &cfg.elided_sites {
            vm = vm.with_elided_sites(Arc::clone(elided));
        }
        vm
    };

    let mut window = BudgetWindow::default();
    let outcome = if cfg.stream.channel_capacity == 0 {
        // Legacy inline path: the detector consumes directly inside
        // the VM's emit hook. Baseline for the streaming equivalence
        // tests; no budget applies (there is no in-flight window).
        let mut sched = build_sched();
        build_vm().run(sched.as_mut(), &mut detector)
    } else {
        let (tx, rx) = event_channel(cfg.stream.channel_capacity);
        let tag = format!("{}-u{input_idx}-s{seed}", cfg.stream.tag_prefix);
        std::thread::scope(|s| {
            let producer = s.spawn(move || {
                let mut tx = tx;
                let mut sched = build_sched();
                build_vm().run(sched.as_mut(), &mut tx)
                // `tx` drops here, closing the channel.
            });
            // The consumer may panic (spill kill switch) while the
            // producer is blocked on a full channel; catch it, release
            // the producer by closing the receiver, join, and only
            // then re-raise — otherwise the scope would deadlock and
            // the crash payload would be lost.
            let consumed = catch_unwind(AssertUnwindSafe(|| {
                consume_stream(&rx, &mut detector, &cfg.stream, &tag, &mut window);
            }));
            rx.close();
            let outcome = match producer.join() {
                Ok(o) => o,
                Err(p) => resume_unwind(p),
            };
            match consumed {
                Ok(()) => outcome,
                Err(p) => resume_unwind(p),
            }
        })
    };
    let stream_stats = window.stats;

    // The predictive pass runs before any counter is read so its
    // reports and stats land in this unit's output. An aborted unit
    // saw only a trace prefix and reports nothing, so predicting on it
    // would only waste time.
    if !stream_stats.aborted {
        detector.run_prediction();
    }
    let cells_gced = detector.shadow_cells_gced();
    let predict = detector.predict_stats();
    UnitOutput {
        suppressed: detector.suppressed(),
        reports_dropped: detector.reports_dropped(),
        events_elided: detector.epoch_stats().map_or(0, |s| s.events_elided()),
        // An aborted unit saw only a prefix of its trace: its partial
        // reports are discarded so the (quarantined) result never
        // mixes complete and truncated detection.
        reports: if stream_stats.aborted {
            Vec::new()
        } else {
            detector.finish(module)
        },
        outcome,
        spilled_bytes: stream_stats.spilled_bytes,
        spill_segments: stream_stats.spill_segments,
        pressure_events: stream_stats.pressure_events,
        cells_gced,
        mem_budget_aborted: stream_stats.aborted,
        predict,
        forked: false,
        deduped: false,
        prefix_steps_saved: 0,
        snapshot_bytes: 0,
    }
}

/// Builds a seed-fresh scheduler for fork mode. Identical to the
/// closure inside [`run_unit`] except for the `Send` bound: fork mode
/// constructs (and fast-forwards) schedulers on the claiming thread
/// before moving them into a producer thread.
fn build_sched_send(cfg: &ExplorerConfig, seed: u64) -> Box<dyn Scheduler + Send> {
    match cfg.strategy {
        ExploreStrategy::Random => Box::new(RandomScheduler::new(seed)),
        ExploreStrategy::Pct { depth } => {
            Box::new(PctScheduler::new(seed, depth, cfg.expected_steps))
        }
    }
}

/// Inline capacity for recorded runnable sets. Corpus programs rarely
/// have more than a handful of runnable threads at any pick.
const RUNNABLE_INLINE: usize = 8;

/// Runnable-set storage for recorded pick calls. Recording captures
/// one of these per VM step, so the common case must stay inline: a
/// heap-allocating `Vec` clone per pick was measurably the *entire*
/// wall-clock overhead of fork-mode recording on long-suffix corpus
/// programs (~35% on Linux/MySQL), swamping the dedup savings.
#[derive(Clone, Debug)]
enum RunnableSet {
    Inline(u8, [ThreadId; RUNNABLE_INLINE]),
    Heap(Vec<ThreadId>),
}

impl RunnableSet {
    fn from_slice(s: &[ThreadId]) -> Self {
        if s.len() <= RUNNABLE_INLINE {
            let mut buf = [ThreadId::default(); RUNNABLE_INLINE];
            buf[..s.len()].copy_from_slice(s);
            RunnableSet::Inline(s.len() as u8, buf)
        } else {
            RunnableSet::Heap(s.to_vec())
        }
    }

    fn as_slice(&self) -> &[ThreadId] {
        match self {
            RunnableSet::Inline(n, buf) => &buf[..usize::from(*n)],
            RunnableSet::Heap(v) => v,
        }
    }
}

impl PartialEq for RunnableSet {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// One scheduler invocation as the VM made it: the runnable set it
/// saw, the step counter, and the choice that came back. The prefix
/// records these so fresh schedulers can be fast-forwarded; the pilot
/// records them as the dedup decision trace.
#[derive(Clone, Debug)]
struct PickCall {
    runnable: RunnableSet,
    step: u64,
    chosen: ThreadId,
}

/// Cap on the recorded pilot decision trace. A pilot that makes more
/// picks is marked truncated and its input skips schedule dedup — the
/// cap depends only on the pick count, so the decision is
/// deterministic.
const DEDUP_TRACE_CAP: usize = 1 << 16;

/// After this many consecutive probe misses, a serial sweep stops
/// recording and probing for the rest of the input: the sweep is
/// evidently realizing distinct schedules (seed sweeps over inputs
/// with long concurrent phases usually do), so the dedup machinery
/// would only add recording and probe overhead to every remaining
/// unit. The cutoff depends solely on the claim-order probe history,
/// which is deterministic in a serial sweep, so the fork counters
/// remain deterministic for a fixed configuration.
const DEDUP_PATIENCE: usize = 16;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one realized pick into an FNV-1a schedule signature.
fn fnv1a_pick(hash: u64, chosen: ThreadId, step: u64) -> u64 {
    let mut h = hash;
    for b in chosen
        .0
        .to_le_bytes()
        .into_iter()
        .chain(step.to_le_bytes())
    {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Wraps a scheduler, recording every pick call at the scheduler
/// interface (which also captures picks whose chosen thread gets
/// parked by fault injection and so never appears in the outcome's
/// schedule) and folding the realized choices into an incremental
/// FNV-1a signature.
struct RecordingScheduler {
    inner: Box<dyn Scheduler + Send>,
    calls: Vec<PickCall>,
    cap: usize,
    truncated: bool,
    signature: u64,
}

impl RecordingScheduler {
    fn new(inner: Box<dyn Scheduler + Send>, cap: usize, hint: usize) -> Self {
        RecordingScheduler {
            inner,
            // Reserving up to the sibling-trace length avoids the
            // growth reallocs, whose memcpys dominate recording cost
            // on long suffixes.
            calls: Vec::with_capacity(hint.min(cap)),
            cap,
            truncated: false,
            signature: FNV_OFFSET,
        }
    }
}

impl Scheduler for RecordingScheduler {
    fn pick(&mut self, runnable: &[ThreadId], step: u64) -> ThreadId {
        let chosen = self.inner.pick(runnable, step);
        if self.calls.len() < self.cap {
            self.signature = fnv1a_pick(self.signature, chosen, step);
            self.calls.push(PickCall {
                runnable: RunnableSet::from_slice(runnable),
                step,
                chosen,
            });
        } else {
            self.truncated = true;
        }
        chosen
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// Replays the prefix's pick calls into a freshly-seeded scheduler.
/// Every prefix pick had a singleton runnable set (the fork point is
/// the first moment two threads could interleave), so any scheduler
/// returns the same forced choice while consuming exactly the RNG it
/// would have consumed executing the prefix itself — afterwards its
/// internal state matches what a scratch run's scheduler would hold at
/// the fork point.
fn fast_forward(sched: &mut dyn Scheduler, prefix: &[PickCall]) {
    for call in prefix {
        let picked = sched.pick(call.runnable.as_slice(), call.step);
        debug_assert_eq!(picked, call.chosen, "prefix pick was not forced");
    }
}

/// One executed unit's realized suffix schedule: a dedup key for
/// later seeds of the same input.
struct RealizedTrace {
    calls: Vec<PickCall>,
    signature: u64,
    truncated: bool,
}

/// Whether `sched` (fast-forwarded to the fork point) would realize
/// exactly `trace`'s choice sequence. Feeds the trace's recorded
/// runnable sets through `sched`, folding the choices into a candidate
/// signature; dedup happens when the signature collapses to the
/// trace's (the per-pick comparison makes a hash collision harmless).
/// A full match means the unit's execution *is* the recorded one: the
/// same choices from the same snapshot state drive the same
/// instruction, fault, and trace sequence. On a mismatch the answer is
/// `false` and `sched` is RNG-polluted — it consumed draws against the
/// recorded runnable sets — so the caller must rebuild it before
/// running the unit for real or probing another trace.
fn matches_trace(sched: &mut dyn Scheduler, trace: &RealizedTrace) -> bool {
    let mut signature = FNV_OFFSET;
    for call in &trace.calls {
        let picked = sched.pick(call.runnable.as_slice(), call.step);
        if picked != call.chosen {
            return false;
        }
        signature = fnv1a_pick(signature, picked, call.step);
    }
    signature == trace.signature
}

/// A decision trie over the realized suffix schedules of one input's
/// executed units. Serial sweeps probe each new seed with a *single*
/// walk — at every decision point the candidate scheduler picks
/// against the recorded runnable set, and the walk follows the
/// matching edge — instead of replaying against every stored trace
/// one at a time. Contexts are path-determined (the VM is
/// deterministic, so the same choice sequence always reproduces the
/// same runnable set), which is what lets traces share prefix nodes
/// at all. Walking also consumes exactly the scheduler RNG a real run
/// would consume up to the divergence point, so a failed probe leaves
/// the scheduler polluted (the caller rebuilds it), while a completed
/// walk proves the unit's execution is the recorded one.
///
/// Paths are compressed: a stored trace's undisputed tail is kept as
/// a `Tail` edge into the owned trace, and interior nodes are only
/// materialized up to the point where a later trace actually
/// diverges. Inserting is therefore O(shared depth) with O(1)
/// allocations — materializing a node per recorded pick was
/// measurably as expensive as executing the units it was meant to
/// save.
#[derive(Default)]
struct TraceTrie {
    nodes: Vec<TrieNode>,
    traces: Vec<StoredTrace>,
}

/// An inserted trace, owned whole by the trie: `Tail` edges borrow
/// slices of it instead of materializing per-pick nodes.
struct StoredTrace {
    calls: Vec<PickCall>,
    signature: u64,
    slot: usize,
}

/// One materialized decision point: the scheduler context to present,
/// and an edge per distinct choice some recorded trace made here. The
/// edge count is bounded by the runnable set, so a plain `Vec` only
/// allocates at genuine branch points.
struct TrieNode {
    runnable: RunnableSet,
    step: u64,
    edges: Vec<(ThreadId, TrieChild)>,
}

#[derive(Clone, Copy)]
enum TrieChild {
    /// A materialized interior decision point.
    Node(usize),
    /// Path-compressed remainder: stored trace `trace`'s calls from
    /// index `from` to its end (with `from` at the trace length this
    /// is a pure leaf). No complete trace is a strict prefix of
    /// another (identical picks force identical termination), so a
    /// tail always ends the walk.
    Tail { trace: usize, from: usize },
}

impl TraceTrie {
    fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    fn node_from(call: &PickCall) -> TrieNode {
        TrieNode {
            runnable: call.runnable.clone(),
            step: call.step,
            edges: Vec::new(),
        }
    }

    /// Inserts an executed unit's recorded trace, taking ownership.
    /// Truncated traces (and the impossible empty trace) are skipped
    /// by the caller; a duplicate of a stored trace cannot reach
    /// insertion because its probe would have deduped the unit.
    fn insert(&mut self, trace: RealizedTrace, slot: usize) {
        debug_assert!(!trace.calls.is_empty(), "a suffix trace always picks");
        let calls = trace.calls;
        let t_new = self.traces.len();
        if self.nodes.is_empty() {
            let mut root = Self::node_from(&calls[0]);
            root.edges.push((calls[0].chosen, TrieChild::Tail { trace: t_new, from: 1 }));
            self.nodes.push(root);
            self.traces.push(StoredTrace { calls, signature: trace.signature, slot });
            return;
        }
        let mut node = 0;
        let mut d = 0usize;
        loop {
            debug_assert!(d < calls.len(), "complete trace is a strict prefix of another");
            debug_assert_eq!(self.nodes[node].runnable, calls[d].runnable, "trie context diverged");
            debug_assert_eq!(self.nodes[node].step, calls[d].step, "trie context diverged");
            let chosen = calls[d].chosen;
            let Some(e) = self.nodes[node].edges.iter().position(|(c, _)| *c == chosen) else {
                // First trace to make this choice here: hang the whole
                // remainder off one compressed edge.
                self.nodes[node].edges.push((chosen, TrieChild::Tail { trace: t_new, from: d + 1 }));
                break;
            };
            match self.nodes[node].edges[e].1 {
                TrieChild::Node(next) => {
                    node = next;
                    d += 1;
                }
                TrieChild::Tail { trace: t_old, from } => {
                    // Scan the compressed tail for the divergence
                    // point, then materialize only the shared stretch.
                    let mut j = 0usize;
                    let div = loop {
                        let (ni, oi) = (d + 1 + j, from + j);
                        debug_assert!(
                            ni < calls.len() && oi < self.traces[t_old].calls.len(),
                            "duplicate or prefix trace inserted"
                        );
                        if ni >= calls.len() || oi >= self.traces[t_old].calls.len() {
                            return;
                        }
                        if calls[ni].chosen != self.traces[t_old].calls[oi].chosen {
                            break j;
                        }
                        j += 1;
                    };
                    let mut prev: Option<usize> = None;
                    let mut first_new = 0usize;
                    for m in 0..=div {
                        let n = self.nodes.len();
                        self.nodes.push(Self::node_from(&self.traces[t_old].calls[from + m]));
                        match prev {
                            Some(p) => {
                                let c = self.traces[t_old].calls[from + m - 1].chosen;
                                self.nodes[p].edges.push((c, TrieChild::Node(n)));
                            }
                            None => first_new = n,
                        }
                        prev = Some(n);
                    }
                    let branch = prev.expect("at least the branch node is materialized");
                    let old_chosen = self.traces[t_old].calls[from + div].chosen;
                    let new_chosen = calls[d + 1 + div].chosen;
                    self.nodes[branch]
                        .edges
                        .push((old_chosen, TrieChild::Tail { trace: t_old, from: from + div + 1 }));
                    self.nodes[branch]
                        .edges
                        .push((new_chosen, TrieChild::Tail { trace: t_new, from: d + 1 + div + 1 }));
                    self.nodes[node].edges[e].1 = TrieChild::Node(first_new);
                    break;
                }
            }
        }
        self.traces.push(StoredTrace { calls, signature: trace.signature, slot });
    }

    /// Walks `sched` through the trie. `Some(slot)` means the
    /// scheduler realized a recorded trace exactly (per-pick equality
    /// plus the FNV signature folded along the walk) — the caller
    /// clones `slot`'s output. `None` means it diverged from every
    /// recorded trace and is now RNG-polluted; rebuild before running.
    fn probe(&self, sched: &mut dyn Scheduler) -> Option<usize> {
        if self.nodes.is_empty() {
            return None;
        }
        let mut node = 0;
        let mut signature = FNV_OFFSET;
        let (t, mut i) = loop {
            let n = &self.nodes[node];
            let picked = sched.pick(n.runnable.as_slice(), n.step);
            signature = fnv1a_pick(signature, picked, n.step);
            match n.edges.iter().find(|(c, _)| *c == picked) {
                Some((_, TrieChild::Node(next))) => node = *next,
                Some((_, TrieChild::Tail { trace, from })) => break (*trace, *from),
                None => return None,
            }
        };
        let stored = &self.traces[t];
        while i < stored.calls.len() {
            let call = &stored.calls[i];
            let picked = sched.pick(call.runnable.as_slice(), call.step);
            if picked != call.chosen {
                return None;
            }
            signature = fnv1a_pick(signature, picked, call.step);
            i += 1;
        }
        (signature == stored.signature).then_some(stored.slot)
    }
}

/// Sink for the shared prefix execution: feeds the prefix detector
/// through the same budget logic a streamed unit applies. Once the
/// budget proves unsatisfiable the rest of the prefix is discarded,
/// mirroring a streamed unit whose consumer has aborted (its events
/// vanish into the closed channel).
struct PrefixSink<'a> {
    detector: &'a mut HbDetector,
    window: &'a mut BudgetWindow,
    stream: &'a StreamConfig,
    tag: String,
}

impl TraceSink for PrefixSink<'_> {
    fn on_event(&mut self, ev: &TraceEvent) {
        self.on_event_owned(ev.clone());
    }

    fn on_event_owned(&mut self, ev: TraceEvent) {
        if self.window.stats.aborted {
            return;
        }
        let _ = self.window.push(ev, self.detector, self.stream, &self.tag);
    }
}

/// Everything one input's forked units share: the machine snapshot at
/// the fork point, the recorded prefix pick calls, the in-flight
/// budget window, and the detector state over the prefix events.
struct ForkPrefix {
    snap: Snapshot,
    calls: Vec<PickCall>,
    window: BudgetWindow,
    detector: HbDetector,
    steps: u64,
    bytes: u64,
}

/// What running one input's shared prefix produced.
enum PrefixResult {
    /// The program terminated before two threads could ever
    /// interleave: the execution was fully forced, so this single
    /// output serves every seed.
    Finished(Box<UnitOutput>),
    /// Paused at the first concurrency point; the boxed scheduler is
    /// seed 0's continuation (already advanced past the prefix), which
    /// the pilot resumes with.
    Forked(Box<ForkPrefix>, Box<dyn Scheduler + Send>),
}

/// Runs one input's shared prefix: a fresh VM under seed 0's scheduler
/// (wrapped to record pick calls) up to the first point where ≥ 2
/// threads could interleave, feeding the prefix events through the
/// budget window into the prefix detector exactly as a scratch unit's
/// stream would.
fn run_prefix(
    module: &Module,
    entry: FuncId,
    input: &ProgramInput,
    input_idx: usize,
    cfg: &ExplorerConfig,
) -> PrefixResult {
    let mut detector = HbDetector::new(HbConfig {
        annotations: cfg.annotations.clone(),
        backend: cfg.hb_backend,
        ..HbConfig::default()
    });
    let mut rec = RecordingScheduler::new(build_sched_send(cfg, cfg.base_seed), usize::MAX, 0);
    let mut vm = Vm::new(module, entry, input.clone(), cfg.run_config.clone());
    if let Some(elided) = &cfg.elided_sites {
        vm = vm.with_elided_sites(Arc::clone(elided));
    }
    let mut window = BudgetWindow::default();
    let inline = cfg.stream.channel_capacity == 0;
    let finished = if inline {
        // Inline mode feeds the detector directly (no budget applies),
        // matching the scratch inline path.
        vm.run_until_concurrent(&mut rec, &mut detector)
    } else {
        let mut sink = PrefixSink {
            detector: &mut detector,
            window: &mut window,
            stream: &cfg.stream,
            tag: format!("{}-u{input_idx}-prefix", cfg.stream.tag_prefix),
        };
        vm.run_until_concurrent(&mut rec, &mut sink)
    };
    match finished {
        Some(outcome) => {
            let aborted = window.stats.aborted;
            if !aborted {
                window.drain(&mut detector);
                detector.run_prediction();
            }
            let stats = window.stats;
            let cells_gced = detector.shadow_cells_gced();
            let predict = detector.predict_stats();
            PrefixResult::Finished(Box::new(UnitOutput {
                suppressed: detector.suppressed(),
                reports_dropped: detector.reports_dropped(),
                events_elided: detector.epoch_stats().map_or(0, |s| s.events_elided()),
                reports: if aborted {
                    Vec::new()
                } else {
                    detector.finish(module)
                },
                outcome,
                spilled_bytes: stats.spilled_bytes,
                spill_segments: stats.spill_segments,
                pressure_events: stats.pressure_events,
                cells_gced,
                mem_budget_aborted: aborted,
                predict,
                forked: false,
                deduped: false,
                prefix_steps_saved: 0,
                snapshot_bytes: 0,
            }))
        }
        None => {
            let snap = vm.snapshot();
            PrefixResult::Forked(
                Box::new(ForkPrefix {
                    steps: snap.step(),
                    bytes: snap.approx_bytes(),
                    snap,
                    calls: rec.calls,
                    window,
                    detector,
                }),
                rec.inner,
            )
        }
    }
}

/// Runs one unit from the fork point: forks the prefix detector,
/// clones the budget window, resumes the snapshot under `sched`, and
/// continues the stream exactly where the prefix left off. With
/// `record` set (the pilot) the suffix decision trace comes back for
/// dedup. The unit's counters equal a scratch run's because its stats
/// are the shared prefix's stats plus its own suffix activity.
fn run_forked_unit(
    module: &Module,
    prefix: &ForkPrefix,
    sched: Box<dyn Scheduler + Send>,
    record_hint: Option<usize>,
    input_idx: usize,
    seed: u64,
    cfg: &ExplorerConfig,
) -> (UnitOutput, Option<RealizedTrace>) {
    let mut detector = prefix.detector.fork();
    let mut window = prefix.window.clone();
    let vm = Vm::resume(module, prefix.snap.clone());
    let run_suffix = |sched: Box<dyn Scheduler + Send>,
                      vm: Vm<'_>,
                      sink: &mut dyn TraceSink|
     -> (ExecOutcome, Option<RealizedTrace>) {
        if let Some(hint) = record_hint {
            let mut rec = RecordingScheduler::new(sched, DEDUP_TRACE_CAP, hint);
            let outcome = vm.run(&mut rec, sink);
            let trace = RealizedTrace {
                calls: rec.calls,
                signature: rec.signature,
                truncated: rec.truncated,
            };
            (outcome, Some(trace))
        } else {
            let mut sched = sched;
            (vm.run(sched.as_mut(), sink), None)
        }
    };

    let (outcome, trace) = if cfg.stream.channel_capacity == 0 {
        run_suffix(sched, vm, &mut detector)
    } else {
        let (tx, rx) = event_channel(cfg.stream.channel_capacity);
        let tag = format!("{}-u{input_idx}-s{seed}", cfg.stream.tag_prefix);
        let aborted_at_fork = window.stats.aborted;
        std::thread::scope(|s| {
            let producer = s.spawn(move || {
                let mut tx = tx;
                run_suffix(sched, vm, &mut tx)
            });
            // The budget already proved unsatisfiable during the
            // shared prefix: a scratch unit's consumer would have
            // aborted at that same prefix event, so the suffix events
            // are dropped unseen (closing the receiver releases the
            // producer, as in the scratch path).
            let consumed = if aborted_at_fork {
                Ok(())
            } else {
                catch_unwind(AssertUnwindSafe(|| {
                    consume_stream(&rx, &mut detector, &cfg.stream, &tag, &mut window);
                }))
            };
            rx.close();
            let joined = match producer.join() {
                Ok(v) => v,
                Err(p) => resume_unwind(p),
            };
            match consumed {
                Ok(()) => joined,
                Err(p) => resume_unwind(p),
            }
        })
    };

    let stream_stats = window.stats;
    if !stream_stats.aborted {
        detector.run_prediction();
    }
    let cells_gced = detector.shadow_cells_gced();
    let predict = detector.predict_stats();
    let out = UnitOutput {
        suppressed: detector.suppressed(),
        reports_dropped: detector.reports_dropped(),
        events_elided: detector.epoch_stats().map_or(0, |s| s.events_elided()),
        reports: if stream_stats.aborted {
            Vec::new()
        } else {
            detector.finish(module)
        },
        outcome,
        spilled_bytes: stream_stats.spilled_bytes,
        spill_segments: stream_stats.spill_segments,
        pressure_events: stream_stats.pressure_events,
        cells_gced,
        mem_budget_aborted: stream_stats.aborted,
        predict,
        forked: true,
        deduped: false,
        prefix_steps_saved: 0,
        snapshot_bytes: 0,
    };
    (out, trace)
}

/// Claim state for the sweep: units are handed out strictly in order,
/// so completed units always form a contiguous prefix of the sweep.
struct Claim {
    next: usize,
    deadline_hit: bool,
}

/// [`explore`] under a wall-clock budget: the seed sweep stops early
/// (with `deadline_hit` set) once `deadline` has elapsed. The first
/// unit always runs; reports found before the cut-off are still
/// aggregated and deduplicated.
pub fn explore_with_deadline(
    module: &Module,
    entry: FuncId,
    inputs: &[ProgramInput],
    cfg: &ExplorerConfig,
    deadline: Option<Duration>,
) -> ExploreResult {
    let start = Instant::now();
    let default_input = [ProgramInput::empty()];
    let inputs: &[ProgramInput] = if inputs.is_empty() {
        &default_input
    } else {
        inputs
    };
    // The sweep, flattened in deterministic unit order.
    let units: Vec<(usize, u64)> = (0..inputs.len())
        .flat_map(|i| (0..cfg.runs_per_input).map(move |k| (i, k)))
        .collect();
    let claim = Mutex::new(Claim {
        next: 0,
        deadline_hit: false,
    });
    let slots: Vec<Mutex<Option<UnitOutput>>> = units.iter().map(|_| Mutex::new(None)).collect();
    if cfg.fork {
        explore_forked(module, entry, inputs, cfg, deadline, start, &units, &claim, &slots);
    } else {
        let worker = || {
            loop {
                let i = {
                    let mut c = claim.lock().unwrap_or_else(PoisonError::into_inner);
                    if c.next >= units.len() {
                        break;
                    }
                    if let Some(d) = deadline {
                        if c.next > 0 && start.elapsed() >= d {
                            c.deadline_hit = true;
                            break;
                        }
                    }
                    let i = c.next;
                    c.next += 1;
                    i
                };
                let (input_idx, k) = units[i];
                let out = run_unit(
                    module,
                    entry,
                    &inputs[input_idx],
                    input_idx,
                    cfg.base_seed + k,
                    cfg,
                );
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
            }
        };
        let workers = cfg.workers.max(1).min(units.len().max(1));
        if workers <= 1 {
            worker();
        } else {
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(worker);
                }
            });
        }
    }

    // Deterministic merge, in unit order. Claims are a prefix, so the
    // first empty slot ends the completed range.
    let mut reports: Vec<RaceReport> = Vec::new();
    let mut by_key: HashMap<(InstRef, InstRef), usize> = HashMap::new();
    let mut outcomes = Vec::new();
    let mut runs = 0u64;
    let mut suppressed = 0usize;
    let mut reports_dropped = 0usize;
    let mut injected_faults = 0u64;
    let mut events_elided = 0u64;
    let mut trace_spilled_bytes = 0u64;
    let mut trace_spill_segments = 0u64;
    let mut mem_pressure_events = 0u64;
    let mut shadow_cells_gced = 0u64;
    let mut units_aborted_mem_budget = 0u64;
    let mut predict_candidates = 0u64;
    let mut predict_witnessed = 0u64;
    let mut predict_witness_rejected = 0u64;
    let mut predict_reversal_races = 0u64;
    let mut units_forked = 0u64;
    let mut prefix_steps_saved = 0u64;
    let mut schedules_deduped = 0u64;
    let mut snapshot_bytes = 0u64;
    for slot in slots {
        let Some(unit) = slot.into_inner().unwrap_or_else(PoisonError::into_inner) else {
            break;
        };
        runs += 1;
        suppressed += unit.suppressed;
        reports_dropped += unit.reports_dropped;
        injected_faults += unit.outcome.injected_faults.len() as u64;
        events_elided += unit.events_elided;
        trace_spilled_bytes += unit.spilled_bytes;
        trace_spill_segments += unit.spill_segments;
        mem_pressure_events += unit.pressure_events;
        shadow_cells_gced += unit.cells_gced;
        units_aborted_mem_budget += u64::from(unit.mem_budget_aborted);
        predict_candidates += unit.predict.candidates;
        predict_witnessed += unit.predict.witnessed;
        predict_witness_rejected += unit.predict.witness_rejected;
        predict_reversal_races += unit.predict.reversal_races;
        units_forked += u64::from(unit.forked);
        prefix_steps_saved += unit.prefix_steps_saved;
        schedules_deduped += u64::from(unit.deduped);
        snapshot_bytes += unit.snapshot_bytes;
        outcomes.push(unit.outcome);
        for r in unit.reports {
            match by_key.entry(r.key()) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(reports.len());
                    reports.push(r);
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    // Keep the first unit's report, but adopt a read
                    // hint from a later duplicate if it has one and
                    // the kept report does not.
                    let kept = &mut reports[*e.get()];
                    if kept.read_hint.is_none() {
                        kept.read_hint = r.read_hint;
                    }
                }
            }
        }
    }
    // Reports stay in discovery order (unit order, then within-unit
    // detection order) — the order is already deterministic for any
    // worker count because units merge by index, and downstream
    // consumers treat the first report on a global as the
    // representative one.
    let deadline_hit = claim
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .deadline_hit;
    ExploreResult {
        reports,
        runs,
        suppressed,
        reports_dropped,
        outcomes,
        injected_faults,
        events_elided,
        trace_spilled_bytes,
        trace_spill_segments,
        mem_pressure_events,
        shadow_cells_gced,
        units_aborted_mem_budget,
        predict_candidates,
        predict_witnessed,
        predict_witness_rejected,
        predict_reversal_races,
        units_forked,
        prefix_steps_saved,
        schedules_deduped,
        snapshot_bytes,
        deadline_hit,
    }
}

/// The fork-mode sweep driver. Inputs are processed sequentially: the
/// claiming thread runs the input's shared prefix and its pilot unit,
/// then a per-input worker pool fans the remaining seeds out from the
/// snapshot. Units are still claimed strictly in sweep order from the
/// same global claim state as the scratch path, so completed units
/// form a contiguous prefix and the deadline semantics are unchanged.
#[allow(clippy::too_many_arguments)]
fn explore_forked(
    module: &Module,
    entry: FuncId,
    inputs: &[ProgramInput],
    cfg: &ExplorerConfig,
    deadline: Option<Duration>,
    start: Instant,
    units: &[(usize, u64)],
    claim: &Mutex<Claim>,
    slots: &[Mutex<Option<UnitOutput>>],
) {
    let per_input = cfg.runs_per_input as usize;
    // Claims the next unit, refusing to cross `limit` (the end of the
    // current input — later inputs' prefixes have not run yet).
    let try_claim = |limit: usize| -> Option<usize> {
        let mut c = claim.lock().unwrap_or_else(PoisonError::into_inner);
        if c.next >= limit || c.next >= units.len() {
            return None;
        }
        if let Some(d) = deadline {
            if c.next > 0 && start.elapsed() >= d {
                c.deadline_hit = true;
                return None;
            }
        }
        let i = c.next;
        c.next += 1;
        Some(i)
    };
    let fill = |i: usize, out: UnitOutput| {
        *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
    };
    for (input_idx, input) in inputs.iter().enumerate() {
        let Some(first) = try_claim(units.len()) else {
            break;
        };
        debug_assert_eq!(units[first], (input_idx, 0));
        let limit = first + per_input;
        match run_prefix(module, entry, input, input_idx, cfg) {
            PrefixResult::Finished(template) => {
                // The whole execution was forced: every later seed is
                // marched through the same singleton picks, so one
                // execution serves all of them.
                let steps = template.outcome.steps;
                fill(first, (*template).clone());
                while let Some(i) = try_claim(limit) {
                    let mut out = (*template).clone();
                    out.deduped = true;
                    out.prefix_steps_saved = steps;
                    fill(i, out);
                }
            }
            PrefixResult::Forked(prefix, pilot_sched) => {
                let (mut pilot_out, trace) = run_forked_unit(
                    module,
                    &prefix,
                    pilot_sched,
                    Some(cfg.expected_steps.min(DEDUP_TRACE_CAP as u64) as usize),
                    input_idx,
                    cfg.base_seed,
                    cfg,
                );
                pilot_out.snapshot_bytes = prefix.bytes;
                let pilot = trace.expect("pilot records its trace");
                fill(first, pilot_out);
                // Clones the already-filled slot a deduped unit
                // collapses to, relabeling the counters: a deduped
                // unit did no forked work of its own.
                let dedup_clone = |slot: usize| {
                    let mut out = slots[slot]
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .as_ref()
                        .expect("matched slot is filled")
                        .clone();
                    out.forked = false;
                    out.deduped = true;
                    out.prefix_steps_saved = prefix.steps;
                    out.snapshot_bytes = 0;
                    out
                };
                let workers = cfg.workers.max(1).min(per_input.saturating_sub(1).max(1));
                if workers <= 1 {
                    // Serial sweep: every executed unit records its
                    // realized suffix schedule into a decision trie,
                    // and each new seed is probed against *every*
                    // already-run schedule with one trie walk before
                    // it is allowed to execute. Claim order is unit
                    // order here, so the trie contents at each probe
                    // — and with them every fork counter — are
                    // deterministic.
                    let mut trie = TraceTrie::default();
                    let mut hint = pilot.calls.len();
                    if !pilot.truncated {
                        trie.insert(pilot, first);
                    }
                    let mut misses = 0usize;
                    let mut dedup_on = true;
                    while let Some(i) = try_claim(limit) {
                        let (_, k) = units[i];
                        let seed = cfg.base_seed + k;
                        let mut sk = build_sched_send(cfg, seed);
                        fast_forward(sk.as_mut(), &prefix.calls);
                        // One trie walk probes every recorded
                        // schedule at once: shared prefixes cost a
                        // single pick, and the walk is bounded by the
                        // longest recorded suffix, not by the number
                        // of stored traces.
                        let probed = if dedup_on { trie.probe(sk.as_mut()) } else { None };
                        let out = match probed {
                            Some(slot) => {
                                misses = 0;
                                dedup_clone(slot)
                            }
                            None => {
                                // A failed walk consumed RNG draws
                                // against the recorded runnable sets,
                                // so the real run starts from a
                                // rebuilt, re-fast-forwarded
                                // scheduler (unless nothing probed and
                                // nothing was consumed).
                                let sched = if dedup_on && !trie.is_empty() {
                                    let mut fresh = build_sched_send(cfg, seed);
                                    fast_forward(fresh.as_mut(), &prefix.calls);
                                    fresh
                                } else {
                                    sk
                                };
                                let record = dedup_on.then_some(hint);
                                let (mut out, t) = run_forked_unit(
                                    module, &prefix, sched, record, input_idx, seed, cfg,
                                );
                                out.prefix_steps_saved = prefix.steps;
                                if let Some(t) = t {
                                    if !t.truncated {
                                        hint = t.calls.len();
                                        trie.insert(t, i);
                                    }
                                }
                                if dedup_on {
                                    misses += 1;
                                    if misses >= DEDUP_PATIENCE {
                                        dedup_on = false;
                                    }
                                }
                                out
                            }
                        };
                        fill(i, out);
                    }
                } else {
                    // Parallel sweep: workers race for units, so the
                    // set of completed traces at any probe is timing-
                    // dependent. Only the pilot's schedule — complete
                    // before any worker starts — is a deterministic
                    // dedup key, so parallel sweeps dedup against the
                    // pilot alone (the serial sweep is the thorough
                    // one; parallelism trades dedup reach for cores).
                    let worker = || {
                        while let Some(i) = try_claim(limit) {
                            let (_, k) = units[i];
                            let seed = cfg.base_seed + k;
                            let mut sk = build_sched_send(cfg, seed);
                            fast_forward(sk.as_mut(), &prefix.calls);
                            let deduped = !pilot.truncated && matches_trace(sk.as_mut(), &pilot);
                            let out = if deduped {
                                dedup_clone(first)
                            } else {
                                // After a mismatch `sk` has consumed
                                // RNG against the pilot's runnable
                                // sets; rebuild it clean. A truncated
                                // pilot skips the check, so `sk` is
                                // untouched past the prefix and can
                                // run directly.
                                let sched = if pilot.truncated {
                                    sk
                                } else {
                                    let mut fresh = build_sched_send(cfg, seed);
                                    fast_forward(fresh.as_mut(), &prefix.calls);
                                    fresh
                                };
                                let (mut out, _) = run_forked_unit(
                                    module, &prefix, sched, None, input_idx, seed, cfg,
                                );
                                out.prefix_steps_saved = prefix.steps;
                                out
                            };
                            fill(i, out);
                        }
                    };
                    std::thread::scope(|s| {
                        for _ in 0..workers {
                            s.spawn(worker);
                        }
                    });
                }
            }
        }
        if claim
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .deadline_hit
        {
            break;
        }
    }
}

/// Repeatedly executes `module` under fresh random schedules until
/// `success` holds on an outcome or `max_tries` is exhausted; returns
/// the number of executions used (the paper's "repetitive executions"
/// metric from §3.1/Table 4).
pub fn executions_until(
    module: &Module,
    entry: FuncId,
    input: &ProgramInput,
    run_config: &RunConfig,
    base_seed: u64,
    max_tries: u64,
    mut success: impl FnMut(&ExecOutcome) -> bool,
) -> Option<u64> {
    for k in 0..max_tries {
        let mut sched = RandomScheduler::new(base_seed + k);
        let vm = Vm::new(module, entry, input.clone(), run_config.clone());
        let outcome = vm.run(&mut sched, &mut owl_vm::NullSink);
        if success(&outcome) {
            return Some(k + 1);
        }
    }
    None
}

/// Returns the set of distinct racy site pairs, useful for comparing
/// strategies.
pub fn site_pairs(reports: &[RaceReport]) -> HashSet<(InstRef, InstRef)> {
    reports.iter().map(RaceReport::key).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_ir::{ModuleBuilder, Type};

    /// A narrow race: the write happens in a tiny window after a flag
    /// check, so fixed round-robin rarely sees it but exploration does.
    fn narrow_race() -> (Module, FuncId) {
        let mut mb = ModuleBuilder::new("narrow");
        let g = mb.global("x", 1, Type::I64);
        let w = mb.declare_func("w", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(w);
            let a = b.global_addr(g);
            b.store(a, 1);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t = b.thread_create(w, 0);
            let a = b.global_addr(g);
            b.load(a, Type::I64);
            b.thread_join(t);
            b.ret(None);
        }
        (mb.finish(), main)
    }

    #[test]
    fn exploration_finds_races_and_dedups() {
        let (m, main) = narrow_race();
        let result = explore(
            &m,
            main,
            &[],
            &ExplorerConfig {
                runs_per_input: 20,
                ..ExplorerConfig::default()
            },
        );
        assert_eq!(result.runs, 20);
        assert_eq!(result.reports.len(), 1, "{:?}", result.reports);
        assert_eq!(result.reports_on("x").count(), 1);
    }

    #[test]
    fn strategies_cover_both_ways() {
        let (m, main) = narrow_race();
        for strategy in [ExploreStrategy::Random, ExploreStrategy::Pct { depth: 2 }] {
            let result = explore(
                &m,
                main,
                &[],
                &ExplorerConfig {
                    runs_per_input: 30,
                    strategy,
                    ..ExplorerConfig::default()
                },
            );
            assert!(
                !result.reports.is_empty(),
                "strategy {strategy:?} found nothing"
            );
        }
    }

    #[test]
    fn executions_until_counts_tries() {
        let (m, main) = narrow_race();
        let tries = executions_until(
            &m,
            main,
            &ProgramInput::empty(),
            &RunConfig::default(),
            7,
            50,
            |o| o.status == owl_vm::ExitStatus::Finished,
        );
        assert_eq!(tries, Some(1), "every run finishes");
        let never = executions_until(
            &m,
            main,
            &ProgramInput::empty(),
            &RunConfig::default(),
            7,
            5,
            |_| false,
        );
        assert_eq!(never, None);
    }

    #[test]
    fn expired_deadline_stops_after_first_run() {
        let (m, main) = narrow_race();
        let result = explore_with_deadline(
            &m,
            main,
            &[],
            &ExplorerConfig {
                runs_per_input: 50,
                ..ExplorerConfig::default()
            },
            Some(Duration::from_secs(0)),
        );
        assert_eq!(result.runs, 1, "one run happens before the check");
        assert!(result.deadline_hit);
    }

    #[test]
    fn site_pair_sets() {
        let (m, main) = narrow_race();
        let r = explore(&m, main, &[], &ExplorerConfig::default());
        assert_eq!(site_pairs(&r.reports).len(), r.reports.len());
    }

    fn scratch_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "owl-explorer-test-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cfg_with_stream(stream: StreamConfig) -> ExplorerConfig {
        ExplorerConfig {
            runs_per_input: 10,
            stream,
            ..ExplorerConfig::default()
        }
    }

    #[test]
    fn streaming_matches_inline_at_any_capacity() {
        let (m, main) = narrow_race();
        let base = explore(
            &m,
            main,
            &[],
            &cfg_with_stream(StreamConfig {
                channel_capacity: 0,
                ..StreamConfig::default()
            }),
        );
        for capacity in [1, 2, 7, 1024] {
            let r = explore(
                &m,
                main,
                &[],
                &cfg_with_stream(StreamConfig {
                    channel_capacity: capacity,
                    ..StreamConfig::default()
                }),
            );
            assert_eq!(r.reports, base.reports, "capacity {capacity}");
            assert_eq!(
                (r.runs, r.suppressed, r.reports_dropped),
                (base.runs, base.suppressed, base.reports_dropped),
                "capacity {capacity}"
            );
        }
    }

    #[test]
    fn budget_with_spill_dir_completes_and_matches_inline() {
        let (m, main) = narrow_race();
        let base = explore(
            &m,
            main,
            &[],
            &cfg_with_stream(StreamConfig {
                channel_capacity: 0,
                ..StreamConfig::default()
            }),
        );
        let dir = scratch_dir("spill");
        let r = explore(
            &m,
            main,
            &[],
            &cfg_with_stream(StreamConfig {
                channel_capacity: 4,
                max_trace_mem: Some(256),
                spill_dir: Some(dir.clone()),
                ..StreamConfig::default()
            }),
        );
        assert!(r.trace_spill_segments > 0, "tiny budget must force spills");
        assert!(r.trace_spilled_bytes > 0);
        assert!(r.mem_pressure_events >= r.trace_spill_segments);
        assert_eq!(r.units_aborted_mem_budget, 0);
        assert_eq!(r.reports, base.reports, "spilling must not change reports");
        // Every segment is replayed and deleted on the spot.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .map(|rd| rd.filter_map(|e| e.ok()).collect())
            .unwrap_or_default();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_without_spill_dir_aborts_units_typed() {
        let (m, main) = narrow_race();
        let r = explore(
            &m,
            main,
            &[],
            &cfg_with_stream(StreamConfig {
                channel_capacity: 4,
                max_trace_mem: Some(64),
                spill_dir: None,
                ..StreamConfig::default()
            }),
        );
        assert_eq!(r.units_aborted_mem_budget, r.runs, "every unit overflows");
        assert!(r.mem_pressure_events > 0);
        assert!(
            r.reports.is_empty(),
            "aborted units must not leak partial reports: {:?}",
            r.reports
        );
    }

    #[test]
    fn fork_matches_scratch_and_counts_its_work() {
        let (m, main) = narrow_race();
        let run = |fork: bool| {
            explore(
                &m,
                main,
                &[],
                &ExplorerConfig {
                    runs_per_input: 20,
                    fork,
                    ..ExplorerConfig::default()
                },
            )
        };
        let forked = run(true);
        let scratch = run(false);
        assert_eq!(forked.reports, scratch.reports);
        assert_eq!(forked.outcomes, scratch.outcomes);
        assert_eq!(
            (forked.runs, forked.suppressed, forked.injected_faults),
            (scratch.runs, scratch.suppressed, scratch.injected_faults),
        );
        // Fork mode did real work: a pilot ran per input, the shared
        // prefix was reused, and the snapshot has a footprint.
        assert!(forked.units_forked > 0, "{forked:?}");
        assert!(forked.prefix_steps_saved > 0, "{forked:?}");
        assert!(forked.snapshot_bytes > 0, "{forked:?}");
        // Scratch mode reports all fork counters as zero.
        assert_eq!(
            (
                scratch.units_forked,
                scratch.prefix_steps_saved,
                scratch.schedules_deduped,
                scratch.snapshot_bytes
            ),
            (0, 0, 0, 0)
        );
    }

    #[test]
    fn single_threaded_input_dedups_every_seed() {
        // No thread is ever created: the whole execution is forced, so
        // fork mode runs it once and reuses the output for all seeds.
        let mut mb = ModuleBuilder::new("single");
        let g = mb.global("x", 1, Type::I64);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(main);
            let a = b.global_addr(g);
            b.store(a, 41);
            let v = b.load(a, Type::I64);
            b.output(0, v);
            b.ret(None);
        }
        let m = mb.finish();
        let main = m.func_by_name("main").unwrap();
        let r = explore(
            &m,
            main,
            &[],
            &ExplorerConfig {
                runs_per_input: 8,
                ..ExplorerConfig::default()
            },
        );
        assert_eq!(r.runs, 8);
        assert_eq!(r.schedules_deduped, 7, "{r:?}");
        assert_eq!(r.units_forked, 0, "no snapshot is ever taken");
        assert_eq!(r.snapshot_bytes, 0);
        assert!(r.prefix_steps_saved > 0);
        assert_eq!(r.outcomes.len(), 8);
        assert!(r.outcomes.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn streaming_parallel_workers_stay_byte_identical() {
        let (m, main) = narrow_race();
        let dir = scratch_dir("parallel");
        let run = |workers: usize| {
            explore(
                &m,
                main,
                &[],
                &ExplorerConfig {
                    runs_per_input: 12,
                    workers,
                    stream: StreamConfig {
                        channel_capacity: 8,
                        max_trace_mem: Some(512),
                        spill_dir: Some(dir.clone()),
                        ..StreamConfig::default()
                    },
                    ..ExplorerConfig::default()
                },
            )
        };
        let one = run(1);
        for workers in [2, 4] {
            let r = run(workers);
            assert_eq!(r.reports, one.reports, "workers {workers}");
            assert_eq!(
                (
                    r.runs,
                    r.trace_spilled_bytes,
                    r.trace_spill_segments,
                    r.mem_pressure_events,
                    r.shadow_cells_gced
                ),
                (
                    one.runs,
                    one.trace_spilled_bytes,
                    one.trace_spill_segments,
                    one.mem_pressure_events,
                    one.shadow_cells_gced
                ),
                "workers {workers}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
