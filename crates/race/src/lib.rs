//! # owl-race
//!
//! Data-race detection front-ends for the OWL concurrency-attack
//! framework (Rust reproduction of *"Understanding and Detecting
//! Concurrency Attacks"*, DSN 2018).
//!
//! The paper integrates two detectors — TSan for applications and SKI
//! for kernels — and augments them with adhoc-synchronization
//! annotations (§5.1) and a corrupted-address watchlist that records
//! the first read after a write-write race (§6.3). This crate provides
//! the same surface over [`owl_vm`] traces:
//!
//! * [`HbDetector`] — vector-clock happens-before detection (TSan's
//!   theory), with [`HbAnnotation`] support and read hints. It runs on
//!   FastTrack-style epoch shadow cells by default; the original full
//!   vector-clock backend is selectable as a differential oracle via
//!   [`HbBackend`], and the predictive backends (`syncp`, `syncrev`)
//!   additionally report witness-validated races reachable by
//!   reordering the observed trace (see [`PredictStats`]);
//! * [`LocksetDetector`] — an Eraser-style baseline used by the
//!   benches to put the report flood in context;
//! * [`explore`] — a PCT/random schedule-exploration driver (SKI's
//!   regime), aggregating deduplicated [`RaceReport`]s across seeds.
//!   The seed sweep fans out over [`ExplorerConfig::workers`] threads
//!   with a deterministic merge: any worker count yields byte-identical
//!   results.
//!
//! ## Example
//!
//! ```
//! use owl_ir::{ModuleBuilder, Type};
//! use owl_race::{explore, ExplorerConfig};
//!
//! // A program with a racy flag.
//! let mut mb = ModuleBuilder::new("demo");
//! let flag = mb.global("flag", 1, Type::I64);
//! let worker = mb.declare_func("worker", 1);
//! let main = mb.declare_func("main", 0);
//! {
//!     let mut b = mb.build_func(worker);
//!     let a = b.global_addr(flag);
//!     b.store(a, 1);
//!     b.ret(None);
//! }
//! {
//!     let mut b = mb.build_func(main);
//!     let t = b.thread_create(worker, 0);
//!     let a = b.global_addr(flag);
//!     b.load(a, Type::I64);
//!     b.thread_join(t);
//!     b.ret(None);
//! }
//! let module = mb.finish();
//!
//! let result = explore(&module, main, &[], &ExplorerConfig::default());
//! assert_eq!(result.reports.len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod atomicity;
mod epoch;
mod explorer;
mod hb;
mod lockset;
mod predict;
mod report;
pub mod spill;
mod vc;

pub use atomicity::{AtomicityDetector, AtomicityPattern, AtomicityReport};
pub use epoch::EpochStats;
pub use predict::PredictStats;
pub use explorer::{
    executions_until, explore, explore_with_deadline, site_pairs, ExploreResult, ExploreStrategy,
    ExplorerConfig, StreamConfig,
};
pub use hb::{global_name_for_addr, HbAnnotation, HbBackend, HbConfig, HbDetector};
pub use lockset::LocksetDetector;
pub use report::{Access, RaceReport};
pub use spill::{approx_event_bytes, SegmentRecovery, SpillError, SpillKillSwitch};
pub use vc::VectorClock;
