//! Atomicity-violation detection (the CTrigger/AVIO integration the
//! paper lists as future work, §8.3).
//!
//! Data races are not the only concurrency-bug class that feeds
//! attacks: two *individually synchronized* accesses that a developer
//! assumed atomic can be interleaved by a remote access. AVIO's
//! classification: for a thread's consecutive local accesses `p`
//! (preceding) and `c` (current) to one address with an interleaved
//! remote access `r`, the unserializable patterns are
//!
//! | p | r | c | meaning |
//! |---|---|---|---------|
//! | R | W | R | two local reads observe different values |
//! | W | W | R | local read sees a foreign overwrite |
//! | R | W | W | local update based on a stale read |
//! | W | R | W | remote read observes a half-done update |
//!
//! Reports convert into [`RaceReport`]-shaped pairs (`remote`,
//! `current`) so the rest of the OWL pipeline — race verification,
//! Algorithm 1, vulnerability verification — consumes them unchanged.

use crate::report::{Access, RaceReport};
use owl_ir::{InstRef, Module, Type};
use owl_vm::{EventKind, ThreadId, TraceEvent, TraceSink};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// The four unserializable interleaving patterns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AtomicityPattern {
    /// read — remote write — read.
    RwR,
    /// write — remote write — read.
    WwR,
    /// read — remote write — write.
    RwW,
    /// write — remote read — write.
    WrW,
}

impl std::fmt::Display for AtomicityPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AtomicityPattern::RwR => "R-W-R",
            AtomicityPattern::WwR => "W-W-R",
            AtomicityPattern::RwW => "R-W-W",
            AtomicityPattern::WrW => "W-R-W",
        };
        f.write_str(s)
    }
}

/// One unserializable interleaving.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AtomicityReport {
    /// The address involved.
    pub addr: u64,
    /// Name of the global containing `addr`, when known.
    pub global_name: Option<String>,
    /// The thread's preceding local access.
    pub preceding: Access,
    /// The interleaved remote access.
    pub remote: Access,
    /// The thread's current local access.
    pub current: Access,
    /// Which unserializable pattern this is.
    pub pattern: AtomicityPattern,
}

impl AtomicityReport {
    /// Deduplication key: the three static sites.
    pub fn key(&self) -> (InstRef, InstRef, InstRef) {
        (self.preceding.site, self.remote.site, self.current.site)
    }

    /// The read whose observed value the program's subsequent decisions
    /// wrongly trust — the load Algorithm 1 should start from:
    ///
    /// * `R-W-R` / `R-W-W`: the *preceding* stale check read;
    /// * `W-W-R`: the current read (it observes the foreign overwrite);
    /// * `W-R-W`: the remote read (it observes a half-done update).
    pub fn corrupted_read(&self) -> &Access {
        match self.pattern {
            AtomicityPattern::RwR | AtomicityPattern::RwW => &self.preceding,
            AtomicityPattern::WwR => &self.current,
            AtomicityPattern::WrW => &self.remote,
        }
    }

    /// Converts into the race-report shape the rest of the pipeline
    /// consumes: the conflicting write vs. the corrupted read.
    pub fn as_race_report(&self) -> RaceReport {
        let read = self.corrupted_read().clone();
        let write = match self.pattern {
            // For W-R-W the conflicting write is the thread's own
            // half-done update the remote read observed.
            AtomicityPattern::WrW => self.preceding.clone(),
            _ => self.remote.clone(),
        };
        RaceReport {
            addr: self.addr,
            global_name: self.global_name.clone(),
            first: write,
            second: read,
            read_hint: None,
        }
    }
}

#[derive(Clone, Debug)]
struct LocalState {
    last: Access,
    /// First remote *read* since `last`, if any.
    remote_read: Option<Access>,
    /// First remote *write* since `last`, if any.
    remote_write: Option<Access>,
}

/// Online atomicity-violation detector; feed it a VM run as a
/// [`TraceSink`].
#[derive(Clone, Debug, Default)]
pub struct AtomicityDetector {
    /// (thread, addr) -> local window state.
    windows: HashMap<(ThreadId, u64), LocalState>,
    reported: HashSet<(InstRef, InstRef, InstRef)>,
    reports: Vec<AtomicityReport>,
}

impl AtomicityDetector {
    /// Creates a detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reports accumulated so far.
    pub fn reports(&self) -> &[AtomicityReport] {
        &self.reports
    }

    /// Consumes the detector, resolving global names from `module`.
    pub fn finish(mut self, module: &Module) -> Vec<AtomicityReport> {
        for r in &mut self.reports {
            r.global_name = crate::hb::global_name_for_addr(module, r.addr).map(str::to_string);
        }
        self.reports
    }

    /// The unserializable pattern for a local pair, given the remote
    /// accesses interleaved between them. A remote *write* makes
    /// R-?-R, W-?-R, and R-?-W unserializable; a remote *read*
    /// makes W-?-W unserializable.
    fn classify(st: &LocalState, c: &Access) -> Option<(AtomicityPattern, Access)> {
        match (st.last.is_write, c.is_write) {
            (false, false) => st.remote_write.clone().map(|r| (AtomicityPattern::RwR, r)),
            (true, false) => st.remote_write.clone().map(|r| (AtomicityPattern::WwR, r)),
            (false, true) => st.remote_write.clone().map(|r| (AtomicityPattern::RwW, r)),
            (true, true) => st.remote_read.clone().map(|r| (AtomicityPattern::WrW, r)),
        }
    }

    fn on_access(&mut self, ev: &TraceEvent, addr: u64, is_write: bool, value: i64, ty: Type) {
        let access = Access {
            tid: ev.tid,
            site: ev.site,
            stack: ev.stack.clone(),
            is_write,
            value,
            ty,
        };
        // Update every *other* thread's window on this address: we are
        // their interleaved remote access.
        for ((t, a), st) in self.windows.iter_mut() {
            if *a == addr && *t != ev.tid {
                let slot = if is_write {
                    &mut st.remote_write
                } else {
                    &mut st.remote_read
                };
                if slot.is_none() {
                    *slot = Some(access.clone());
                }
            }
        }
        // Close our own window if a relevant remote access interleaved.
        let key = (ev.tid, addr);
        if let Some(st) = self.windows.get(&key) {
            if let Some((pattern, remote)) = Self::classify(st, &access) {
                let report = AtomicityReport {
                    addr,
                    global_name: None,
                    preceding: st.last.clone(),
                    remote,
                    current: access.clone(),
                    pattern,
                };
                if self.reported.insert(report.key()) {
                    self.reports.push(report);
                }
            }
        }
        self.windows.insert(
            key,
            LocalState {
                last: access,
                remote_read: None,
                remote_write: None,
            },
        );
    }
}

impl TraceSink for AtomicityDetector {
    fn on_event(&mut self, ev: &TraceEvent) {
        match ev.kind {
            EventKind::Read {
                addr,
                value,
                ty,
                atomic: false,
            } => self.on_access(ev, addr, false, value, ty),
            EventKind::Write {
                addr,
                value,
                atomic: false,
                ..
            } => self.on_access(ev, addr, true, value, Type::I64),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_ir::{FuncId, ModuleBuilder, Operand, Pred};
    use owl_vm::{ProgramInput, ReplayScheduler, RoundRobin, Vm};

    /// Check-then-act on a balance where every *individual* access is
    /// locked, so there is no data race — only an atomicity violation.
    fn bank() -> (owl_ir::Module, FuncId) {
        let mut mb = ModuleBuilder::new("bank");
        let balance = mb.global_init("balance", 1, vec![100], Type::I64);
        let lock = mb.global("lock", 1, Type::I64);
        let withdraw = mb.declare_func("withdraw", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(withdraw);
            let la = b.global_addr(lock);
            let ba = b.global_addr(balance);
            b.lock(la);
            let v = b.load(ba, Type::I64);
            b.unlock(la);
            let ok = b.cmp(Pred::Ge, v, Operand::Param(0));
            let go = b.block();
            let out = b.block();
            b.br(ok, go, out);
            b.switch_to(go);
            b.lock(la);
            let v2 = b.load(ba, Type::I64);
            let v3 = b.sub(v2, Operand::Param(0));
            b.store(ba, v3);
            b.unlock(la);
            b.jmp(out);
            b.switch_to(out);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t1 = b.thread_create(withdraw, 80);
            let t2 = b.thread_create(withdraw, 80);
            b.thread_join(t1);
            b.thread_join(t2);
            b.ret(None);
        }
        let m = mb.finish();
        let main_id = m.func_by_name("main").unwrap();
        (m, main_id)
    }

    #[test]
    fn bank_has_no_data_race_but_an_atomicity_violation() {
        let (m, main) = bank();
        // HB detector: silent (every access is locked).
        let mut hb = crate::hb::HbDetector::unannotated();
        let mut at = AtomicityDetector::new();
        // Explore a few schedules feeding both detectors.
        for seed in 0..20u64 {
            let mut sched = owl_vm::RandomScheduler::new(seed);
            let vm = Vm::new(&m, main, ProgramInput::empty(), Default::default());
            struct Both<'a>(&'a mut crate::hb::HbDetector, &'a mut AtomicityDetector);
            impl TraceSink for Both<'_> {
                fn on_event(&mut self, ev: &TraceEvent) {
                    self.0.on_event(ev);
                    self.1.on_event(ev);
                }
            }
            let _ = vm.run(&mut sched, &mut Both(&mut hb, &mut at));
        }
        assert!(hb.reports().is_empty(), "{:?}", hb.reports());
        let reports = at.finish(&m);
        // The bank's two local reads (the check and the update read)
        // straddle the other thread's store: the R-W-R pattern.
        assert!(
            reports
                .iter()
                .any(|r| r.global_name.as_deref() == Some("balance")
                    && r.pattern == AtomicityPattern::RwR),
            "stale-check pattern expected: {reports:?}"
        );
    }

    #[test]
    fn serializable_interleavings_are_quiet() {
        // Sequential execution (round robin, one thread finishes before
        // the other starts since each is short): no violations.
        let (m, main) = bank();
        let mut at = AtomicityDetector::new();
        let mut sched = RoundRobin::new(1_000);
        let vm = Vm::new(&m, main, ProgramInput::empty(), Default::default());
        let _ = vm.run(&mut sched, &mut at);
        assert!(at.reports().is_empty(), "{:?}", at.reports());
    }

    #[test]
    fn race_report_conversion_keeps_read_side() {
        let (m, main) = bank();
        let mut at = AtomicityDetector::new();
        // A schedule that interleaves: alternate threads every step.
        let mut sched = RoundRobin::new(1);
        for _ in 0..3 {
            let vm = Vm::new(&m, main, ProgramInput::empty(), Default::default());
            let _ = vm.run(&mut sched, &mut at);
        }
        let reports = at.finish(&m);
        if let Some(r) = reports.first() {
            let rr = r.as_race_report();
            assert_eq!(rr.addr, r.addr);
            assert!(rr.read_access().is_some(), "{rr:?}");
        }
    }

    #[test]
    fn replay_determinism_applies_to_atomicity_reports() {
        let (m, main) = bank();
        let run = |sched_choices: Option<Vec<ThreadId>>| {
            let mut at = AtomicityDetector::new();
            let outcome = match sched_choices {
                None => {
                    let mut sched = owl_vm::RandomScheduler::new(99);
                    Vm::new(&m, main, ProgramInput::empty(), Default::default())
                        .run(&mut sched, &mut at)
                }
                Some(c) => {
                    let mut sched = ReplayScheduler::new(c);
                    Vm::new(&m, main, ProgramInput::empty(), Default::default())
                        .run(&mut sched, &mut at)
                }
            };
            (outcome.schedule.clone(), at.finish(&m))
        };
        let (schedule, r1) = run(None);
        let (_, r2) = run(Some(schedule));
        assert_eq!(r1, r2);
    }
}
