//! FastTrack-style epoch shadow memory — the detector's fast path.
//!
//! The reference backend (the `hb` module) keeps a full `VectorClock`
//! per remembered access. FastTrack's observation is that almost every
//! access is totally ordered with the shadow state it meets, and a
//! total order is decided by a single component: thread `t`'s clock
//! published at value `c` is `le` another clock `K` iff `c <= K[t]`
//! (components only propagate along genuine happens-before edges, and
//! every release in this codebase publishes *before* ticking). So a
//! shadow cell stores `(thread, clock)` *epochs* instead of vectors:
//!
//! * the last write is always a single epoch;
//! * the read history is adaptively `None` → one epoch → a small
//!   per-thread epoch list, **promoted** only when genuinely
//!   concurrent reads are observed and **demoted** back once an
//!   ordering write clears it.
//!
//! The epoch list is exact, not an approximation: in the reference
//! backend at most one read per thread ever survives in a cell
//! (same-thread clocks are pointwise monotone, so each read prunes its
//! predecessor), which is precisely a per-thread epoch map. The two
//! backends therefore produce identical report streams — enforced by
//! `prop_hb.rs` and `tests/detector_equivalence.rs`.
//!
//! Layout choices for the hot loop:
//!
//! * cells live in an open-addressed, linear-probed table keyed on
//!   address (fibonacci hashing) with a last-cell cache — corpus
//!   traces hammer the same few globals back to back;
//! * call stacks are interned by `Arc` pointer identity (the VM reuses
//!   one `Arc` per thread between call-stack changes), so recording an
//!   access on the fast path allocates nothing.

use crate::report::Access;
use crate::vc::VectorClock;
use owl_ir::{InstRef, Type};
use owl_vm::{CallStack, ThreadId};
use std::collections::HashMap;

/// Interns call stacks by `Arc` pointer identity.
///
/// Keying on `(data pointer, length)` is sound because the interner
/// keeps an `Arc` clone of every stack it has seen, pinning the
/// allocation: a pointer can never be reused for a different stack
/// while the interner is alive. Distinct `Arc`s with equal contents
/// get distinct ids, which costs a little memory but never changes a
/// reconstructed [`Access`] (its `stack` compares by contents).
#[derive(Clone, Debug, Default)]
struct StackInterner {
    stacks: Vec<CallStack>,
    by_ptr: HashMap<(usize, usize), u32>,
    /// Per-thread cache, indexed by thread: each VM thread reuses one
    /// `Arc` between call-stack changes, but threads interleave in the
    /// trace, so a single shared entry would thrash on every switch.
    last: Vec<Option<((usize, usize), u32)>>,
}

impl StackInterner {
    fn intern(&mut self, tid: ThreadId, stack: &CallStack) -> u32 {
        let key = (stack.as_ptr() as usize, stack.len());
        let ti = tid.index();
        if let Some(Some((k, id))) = self.last.get(ti) {
            if *k == key {
                return *id;
            }
        }
        let id = match self.by_ptr.get(&key) {
            Some(&id) => id,
            None => {
                let id = u32::try_from(self.stacks.len()).expect("< 2^32 distinct stacks");
                self.stacks.push(stack.clone());
                self.by_ptr.insert(key, id);
                id
            }
        };
        if self.last.len() <= ti {
            self.last.resize(ti + 1, None);
        }
        self.last[ti] = Some((key, id));
        id
    }

    fn get(&self, id: u32) -> &CallStack {
        &self.stacks[id as usize]
    }
}

/// One remembered access, with the call stack interned: `Copy`, no
/// heap, 1/64th the size of a `(VectorClock, Access)` history entry.
#[derive(Clone, Copy, Debug)]
pub(crate) struct EpochAccess {
    site: InstRef,
    stack: u32,
    tid: ThreadId,
    /// The accessing thread's own clock component at access time — the
    /// epoch. `epoch <= clock[tid]` iff the access happens-before
    /// `clock` (see the module docs for why this is exact here).
    clock: u64,
    value: i64,
    ty: Type,
    is_write: bool,
}

impl EpochAccess {
    /// Whether this access happens-before a thread at `clock`.
    #[inline]
    fn ordered_before(&self, clock: &VectorClock) -> bool {
        self.clock <= clock.get(self.tid)
    }
}

/// Adaptive read history: epoch until concurrent reads force a
/// promotion, demoted back when pruning leaves at most one entry.
/// `Many` keeps insertion order — report emission order must match the
/// reference backend's `Vec` exactly.
#[derive(Clone, Debug, Default)]
enum ReadHistory {
    #[default]
    None,
    One(EpochAccess),
    Many(Vec<EpochAccess>),
}

/// Shadow state for one address.
#[derive(Clone, Debug, Default)]
struct Cell {
    write: Option<EpochAccess>,
    reads: ReadHistory,
}

#[derive(Clone, Debug)]
struct Slot {
    addr: u64,
    cell: Cell,
}

/// Fast-path and adaptivity counters for the epoch backend.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// Plain reads processed.
    pub reads: u64,
    /// Plain writes processed.
    pub writes: u64,
    /// Reads that stayed entirely on the O(1) epoch path (no conflict,
    /// no promotion, no epoch-list scan).
    pub read_fast: u64,
    /// Writes that stayed on the O(1) path (no conflict, no epoch-list
    /// scan).
    pub write_fast: u64,
    /// Accesses served by the last-cell lookup cache (no hashing).
    pub cell_cache_hits: u64,
    /// Read histories promoted from an epoch to an epoch list because
    /// genuinely concurrent reads were observed.
    pub read_promotions: u64,
    /// Read histories demoted back to an epoch (or cleared) after an
    /// ordering access pruned the list.
    pub read_demotions: u64,
    /// Reads skipped entirely because the static check-elision
    /// pre-pass proved their site race-free (no shadow lookup at all).
    pub reads_elided: u64,
    /// Writes skipped entirely by the elision pre-pass.
    pub writes_elided: u64,
}

impl EpochStats {
    /// Fraction of accesses that stayed on the O(1) fast path.
    pub fn fast_path_rate(&self) -> f64 {
        let total = self.reads + self.writes;
        if total == 0 {
            return 0.0;
        }
        (self.read_fast + self.write_fast) as f64 / total as f64
    }

    /// Total accesses the elision pre-pass let the backend skip.
    pub fn events_elided(&self) -> u64 {
        self.reads_elided + self.writes_elided
    }
}

/// Epoch shadow memory: open-addressed cell table + stack interner +
/// a scratch conflict list (reused across writes, so the steady state
/// allocates nothing).
#[derive(Clone, Debug, Default)]
pub(crate) struct EpochShadow {
    slots: Vec<Option<Slot>>,
    len: usize,
    /// Per-thread index of the most recently touched slot
    /// (`usize::MAX` = none). Threads tend to re-touch their own hot
    /// variable, so the cache is keyed by thread rather than shared.
    last: Vec<usize>,
    stacks: StackInterner,
    conflicts: Vec<EpochAccess>,
    stats: EpochStats,
}

#[inline]
fn hash_addr(addr: u64) -> usize {
    // Fibonacci hashing; the high bits are well mixed, so fold them in
    // before masking.
    let h = addr.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (h ^ (h >> 32)) as usize
}

impl EpochShadow {
    /// A shadow table continuing from this one's state — the epoch
    /// half of the detector fork used by prefix-sharing exploration.
    /// Slots, the stack interner, and counters are all deep-copied;
    /// only the scratch conflict list's capacity is shared history.
    pub(crate) fn fork(&self) -> EpochShadow {
        self.clone()
    }

    /// Index of `addr`'s slot, inserting an empty cell if absent.
    fn cell_index(&mut self, tid: ThreadId, addr: u64) -> usize {
        let ti = tid.index();
        if let Some(&cached) = self.last.get(ti) {
            if let Some(Some(s)) = self.slots.get(cached) {
                if s.addr == addr {
                    self.stats.cell_cache_hits += 1;
                    return cached;
                }
            }
        }
        if self.slots.is_empty() || self.len * 10 >= self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = hash_addr(addr) & mask;
        loop {
            match &self.slots[i] {
                Some(s) if s.addr == addr => break,
                Some(_) => i = (i + 1) & mask,
                None => {
                    self.slots[i] = Some(Slot {
                        addr,
                        cell: Cell::default(),
                    });
                    self.len += 1;
                    break;
                }
            }
        }
        if self.last.len() <= ti {
            self.last.resize(ti + 1, usize::MAX);
        }
        self.last[ti] = i;
        i
    }

    fn grow(&mut self) {
        let cap = (self.slots.len() * 2).max(64);
        let old = std::mem::replace(&mut self.slots, vec![None; cap]);
        self.last.clear();
        let mask = cap - 1;
        for slot in old.into_iter().flatten() {
            let mut i = hash_addr(slot.addr) & mask;
            while self.slots[i].is_some() {
                i = (i + 1) & mask;
            }
            self.slots[i] = Some(slot);
        }
    }

    /// Re-inserts every surviving slot in place: removing an entry
    /// breaks the linear-probe chains running through it, so lookups
    /// are only correct again after a rehash.
    fn rehash(&mut self) {
        let cap = self.slots.len();
        if cap == 0 {
            return;
        }
        let old = std::mem::replace(&mut self.slots, vec![None; cap]);
        self.last.clear();
        let mask = cap - 1;
        for slot in old.into_iter().flatten() {
            let mut i = hash_addr(slot.addr) & mask;
            while self.slots[i].is_some() {
                i = (i + 1) & mask;
            }
            self.slots[i] = Some(slot);
        }
    }

    /// Reclaims shadow cells whose every remembered access is ordered
    /// before `min` — the pointwise minimum over all live threads'
    /// clocks. Any future access runs at a clock ≥ `min` pointwise
    /// (live threads only advance; forked threads inherit their
    /// parent's knowledge), so a reclaimed access could never again be
    /// a conflict: dropping it cannot change the report stream.
    /// Returns the number of cells freed. Interned stacks are pinned
    /// for the detector's lifetime and are not reclaimed here.
    pub(crate) fn gc(&mut self, min: &VectorClock) -> u64 {
        self.sweep(|_| true, min)
    }

    /// Same criterion, restricted to addresses in `[start, end)` — the
    /// targeted sweep a `Free` event triggers for the dying region.
    pub(crate) fn gc_range(&mut self, start: u64, end: u64, min: &VectorClock) -> u64 {
        self.sweep(|addr| addr >= start && addr < end, min)
    }

    fn sweep(&mut self, in_scope: impl Fn(u64) -> bool, min: &VectorClock) -> u64 {
        let mut freed = 0u64;
        for slot in self.slots.iter_mut() {
            let Some(s) = slot else { continue };
            if !in_scope(s.addr) {
                continue;
            }
            let cell = &mut s.cell;
            if let Some(w) = &cell.write {
                if w.ordered_before(min) {
                    cell.write = None;
                }
            }
            cell.reads = match std::mem::take(&mut cell.reads) {
                ReadHistory::None => ReadHistory::None,
                ReadHistory::One(e) if e.ordered_before(min) => ReadHistory::None,
                ReadHistory::One(e) => ReadHistory::One(e),
                ReadHistory::Many(mut v) => {
                    v.retain(|e| !e.ordered_before(min));
                    match v.len() {
                        0 => {
                            self.stats.read_demotions += 1;
                            ReadHistory::None
                        }
                        1 => {
                            self.stats.read_demotions += 1;
                            ReadHistory::One(v[0])
                        }
                        _ => ReadHistory::Many(v),
                    }
                }
            };
            if cell.write.is_none() && matches!(cell.reads, ReadHistory::None) {
                *slot = None;
                self.len -= 1;
                freed += 1;
            }
        }
        if freed > 0 {
            self.rehash();
        }
        freed
    }

    /// Processes a plain read; returns the prior racy write, if any.
    /// Mirrors the reference backend's shadow update exactly: check
    /// the last write, prune reads that happen-before this one, record
    /// this read.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn read(
        &mut self,
        addr: u64,
        tid: ThreadId,
        clock: &VectorClock,
        site: InstRef,
        stack: &CallStack,
        value: i64,
        ty: Type,
    ) -> Option<EpochAccess> {
        self.stats.reads += 1;
        let frame = self.stacks.intern(tid, stack);
        let idx = self.cell_index(tid, addr);
        let entry = EpochAccess {
            site,
            stack: frame,
            tid,
            clock: clock.get(tid),
            value,
            ty,
            is_write: false,
        };
        let Self { slots, stats, .. } = self;
        let cell = &mut slots[idx].as_mut().expect("occupied slot").cell;
        let racy_write = match &cell.write {
            Some(w) if w.tid != tid && !w.ordered_before(clock) => Some(*w),
            _ => None,
        };
        let mut fast = racy_write.is_none();
        cell.reads = match std::mem::take(&mut cell.reads) {
            ReadHistory::None => ReadHistory::One(entry),
            // Same-thread re-read: the previous epoch is necessarily
            // ordered before (own clocks are monotone), so it is
            // pruned and replaced in O(1).
            ReadHistory::One(e) if e.tid == tid => ReadHistory::One(entry),
            ReadHistory::One(e) => {
                if e.ordered_before(clock) {
                    ReadHistory::One(entry)
                } else {
                    // Genuinely concurrent reads: promote to a list.
                    fast = false;
                    stats.read_promotions += 1;
                    ReadHistory::Many(vec![e, entry])
                }
            }
            ReadHistory::Many(mut v) => {
                fast = false;
                v.retain(|e| !e.ordered_before(clock));
                v.push(entry);
                if v.len() == 1 {
                    stats.read_demotions += 1;
                    ReadHistory::One(entry)
                } else {
                    ReadHistory::Many(v)
                }
            }
        };
        if fast {
            stats.read_fast += 1;
        }
        racy_write
    }

    /// Processes a plain write. Conflicts (the racy prior write first,
    /// then racy reads in insertion order — the reference backend's
    /// emission order) are left in the scratch list for the detector
    /// to drain via [`EpochShadow::conflict_count`] /
    /// [`EpochShadow::conflict_access`].
    pub(crate) fn write(
        &mut self,
        addr: u64,
        tid: ThreadId,
        clock: &VectorClock,
        site: InstRef,
        stack: &CallStack,
        value: i64,
    ) {
        self.stats.writes += 1;
        self.conflicts.clear();
        let frame = self.stacks.intern(tid, stack);
        let idx = self.cell_index(tid, addr);
        let Self {
            slots,
            conflicts,
            stats,
            ..
        } = self;
        let cell = &mut slots[idx].as_mut().expect("occupied slot").cell;
        if let Some(w) = &cell.write {
            if w.tid != tid && !w.ordered_before(clock) {
                conflicts.push(*w);
            }
        }
        let mut fast = true;
        match &cell.reads {
            ReadHistory::None => {}
            ReadHistory::One(e) => {
                if e.tid != tid && !e.ordered_before(clock) {
                    conflicts.push(*e);
                }
            }
            ReadHistory::Many(v) => {
                fast = false;
                for e in v {
                    if e.tid != tid && !e.ordered_before(clock) {
                        conflicts.push(*e);
                    }
                }
            }
        }
        cell.write = Some(EpochAccess {
            site,
            stack: frame,
            tid,
            clock: clock.get(tid),
            value,
            ty: Type::I64,
            is_write: true,
        });
        cell.reads = match std::mem::take(&mut cell.reads) {
            ReadHistory::None => ReadHistory::None,
            ReadHistory::One(e) => {
                if e.ordered_before(clock) {
                    ReadHistory::None
                } else {
                    ReadHistory::One(e)
                }
            }
            ReadHistory::Many(mut v) => {
                v.retain(|e| !e.ordered_before(clock));
                match v.len() {
                    0 => {
                        stats.read_demotions += 1;
                        ReadHistory::None
                    }
                    1 => {
                        stats.read_demotions += 1;
                        ReadHistory::One(v[0])
                    }
                    _ => ReadHistory::Many(v),
                }
            }
        };
        if fast && conflicts.is_empty() {
            stats.write_fast += 1;
        }
    }

    /// Conflicts found by the last [`EpochShadow::write`].
    pub(crate) fn conflict_count(&self) -> usize {
        self.conflicts.len()
    }

    /// The `i`-th conflict of the last write, rehydrated (slow path
    /// only: a report is about to be recorded).
    pub(crate) fn conflict_access(&self, i: usize) -> Access {
        self.materialize(&self.conflicts[i])
    }

    /// Reconstructs a full [`Access`] from an interned epoch record.
    pub(crate) fn materialize(&self, e: &EpochAccess) -> Access {
        Access {
            tid: e.tid,
            site: e.site,
            stack: self.stacks.get(e.stack).clone(),
            is_write: e.is_write,
            value: e.value,
            ty: e.ty,
        }
    }

    /// Counts a read whose shadow work was skipped by static elision.
    pub(crate) fn note_elided_read(&mut self) {
        self.stats.reads_elided += 1;
    }

    /// Counts a write whose shadow work was skipped by static elision.
    pub(crate) fn note_elided_write(&mut self) {
        self.stats.writes_elided += 1;
    }

    /// Counters accumulated so far.
    pub(crate) fn stats(&self) -> EpochStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_vm::ThreadId;
    use std::sync::Arc;

    fn stack() -> CallStack {
        Arc::from(vec![].into_boxed_slice())
    }

    fn clock(vals: &[u64]) -> VectorClock {
        let mut c = VectorClock::new();
        for (i, v) in vals.iter().enumerate() {
            c.set(ThreadId(i as u32), *v);
        }
        c
    }

    fn site() -> InstRef {
        InstRef::new(owl_ir::FuncId(0), owl_ir::InstId(0))
    }

    #[test]
    fn table_grows_past_initial_capacity_and_keeps_cells() {
        let mut s = EpochShadow::default();
        let st = stack();
        let c = clock(&[5]);
        for a in 0..500u64 {
            s.write(a, ThreadId(0), &c, site(), &st, 3);
        }
        // Same thread, later clock: every cell still resolves, no
        // conflicts.
        let c2 = clock(&[9]);
        for a in 0..500u64 {
            assert!(s.read(a, ThreadId(0), &c2, site(), &st, 3, Type::I64).is_none());
            assert_eq!(s.conflict_count(), 0);
        }
        assert!(s.len >= 500);
    }

    #[test]
    fn last_cell_cache_hits_on_repeated_address() {
        let mut s = EpochShadow::default();
        let st = stack();
        let c = clock(&[1]);
        for _ in 0..10 {
            let _ = s.read(0x40, ThreadId(0), &c, site(), &st, 0, Type::I64);
        }
        assert!(s.stats().cell_cache_hits >= 9, "{:?}", s.stats());
    }

    #[test]
    fn gc_reclaims_ordered_cells_and_keeps_concurrent_ones() {
        let mut s = EpochShadow::default();
        let st = stack();
        // Thread 0 writes two addresses at clock 2.
        let c0 = clock(&[2]);
        s.write(0x10, ThreadId(0), &c0, site(), &st, 1);
        s.write(0x20, ThreadId(0), &c0, site(), &st, 2);
        // min over live threads knows thread 0 only up to clock 1:
        // nothing is reclaimable.
        assert_eq!(s.gc(&clock(&[1])), 0);
        assert_eq!(s.len, 2);
        // Everyone has seen clock 2: both cells go, lookups still work.
        assert_eq!(s.gc(&clock(&[2])), 2);
        assert_eq!(s.len, 0);
        let c3 = clock(&[3]);
        assert!(s
            .read(0x10, ThreadId(0), &c3, site(), &st, 1, Type::I64)
            .is_none());
    }

    #[test]
    fn gc_range_only_touches_the_region() {
        let mut s = EpochShadow::default();
        let st = stack();
        let c = clock(&[1]);
        s.write(0x10, ThreadId(0), &c, site(), &st, 0);
        s.write(0x80, ThreadId(0), &c, site(), &st, 0);
        assert_eq!(s.gc_range(0x00, 0x40, &clock(&[5])), 1);
        assert_eq!(s.len, 1);
        // The out-of-range cell survived with its write intact.
        let c2 = clock(&[9]);
        assert!(s
            .read(0x80, ThreadId(0), &c2, site(), &st, 0, Type::I64)
            .is_none());
        assert_eq!(s.len, 1, "read of surviving cell must not re-insert");
    }

    #[test]
    fn gc_prunes_ordered_reads_inside_surviving_cells() {
        let mut s = EpochShadow::default();
        let st = stack();
        // Concurrent reads by threads 0 and 1 promote to a list.
        let _ = s.read(0x10, ThreadId(0), &clock(&[1, 0]), site(), &st, 0, Type::I64);
        let _ = s.read(0x10, ThreadId(1), &clock(&[0, 1]), site(), &st, 0, Type::I64);
        assert_eq!(s.stats().read_promotions, 1);
        // min knows thread 0's read but not thread 1's: cell survives
        // (no full reclaim), but nothing is miscounted.
        assert_eq!(s.gc(&clock(&[1, 0])), 0);
        assert_eq!(s.len, 1);
        // Now everyone has seen both reads.
        assert_eq!(s.gc(&clock(&[1, 1])), 1);
        assert_eq!(s.len, 0);
    }

    #[test]
    fn interner_reuses_pointer_identical_stacks() {
        let mut i = StackInterner::default();
        let a: CallStack = Arc::from(vec![site()].into_boxed_slice());
        let b = a.clone();
        let t = ThreadId(0);
        assert_eq!(i.intern(t, &a), i.intern(t, &b));
        let other: CallStack = Arc::from(vec![site()].into_boxed_slice());
        // Equal contents, distinct allocation: a fresh id, and both
        // rehydrate to equal stacks.
        let id2 = i.intern(t, &other);
        assert_eq!(i.get(id2)[..], i.get(0)[..]);
    }
}
