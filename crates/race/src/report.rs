//! Race reports.
//!
//! A report pairs two conflicting accesses with their call stacks — the
//! unit every later OWL stage consumes: the adhoc-sync detector reads
//! the racy read's loop context, Algorithm 1 starts from the racy
//! read's call stack, and the dynamic verifiers breakpoint both sites.

use owl_ir::{InstRef, Module, Type};
use owl_vm::{CallStack, ThreadId};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One side of a race.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Access {
    /// Acting thread.
    pub tid: ThreadId,
    /// The racing instruction.
    pub site: InstRef,
    /// Call stack at the access (call sites, outermost first).
    pub stack: CallStack,
    /// Whether the access writes.
    pub is_write: bool,
    /// The value read / written.
    pub value: i64,
    /// Static type at the access site.
    pub ty: Type,
}

/// A detected data race on one address.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RaceReport {
    /// The racing address.
    pub addr: u64,
    /// Name of the global containing `addr`, when known.
    pub global_name: Option<String>,
    /// The access that executed first.
    pub first: Access,
    /// The conflicting access that executed later.
    pub second: Access,
    /// For write-write races: the first subsequent load of the corrupted
    /// address. The paper modified SKI's policy to record exactly this
    /// (§6.3), because Algorithm 1 needs a corrupted *read* to start
    /// from.
    pub read_hint: Option<Access>,
}

impl RaceReport {
    /// Normalized site-pair key for deduplication (TSan reports each
    /// static pair once).
    pub fn key(&self) -> (InstRef, InstRef) {
        let (a, b) = (self.first.site, self.second.site);
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// The read side whose call stack seeds the vulnerability analysis:
    /// prefer a racy read access, else the recorded post-race read hint.
    pub fn read_access(&self) -> Option<&Access> {
        if !self.second.is_write {
            Some(&self.second)
        } else if !self.first.is_write {
            Some(&self.first)
        } else {
            self.read_hint.as_ref()
        }
    }

    /// Whether both sides write (needs `read_hint` for analysis).
    pub fn is_write_write(&self) -> bool {
        self.first.is_write && self.second.is_write
    }

    /// Renders the report in the paper's Figure-4 style: the racing
    /// pair, then each side's call stack.
    pub fn format(&self, m: &Module) -> String {
        let mut out = String::new();
        let name = self
            .global_name
            .clone()
            .unwrap_or_else(|| format!("{:#x}", self.addr));
        let _ = writeln!(out, "data race on `{name}`:");
        for (label, acc) in [("first", &self.first), ("second", &self.second)] {
            let _ = writeln!(
                out,
                "  {label}: {} {} of {} (value {})",
                acc.tid,
                if acc.is_write { "write" } else { "read" },
                m.format_loc(acc.site),
                acc.value,
            );
            let _ = writeln!(out, "    {}", m.format_frame(acc.site));
            for frame in acc.stack.iter().rev() {
                let _ = writeln!(out, "    {}", m.format_frame(*frame));
            }
        }
        if let Some(h) = &self.read_hint {
            let _ = writeln!(out, "  first read after race: {}", m.format_frame(h.site));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_ir::{FuncId, InstId};
    use std::sync::Arc;

    fn acc(f: u32, i: u32, w: bool) -> Access {
        Access {
            tid: ThreadId(0),
            site: InstRef::new(FuncId(f), InstId(i)),
            stack: Arc::from(vec![].into_boxed_slice()),
            is_write: w,
            value: 0,
            ty: Type::I64,
        }
    }

    fn report(first: Access, second: Access) -> RaceReport {
        RaceReport {
            addr: 0x1000,
            global_name: Some("dying".into()),
            first,
            second,
            read_hint: None,
        }
    }

    #[test]
    fn key_is_order_insensitive() {
        let r1 = report(acc(0, 1, true), acc(1, 2, false));
        let r2 = report(acc(1, 2, false), acc(0, 1, true));
        assert_eq!(r1.key(), r2.key());
    }

    #[test]
    fn read_access_prefers_actual_read() {
        let r = report(acc(0, 1, true), acc(1, 2, false));
        assert_eq!(
            r.read_access().unwrap().site,
            InstRef::new(FuncId(1), InstId(2))
        );
        let r = report(acc(0, 1, false), acc(1, 2, true));
        assert_eq!(
            r.read_access().unwrap().site,
            InstRef::new(FuncId(0), InstId(1))
        );
    }

    #[test]
    fn write_write_uses_hint() {
        let mut r = report(acc(0, 1, true), acc(1, 2, true));
        assert!(r.is_write_write());
        assert!(r.read_access().is_none());
        r.read_hint = Some(acc(2, 3, false));
        assert_eq!(
            r.read_access().unwrap().site,
            InstRef::new(FuncId(2), InstId(3))
        );
    }
}
