//! Property tests: vector clocks must form a join-semilattice and the
//! happens-before order must be a partial order — the correctness
//! bedrock of the race detector.

use owl_race::VectorClock;
use owl_vm::ThreadId;
use proptest::prelude::*;

fn clock_strategy() -> impl Strategy<Value = VectorClock> {
    prop::collection::vec(0u64..50, 0..6).prop_map(|vals| {
        let mut c = VectorClock::new();
        for (i, v) in vals.into_iter().enumerate() {
            c.set(ThreadId(i as u32), v);
        }
        c
    })
}

proptest! {
    #[test]
    fn join_is_commutative(a in clock_strategy(), b in clock_strategy()) {
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        // Compare componentwise (the representation may differ in
        // trailing zeros).
        for t in 0..8 {
            prop_assert_eq!(ab.get(ThreadId(t)), ba.get(ThreadId(t)));
        }
    }

    #[test]
    fn join_is_associative(a in clock_strategy(), b in clock_strategy(), c in clock_strategy()) {
        let mut left = a.clone();
        left.join(&b);
        left.join(&c);
        let mut bc = b.clone();
        bc.join(&c);
        let mut right = a.clone();
        right.join(&bc);
        for t in 0..8 {
            prop_assert_eq!(left.get(ThreadId(t)), right.get(ThreadId(t)));
        }
    }

    #[test]
    fn join_is_idempotent_and_upper_bound(a in clock_strategy(), b in clock_strategy()) {
        let mut aa = a.clone();
        aa.join(&a);
        for t in 0..8 {
            prop_assert_eq!(aa.get(ThreadId(t)), a.get(ThreadId(t)));
        }
        let mut j = a.clone();
        j.join(&b);
        prop_assert!(a.le(&j));
        prop_assert!(b.le(&j));
    }

    #[test]
    fn le_is_reflexive_and_antisymmetric(a in clock_strategy(), b in clock_strategy()) {
        prop_assert!(a.le(&a));
        if a.le(&b) && b.le(&a) {
            for t in 0..8 {
                prop_assert_eq!(a.get(ThreadId(t)), b.get(ThreadId(t)));
            }
        }
    }

    #[test]
    fn le_is_transitive(a in clock_strategy(), b in clock_strategy(), c in clock_strategy()) {
        if a.le(&b) && b.le(&c) {
            prop_assert!(a.le(&c));
        }
    }

    #[test]
    fn concurrent_is_symmetric_and_irreflexive(a in clock_strategy(), b in clock_strategy()) {
        prop_assert_eq!(a.concurrent(&b), b.concurrent(&a));
        prop_assert!(!a.concurrent(&a));
    }

    #[test]
    fn tick_strictly_increases(a in clock_strategy(), t in 0u32..6) {
        let mut b = a.clone();
        b.tick(ThreadId(t));
        prop_assert!(a.le(&b));
        prop_assert!(!b.le(&a));
    }
}
