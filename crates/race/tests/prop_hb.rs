//! Property test: the vector-clock detector against an independent
//! happens-before oracle.
//!
//! Random concurrent programs (threads mixing locked and unlocked
//! accesses to a handful of globals) are executed once; the resulting
//! event trace is analyzed two ways:
//!
//! * by [`owl_race::HbDetector`] (vector clocks, online);
//! * by a brute-force oracle that builds the happens-before DAG
//!   (program order + unlock→lock + fork/join edges) and checks
//!   reachability for every conflicting pair.
//!
//! Required agreement:
//!
//! * **no false positives** — every pair the detector reports is
//!   concurrent per the oracle;
//! * **per-address coverage** — every address with at least one true
//!   race gets at least one detector report (the detector may pick a
//!   different representative pair; TSan's read-set pruning has the
//!   same property).

use owl_ir::{FuncId, ModuleBuilder, Type};
use owl_race::{HbAnnotation, HbBackend, HbConfig, HbDetector};
use owl_vm::{
    EventKind, ProgramInput, RandomScheduler, RunConfig, ThreadId, TraceEvent, VecSink, Vm,
};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Action {
    /// Unlocked access to global `g` (write if `w`).
    Plain {
        g: usize,
        w: bool,
    },
    /// Lock-protected accesses.
    Locked {
        body: Vec<(usize, bool)>,
    },
    Yield,
}

fn action_strategy(globals: usize) -> impl Strategy<Value = Action> {
    prop_oneof![
        (0..globals, any::<bool>()).prop_map(|(g, w)| Action::Plain { g, w }),
        prop::collection::vec((0..globals, any::<bool>()), 1..3)
            .prop_map(|body| Action::Locked { body }),
        Just(Action::Yield),
    ]
}

fn program_strategy() -> impl Strategy<Value = Vec<Vec<Action>>> {
    prop::collection::vec(
        prop::collection::vec(action_strategy(3), 1..6),
        2..4, // threads
    )
}

fn build(threads: &[Vec<Action>]) -> (owl_ir::Module, FuncId) {
    let mut mb = ModuleBuilder::new("prop-hb");
    let globals: Vec<_> = (0..3)
        .map(|i| mb.global(format!("g{i}"), 1, Type::I64))
        .collect();
    let mutex = mb.global("m", 1, Type::I64);
    let fns: Vec<FuncId> = (0..threads.len())
        .map(|i| mb.declare_func(format!("t{i}"), 1))
        .collect();
    for (f, actions) in fns.iter().zip(threads) {
        let mut b = mb.build_func(*f);
        for a in actions {
            match a {
                Action::Plain { g, w } => {
                    let addr = b.global_addr(globals[*g]);
                    if *w {
                        b.store(addr, 1);
                    } else {
                        b.load(addr, Type::I64);
                    }
                }
                Action::Locked { body } => {
                    let la = b.global_addr(mutex);
                    b.lock(la);
                    for (g, w) in body {
                        let addr = b.global_addr(globals[*g]);
                        if *w {
                            b.store(addr, 2);
                        } else {
                            b.load(addr, Type::I64);
                        }
                    }
                    b.unlock(la);
                }
                Action::Yield => {
                    b.yield_now();
                }
            }
        }
        b.ret(None);
    }
    let main = mb.declare_func("main", 0);
    {
        let mut b = mb.build_func(main);
        let tids: Vec<_> = fns.iter().map(|&f| b.thread_create(f, 0)).collect();
        for t in tids {
            b.thread_join(t);
        }
        b.ret(None);
    }
    (mb.finish(), main)
}

/// Brute-force oracle: happens-before reachability over the trace.
fn oracle_races(events: &[TraceEvent]) -> Vec<(u64, usize, usize)> {
    let n = events.len();
    let mut edge = vec![vec![]; n];
    // Program order.
    let mut last_of_thread: std::collections::HashMap<ThreadId, usize> = Default::default();
    // Lock hand-off.
    let mut last_unlock: std::collections::HashMap<u64, usize> = Default::default();
    // Thread start/end for fork/join edges.
    let mut first_of_thread: std::collections::HashMap<ThreadId, usize> = Default::default();
    for (i, ev) in events.iter().enumerate() {
        if let Some(&p) = last_of_thread.get(&ev.tid) {
            edge[p].push(i);
        }
        first_of_thread.entry(ev.tid).or_insert(i);
        last_of_thread.insert(ev.tid, i);
        match ev.kind {
            EventKind::Lock { addr } => {
                if let Some(&u) = last_unlock.get(&addr) {
                    edge[u].push(i);
                }
            }
            EventKind::Unlock { addr } => {
                last_unlock.insert(addr, i);
            }
            EventKind::Fork { child } => {
                // Edge to the child's first (future) event: handled in a
                // second pass below, once first_of_thread is complete.
                let _ = child;
            }
            EventKind::Join { child } => {
                if let Some(&l) = last_of_thread.get(&child) {
                    edge[l].push(i);
                }
            }
            _ => {}
        }
    }
    for (i, ev) in events.iter().enumerate() {
        if let EventKind::Fork { child } = ev.kind {
            if let Some(&f) = first_of_thread.get(&child) {
                if f > i {
                    edge[i].push(f);
                }
            }
        }
    }
    // Reachability (forward BFS per node; traces here are small).
    let mut reach = vec![vec![false; n]; n];
    for (s, row) in reach.iter_mut().enumerate() {
        let mut stack = vec![s];
        while let Some(x) = stack.pop() {
            for &y in &edge[x] {
                if !row[y] {
                    row[y] = true;
                    stack.push(y);
                }
            }
        }
    }
    let mut races = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let (a, b) = (&events[i], &events[j]);
            if !a.is_data_access() || !b.is_data_access() {
                continue;
            }
            if a.tid == b.tid || a.addr() != b.addr() {
                continue;
            }
            if !(a.is_write() || b.is_write()) {
                continue;
            }
            if !reach[i][j] && !reach[j][i] {
                races.push((a.addr().unwrap(), i, j));
            }
        }
    }
    races
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn detector_agrees_with_oracle(threads in program_strategy(), seed in 0u64..64) {
        let (m, main) = build(&threads);
        let mut sink = VecSink::default();
        let mut sched = RandomScheduler::new(seed);
        let vm = Vm::new(&m, main, ProgramInput::empty(), RunConfig::default());
        let _ = vm.run(&mut sched, &mut sink);

        // Oracle verdict on this exact trace.
        let truth = oracle_races(&sink.events);
        let racy_addrs: std::collections::BTreeSet<u64> =
            truth.iter().map(|(a, _, _)| *a).collect();
        let concurrent_pairs: std::collections::BTreeSet<(u64, _, _)> = truth
            .iter()
            .map(|(a, i, j)| {
                let (s1, s2) = (sink.events[*i].site, sink.events[*j].site);
                if s1 <= s2 { (*a, s1, s2) } else { (*a, s2, s1) }
            })
            .collect();

        // Detector verdict on the same trace.
        let mut det = HbDetector::unannotated();
        for ev in &sink.events {
            use owl_vm::TraceSink as _;
            det.on_event(ev);
        }
        let reports = det.finish(&m);

        // 1. No false positives.
        for r in &reports {
            let key = r.key();
            prop_assert!(
                concurrent_pairs.contains(&(r.addr, key.0, key.1)),
                "false positive: {r:?}\ntruth: {concurrent_pairs:?}"
            );
        }
        // 2. Per-address coverage.
        let reported_addrs: std::collections::BTreeSet<u64> =
            reports.iter().map(|r| r.addr).collect();
        for a in &racy_addrs {
            prop_assert!(
                reported_addrs.contains(a),
                "missed racy address {a:#x}; reports: {reports:?}"
            );
        }
    }

    /// The epoch fast path is a drop-in replacement, not an
    /// approximation: on the same trace it must produce the identical
    /// report stream, suppression count, and cap-drop count as the
    /// vector-clock reference backend — with and without adhoc-sync
    /// annotations in play.
    #[test]
    fn epoch_backend_matches_reference(threads in program_strategy(), seed in 0u64..64) {
        let (m, main) = build(&threads);
        let mut sink = VecSink::default();
        let mut sched = RandomScheduler::new(seed);
        let vm = Vm::new(&m, main, ProgramInput::empty(), RunConfig::default());
        let _ = vm.run(&mut sched, &mut sink);

        let analyze = |backend: HbBackend, annotations: Vec<HbAnnotation>| {
            let mut det = HbDetector::new(HbConfig {
                backend,
                annotations,
                ..HbConfig::default()
            });
            for ev in &sink.events {
                use owl_vm::TraceSink as _;
                det.on_event(ev);
            }
            let counts = (det.suppressed(), det.reports_dropped());
            (det.finish(&m), counts)
        };

        let (ref_reports, ref_counts) = analyze(HbBackend::Reference, Vec::new());
        let (epoch_reports, epoch_counts) = analyze(HbBackend::Epoch, Vec::new());
        prop_assert_eq!(&epoch_reports, &ref_reports);
        prop_assert_eq!(epoch_counts, ref_counts);

        // Annotate the first discovered pair as adhoc sync and re-run:
        // the suppression path must agree as exactly as detection did.
        if let Some(r) = ref_reports.first() {
            let key = r.key();
            let ann = vec![HbAnnotation { write_site: key.0, read_site: key.1 }];
            let (ref_reports, ref_counts) = analyze(HbBackend::Reference, ann.clone());
            let (epoch_reports, epoch_counts) = analyze(HbBackend::Epoch, ann);
            prop_assert_eq!(&epoch_reports, &ref_reports);
            prop_assert_eq!(epoch_counts, ref_counts);
        }
    }
}
