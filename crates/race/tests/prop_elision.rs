//! Property test: the check-elision pre-pass is sound and invisible.
//!
//! Random concurrent programs (the same generator shape as
//! `prop_hb.rs`: threads mixing locked and unlocked accesses to a
//! handful of globals) are executed twice under the same seed — once
//! plain and once with the elision map installed in the VM, so the
//! second trace is identical except for `no_shadow` stamps. Required
//! agreement:
//!
//! * **invisible** — the epoch detector on the stamped trace produces
//!   exactly the reference (vector-clock) detector's report stream,
//!   suppression count, and cap-drop count on the unstamped trace;
//! * **sound** — no access site the reference backend reports as racy
//!   is ever in the elided set.

use owl_ir::analysis::ElisionMap;
use owl_ir::{FuncId, ModuleBuilder, Type};
use owl_race::{HbBackend, HbConfig, HbDetector};
use owl_vm::{ProgramInput, RandomScheduler, RunConfig, TraceEvent, VecSink, Vm};
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Clone, Debug)]
enum Action {
    /// Unlocked access to global `g` (write if `w`).
    Plain {
        g: usize,
        w: bool,
    },
    /// Lock-protected accesses.
    Locked {
        body: Vec<(usize, bool)>,
    },
    Yield,
}

fn action_strategy(globals: usize) -> impl Strategy<Value = Action> {
    prop_oneof![
        (0..globals, any::<bool>()).prop_map(|(g, w)| Action::Plain { g, w }),
        prop::collection::vec((0..globals, any::<bool>()), 1..3)
            .prop_map(|body| Action::Locked { body }),
        Just(Action::Yield),
    ]
}

fn program_strategy() -> impl Strategy<Value = Vec<Vec<Action>>> {
    prop::collection::vec(
        prop::collection::vec(action_strategy(3), 1..6),
        2..4, // threads
    )
}

fn build(threads: &[Vec<Action>]) -> (owl_ir::Module, FuncId) {
    let mut mb = ModuleBuilder::new("prop-elision");
    let globals: Vec<_> = (0..3)
        .map(|i| mb.global(format!("g{i}"), 1, Type::I64))
        .collect();
    let mutex = mb.global("m", 1, Type::I64);
    let fns: Vec<FuncId> = (0..threads.len())
        .map(|i| mb.declare_func(format!("t{i}"), 1))
        .collect();
    for (f, actions) in fns.iter().zip(threads) {
        let mut b = mb.build_func(*f);
        for a in actions {
            match a {
                Action::Plain { g, w } => {
                    let addr = b.global_addr(globals[*g]);
                    if *w {
                        b.store(addr, 1);
                    } else {
                        b.load(addr, Type::I64);
                    }
                }
                Action::Locked { body } => {
                    let la = b.global_addr(mutex);
                    b.lock(la);
                    for (g, w) in body {
                        let addr = b.global_addr(globals[*g]);
                        if *w {
                            b.store(addr, 2);
                        } else {
                            b.load(addr, Type::I64);
                        }
                    }
                    b.unlock(la);
                }
                Action::Yield => {
                    b.yield_now();
                }
            }
        }
        b.ret(None);
    }
    let main = mb.declare_func("main", 0);
    {
        let mut b = mb.build_func(main);
        let tids: Vec<_> = fns.iter().map(|&f| b.thread_create(f, 0)).collect();
        for t in tids {
            b.thread_join(t);
        }
        b.ret(None);
    }
    (mb.finish(), main)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn elision_is_sound_and_invisible(threads in program_strategy(), seed in 0u64..64) {
        let (m, main) = build(&threads);
        let elision = ElisionMap::analyze(&m, main);
        let elided = Arc::new(elision.elided_set());

        // Same seed → same schedule → identical traces modulo stamps.
        let run = |stamp: bool| {
            let mut sink = VecSink::default();
            let mut sched = RandomScheduler::new(seed);
            let mut vm = Vm::new(&m, main, ProgramInput::empty(), RunConfig::default());
            if stamp {
                vm = vm.with_elided_sites(Arc::clone(&elided));
            }
            let _ = vm.run(&mut sched, &mut sink);
            sink.events
        };
        let plain = run(false);
        let marked = run(true);
        prop_assert_eq!(plain.len(), marked.len(), "stamping changed the schedule");

        let analyze = |events: &[TraceEvent], backend: HbBackend| {
            let mut det = HbDetector::new(HbConfig { backend, ..HbConfig::default() });
            for ev in events {
                use owl_vm::TraceSink as _;
                det.on_event(ev);
            }
            let counts = (det.suppressed(), det.reports_dropped());
            (det.finish(&m), counts)
        };

        // Invisible: epoch on the stamped trace must equal the
        // (always un-elided) reference on the plain trace.
        let (ref_reports, ref_counts) = analyze(&plain, HbBackend::Reference);
        let (epoch_reports, epoch_counts) = analyze(&marked, HbBackend::Epoch);
        prop_assert_eq!(&epoch_reports, &ref_reports);
        prop_assert_eq!(epoch_counts, ref_counts);

        // Sound: nothing the oracle reports as racy was elided.
        for r in &ref_reports {
            let (w, rd) = r.key();
            prop_assert!(
                !elided.contains(&w),
                "racy write site {w:?} was elided (report {r:?})"
            );
            prop_assert!(
                !elided.contains(&rd),
                "racy read site {rd:?} was elided (report {r:?})"
            );
        }
    }
}
