//! ConSeq-style consequence analysis (related-work baseline).
//!
//! ConSeq detects harmful concurrency bugs by analyzing failure
//! consequences, but its key assumption is that bugs and their failure
//! sites sit within a *short* control/data-flow distance — typically
//! the same function — and it does not track control dependences
//! inter-procedurally. The paper argues (§9, finding II) that
//! concurrency *attacks* violate this assumption: 7 of the 10
//! reproduced attacks have bug and vulnerability site in different
//! functions, often connected through control flow.
//!
//! This module implements that regime faithfully — intra-procedural,
//! data-flow-only — so the benches can show exactly which attacks it
//! misses.

use crate::vuln::{DepKind, VulnReport};
use owl_ir::analysis::DefUse;
use owl_ir::{Inst, InstId, InstRef, Module, Operand, VulnClass};
use std::collections::HashSet;

/// Intra-procedural, data-flow-only consequence analyzer.
#[derive(Debug)]
pub struct ConseqAnalyzer<'m> {
    module: &'m Module,
}

impl<'m> ConseqAnalyzer<'m> {
    /// Creates an analyzer over `module`.
    pub fn new(module: &'m Module) -> Self {
        ConseqAnalyzer { module }
    }

    /// Analyzes forward from the corrupted load `start`, staying inside
    /// its function and following data flow only.
    pub fn analyze(&self, start: InstRef) -> Vec<VulnReport> {
        let func = self.module.func(start.func);
        if !func.is_internal {
            return Vec::new();
        }
        let du = DefUse::new(func);
        let mut corrupted: HashSet<InstId> = HashSet::new();
        corrupted.insert(start.inst);
        let mut work = vec![start.inst];
        let mut reports = Vec::new();
        let mut reported: HashSet<InstId> = HashSet::new();
        while let Some(d) = work.pop() {
            for &user in du.uses(d) {
                let inst = func.inst(user);
                // Report vulnerable sites whose relevant operand is
                // corrupted.
                let hit = match inst {
                    Inst::Load { addr, .. } | Inst::Store { addr, .. } => {
                        matches!(addr, Operand::Value(v) if corrupted.contains(v))
                            .then_some(VulnClass::NullDeref)
                    }
                    _ if inst.is_explicit_vuln_site() => inst.vuln_class(),
                    Inst::Call {
                        callee: owl_ir::Callee::Indirect(p),
                        ..
                    } => matches!(p, Operand::Value(v) if corrupted.contains(v))
                        .then_some(VulnClass::NullDeref),
                    _ => None,
                };
                if let Some(class) = hit {
                    if reported.insert(user) {
                        reports.push(VulnReport {
                            site: InstRef::new(start.func, user),
                            class,
                            dep: DepKind::DataDep,
                            source: start,
                            branches: Vec::new(),
                            path_branches: Vec::new(),
                            chain: vec![start, InstRef::new(start.func, user)],
                        });
                    }
                }
                if inst.has_result() && corrupted.insert(user) {
                    work.push(user);
                }
            }
        }
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_ir::{ModuleBuilder, Type};

    #[test]
    fn same_function_data_flow_found() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global("g", 1, Type::I64);
        let f = mb.declare_func("f", 0);
        let (load, site);
        {
            let mut b = mb.build_func(f);
            let a = b.global_addr(g);
            load = b.load(a, Type::I64);
            site = b.exec(load);
            b.ret(None);
        }
        let m = mb.finish();
        let an = ConseqAnalyzer::new(&m);
        let reports = an.analyze(InstRef::new(f, load));
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].site.inst, site);
        assert_eq!(reports[0].class, VulnClass::ExecOp);
    }

    #[test]
    fn cross_function_attack_missed() {
        // Corrupted value escapes through a call: ConSeq regime stops
        // at the function boundary.
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global("g", 1, Type::I64);
        let sink = mb.declare_func("sink", 1);
        let f = mb.declare_func("f", 0);
        {
            let mut b = mb.build_func(sink);
            b.exec(Operand::Param(0));
            b.ret(None);
        }
        let load;
        {
            let mut b = mb.build_func(f);
            let a = b.global_addr(g);
            load = b.load(a, Type::I64);
            b.call(sink, vec![load.into()]);
            b.ret(None);
        }
        let m = mb.finish();
        let an = ConseqAnalyzer::new(&m);
        let reports = an.analyze(InstRef::new(f, load));
        assert!(reports.is_empty(), "{reports:?}");
    }

    #[test]
    fn control_dependent_attack_missed() {
        // Libsafe-style control dependence is invisible to pure data
        // flow.
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global("dying", 1, Type::I64);
        let f = mb.declare_func("f", 0);
        let load;
        {
            let mut b = mb.build_func(f);
            let a = b.global_addr(g);
            load = b.load(a, Type::I64);
            let yes = b.block();
            let no = b.block();
            b.br(load, yes, no);
            b.switch_to(yes);
            b.memcopy(a, a, 64); // guarded by corrupted branch
            b.jmp(no);
            b.switch_to(no);
            b.ret(None);
        }
        let m = mb.finish();
        let an = ConseqAnalyzer::new(&m);
        let reports = an.analyze(InstRef::new(f, load));
        assert!(reports.is_empty(), "{reports:?}");
    }
}
