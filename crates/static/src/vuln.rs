//! The static bug-to-attack vulnerability analyzer — Algorithm 1 of the
//! paper (§6.1).
//!
//! Starting from the corrupted load of a (verified) race report and its
//! dynamic call stack, the analyzer performs an inter-procedural
//! forward **data and control** flow analysis to discover whether the
//! corruption can reach one of the five vulnerable-site classes
//! (§3.2). The output — the propagation chain and the corrupted branch
//! instructions that gate the site — is the *vulnerable input hint*
//! developers (and the dynamic vulnerability verifier) use to construct
//! attack inputs.
//!
//! Design decisions carried over from the paper:
//!
//! * **Call-stack-guided traversal**: after the function containing the
//!   corrupted load is analyzed, the analyzer pops the dynamic call
//!   stack and continues in each caller from the recorded call site,
//!   treating the call's result as corrupted when the callee's return
//!   value was (data- or control-) corrupted. This is what makes the
//!   analysis scale while still crossing function boundaries — the
//!   study found bugs and attacks share call-stack prefixes (§3.2).
//! * **Memory-aware propagation** (extension over the paper): the
//!   paper's OWL tracks corruption through SSA virtual registers only
//!   and leans on runtime-observed addresses to compensate (§6.1).
//!   This analyzer additionally consults a flow-insensitive Andersen
//!   points-to solution ([`owl_ir::analysis::PointsTo`]): a store of a
//!   corrupted value taints the abstract locations its address may
//!   point to, and loads that may read a tainted location become
//!   corruption sources themselves (*relay loads*), so corruption
//!   survives a round trip through the heap or globals. Disable with
//!   [`VulnConfig::points_to`] to recover the register-only regime.
//! * **Memoized function summaries**: callee subtrees are walked once
//!   per (callee, corrupted-params, control) key and replayed from a
//!   [`SummaryCache`] thereafter — across reports and across worker
//!   threads — and the points-to-refined call graph lets the walk
//!   ascend into *callers* when no dynamic call stack is available
//!   (whole-program mode). Disable with [`VulnConfig::summaries`].
//! * **Control-dependence tracking**: a vulnerable site that executes
//!   under a corrupted branch is reported `CTRL_DEP` even when its
//!   operands are clean — the Libsafe attack (Figure 1/5) is exactly
//!   this shape.

use crate::summary::{FuncSummary, SummaryCache, SummaryKey, SummaryReport};
use owl_ir::analysis::{AbsLoc, CallGraph, FuncAnalysis, PointsTo};
use owl_ir::{Callee, FuncId, Inst, InstId, InstRef, Module, Operand, VulnClass};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// How the corruption reaches the vulnerable site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DepKind {
    /// The site's operand is data-dependent on the corrupted load.
    DataDep,
    /// The site is control-dependent on a corrupted branch.
    CtrlDep,
}

impl std::fmt::Display for DepKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DepKind::DataDep => f.write_str("DATA_DEP"),
            DepKind::CtrlDep => f.write_str("CTRL_DEP"),
        }
    }
}

/// One potential bug-to-attack propagation: the vulnerable input hint.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VulnReport {
    /// The vulnerable site reached.
    pub site: InstRef,
    /// Which of the five classes the site belongs to.
    pub class: VulnClass,
    /// Dependence kind.
    pub dep: DepKind,
    /// The corrupted load the analysis started from.
    pub source: InstRef,
    /// Corrupted branch instructions gating the site — the concrete
    /// branches an input must satisfy to trigger the attack.
    pub branches: Vec<InstRef>,
    /// *All* branches the site is (transitively) control-dependent on
    /// within its function — corrupted or not. These are the branches
    /// the dynamic verifier watches and the input synthesizer solves;
    /// input-dependent gates (e.g. "is this a PHP request?") show up
    /// here even though no corruption flows through them.
    pub path_branches: Vec<InstRef>,
    /// Data-propagation chain from source toward the site (IR refs).
    pub chain: Vec<InstRef>,
}

/// Analyzer configuration (the ablation knobs map to the paper's design
/// decisions).
#[derive(Clone, Debug)]
pub struct VulnConfig {
    /// Which site classes to report.
    pub classes: Vec<VulnClass>,
    /// Maximum call depth descended from the start function.
    pub max_call_depth: usize,
    /// Walk the dynamic call stack upward (§4.1). Disabling confines
    /// the analysis to the function containing the corrupted load and
    /// its callees.
    pub follow_call_stack: bool,
    /// Track control dependences. Disabling reduces the analyzer to
    /// pure data-flow (the ConSeq-style regime).
    pub track_control: bool,
    /// Propagate corruption through memory using the Andersen
    /// points-to solution, and resolve indirect-call descents from it.
    /// Disabling recovers the paper's register-only regime.
    pub points_to: bool,
    /// Memoize per-function corruption summaries and ascend into
    /// callers via the call graph when no dynamic call stack is
    /// available (whole-program mode).
    pub summaries: bool,
}

impl Default for VulnConfig {
    fn default() -> Self {
        VulnConfig {
            classes: vec![
                VulnClass::MemoryOp,
                VulnClass::NullDeref,
                VulnClass::PrivilegeOp,
                VulnClass::FileOp,
                VulnClass::ExecOp,
            ],
            max_call_depth: 8,
            follow_call_stack: true,
            track_control: true,
            points_to: true,
            summaries: true,
        }
    }
}

/// Performance counters for one analysis (Table 3's analysis-cost
/// column is measured over these runs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VulnStats {
    /// Instructions visited.
    pub insts_visited: u64,
    /// Function bodies entered (including re-entries).
    pub funcs_entered: u64,
}

/// The analyzer. Holds per-function analysis caches so repeated queries
/// over the same module stay cheap.
#[derive(Debug)]
pub struct VulnAnalyzer<'m> {
    module: &'m Module,
    config: VulnConfig,
    fa_cache: HashMap<FuncId, FuncAnalysis>,
    points_to: Option<Arc<PointsTo>>,
    callgraph: Option<Arc<CallGraph>>,
    summaries: Option<Arc<SummaryCache>>,
    /// Summary keys currently being computed (recursion-cycle guard).
    in_progress: HashSet<SummaryKey>,
}

/// Where to start traversal inside a function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Start {
    /// From the entry block.
    Entry,
    /// From the instruction *after* the given one.
    After(InstId),
}

#[derive(Debug)]
struct Walk {
    crpt: HashSet<InstRef>,
    parent: HashMap<InstRef, InstRef>,
    reports: Vec<VulnReport>,
    reported: HashSet<(InstRef, DepKind)>,
    visited: HashSet<(FuncId, Option<InstId>, u32, bool)>,
    stats: VulnStats,
    source: InstRef,
    /// Abstract locations tainted by stores of corrupted values, with
    /// the tainting store as provenance for relay-load chains.
    tainted: BTreeMap<AbsLoc, InstRef>,
    /// Relay loads already promoted to corruption sources.
    relays: HashSet<InstRef>,
}

impl Walk {
    fn new(source: InstRef) -> Self {
        Walk {
            crpt: HashSet::new(),
            parent: HashMap::new(),
            reports: Vec::new(),
            reported: HashSet::new(),
            visited: HashSet::new(),
            stats: VulnStats::default(),
            source,
            tainted: BTreeMap::new(),
            relays: HashSet::new(),
        }
    }
}

/// Whether `op` is corrupted in the current context.
fn corrupted_op(
    walk: &Walk,
    func_id: FuncId,
    crpt_params: u32,
    here: InstRef,
    op: &Operand,
) -> Option<InstRef> {
    match op {
        Operand::Value(v) => {
            let r = InstRef::new(func_id, *v);
            walk.crpt.contains(&r).then_some(r)
        }
        Operand::Param(p) => {
            if crpt_params & (1u32 << (p % 32)) != 0 {
                Some(here) // provenance collapses to the using inst
            } else {
                None
            }
        }
        Operand::Const(_) => None,
    }
}

impl<'m> VulnAnalyzer<'m> {
    /// Creates an analyzer with the given configuration, building the
    /// points-to solution, call graph, and summary cache it demands.
    pub fn new(module: &'m Module, config: VulnConfig) -> Self {
        Self::with_shared(module, config, None, None, None)
    }

    /// Analyzer with default configuration.
    pub fn with_defaults(module: &'m Module) -> Self {
        Self::new(module, VulnConfig::default())
    }

    /// Creates an analyzer that reuses pre-computed module-level state:
    /// the pipeline solves points-to once, refines one call graph and
    /// allocates one summary cache, then hands the `Arc`s to every
    /// per-report (and per-worker) analyzer. Pieces the configuration
    /// asks for but the caller did not supply are built here; pieces
    /// the configuration disables are dropped. One summary cache must
    /// not be shared between analyzers with different configurations —
    /// summaries record configuration-dependent reports.
    pub fn with_shared(
        module: &'m Module,
        config: VulnConfig,
        points_to: Option<Arc<PointsTo>>,
        callgraph: Option<Arc<CallGraph>>,
        summaries: Option<Arc<SummaryCache>>,
    ) -> Self {
        let points_to = config
            .points_to
            .then(|| points_to.unwrap_or_else(|| Arc::new(PointsTo::new(module))));
        let callgraph = config.summaries.then(|| {
            callgraph.unwrap_or_else(|| {
                Arc::new(match &points_to {
                    Some(p) => CallGraph::with_points_to(module, p),
                    None => CallGraph::new(module),
                })
            })
        });
        let summaries = config
            .summaries
            .then(|| summaries.unwrap_or_else(|| Arc::new(SummaryCache::new())));
        VulnAnalyzer {
            module,
            config,
            fa_cache: HashMap::new(),
            points_to,
            callgraph,
            summaries,
            in_progress: HashSet::new(),
        }
    }

    /// The shared summary cache, when summaries are enabled.
    pub fn summary_cache(&self) -> Option<&Arc<SummaryCache>> {
        self.summaries.as_ref()
    }

    /// The points-to solution, when memory-aware propagation is on.
    pub fn points_to(&self) -> Option<&Arc<PointsTo>> {
        self.points_to.as_ref()
    }

    fn fa(&mut self, f: FuncId) -> &FuncAnalysis {
        let module = self.module;
        self.fa_cache
            .entry(f)
            .or_insert_with(|| FuncAnalysis::new(module, f))
    }

    /// Runs Algorithm 1 from the corrupted load `start` with its dynamic
    /// call stack (`call_stack`: call sites, outermost first). Returns
    /// the vulnerable input hints plus traversal statistics.
    pub fn analyze(
        &mut self,
        start: InstRef,
        call_stack: &[InstRef],
    ) -> (Vec<VulnReport>, VulnStats) {
        let mut walk = Walk::new(start);
        walk.crpt.insert(start);
        let mut ret_corrupted = self.do_detect(
            &mut walk,
            start.func,
            Start::After(start.inst),
            0,
            false,
            &[],
            0,
        );
        if self.config.follow_call_stack {
            if call_stack.is_empty() {
                // Whole-program mode: no dynamic stack was recorded, so
                // ascend through every call site the (points-to-refined)
                // call graph says may have invoked the start function.
                if ret_corrupted {
                    self.caller_walk(&mut walk, start.func, 0);
                }
            } else {
                // Pop the dynamic call stack from innermost caller
                // outward.
                for call_site in call_stack.iter().rev() {
                    if ret_corrupted {
                        // The callee's return value is corrupted: taint
                        // the call instruction in the caller.
                        walk.crpt.insert(*call_site);
                        walk.parent.entry(*call_site).or_insert(start);
                    }
                    ret_corrupted = self.do_detect(
                        &mut walk,
                        call_site.func,
                        Start::After(call_site.inst),
                        0,
                        false,
                        &[],
                        0,
                    );
                }
            }
        }
        self.relay_fixpoint(&mut walk);
        let mut reports = walk.reports;
        let stats = walk.stats;
        for r in &mut reports {
            r.path_branches = self.path_branches(r.site);
        }
        (reports, stats)
    }

    /// All branches `site` is transitively control-dependent on within
    /// its own function.
    fn path_branches(&mut self, site: InstRef) -> Vec<InstRef> {
        let func = self.module.func(site.func);
        if !func.is_internal {
            return Vec::new();
        }
        let fa = self.fa(site.func).clone();
        let func = self.module.func(site.func);
        let mut out = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        let mut work = vec![fa.ctrl.block_of(site.inst)];
        while let Some(b) = work.pop() {
            for dep in fa.ctrl.block_deps(b) {
                let term = func.blocks[dep.index()].terminator();
                let r = InstRef::new(site.func, term);
                if seen.insert(r) {
                    out.push(r);
                    work.push(*dep);
                }
            }
        }
        out
    }

    /// Traverses `func` from `start`, propagating corruption. Returns
    /// whether the function's return value is corrupted (data or
    /// control).
    #[allow(clippy::too_many_arguments)]
    fn do_detect(
        &mut self,
        walk: &mut Walk,
        func_id: FuncId,
        start: Start,
        crpt_params: u32,
        ctrl_dep: bool,
        ctx_branches: &[InstRef],
        depth: usize,
    ) -> bool {
        let func = self.module.func(func_id);
        if !func.is_internal || depth > self.config.max_call_depth {
            return false;
        }
        let start_inst = match start {
            Start::Entry => None,
            Start::After(i) => Some(i),
        };
        if !walk
            .visited
            .insert((func_id, start_inst, crpt_params, ctrl_dep))
        {
            return false;
        }
        walk.stats.funcs_entered += 1;

        // Per-invocation corrupted branch set (the paper's
        // localCrptBrs), seeded empty.
        let mut local_brs: Vec<InstRef> = Vec::new();
        let mut ret_corrupted = false;

        // Traversal order: the remainder of the start instruction's
        // block, then all blocks reachable from it. The function
        // analyses are cached across queries (cloned out so recursion
        // can re-borrow `self`).
        let fa = self.fa(func_id).clone();
        let func = self.module.func(func_id);
        let owner = func.inst_blocks();
        let (start_block, start_idx) = match start {
            Start::Entry => (func.entry(), 0usize),
            Start::After(i) => {
                let b = owner[i.index()];
                let pos = func.blocks[b.index()]
                    .insts
                    .iter()
                    .position(|&x| x == i)
                    .map(|p| p + 1)
                    .unwrap_or(0);
                (b, pos)
            }
        };
        let mut block_queue = vec![start_block];
        let mut seen_blocks: HashSet<owl_ir::BlockId> = HashSet::new();
        seen_blocks.insert(start_block);
        let mut qi = 0;
        while qi < block_queue.len() {
            let b = block_queue[qi];
            qi += 1;
            let from = if b == start_block { start_idx } else { 0 };
            for &iid in &func.blocks[b.index()].insts[from..] {
                let iref = InstRef::new(func_id, iid);
                let inst = func.inst(iid);
                walk.stats.insts_visited += 1;

                // Control-dependence on a locally corrupted branch.
                let ctrl_flag = self.config.track_control
                    && local_brs.iter().any(|br| {
                        br.func == func_id && fa.ctrl.inst_depends_on(func, iid, br.inst)
                    });
                let in_ctrl = ctrl_dep || ctrl_flag;
                let active_branches = |local_brs: &[InstRef]| -> Vec<InstRef> {
                    let mut v: Vec<InstRef> = ctx_branches.to_vec();
                    for br in local_brs {
                        if br.func == func_id && fa.ctrl.inst_depends_on(func, iid, br.inst) {
                            v.push(*br);
                        }
                    }
                    v
                };

                // Operand corruption.
                let mut ops = Vec::new();
                inst.operands(&mut ops);
                let any_corrupt: Option<InstRef> = ops
                    .iter()
                    .find_map(|op| corrupted_op(walk, func_id, crpt_params, iref, op));

                // CTRL_DEP reporting: explicit vulnerable sites (and
                // indirect calls) executing under corrupted control.
                if in_ctrl {
                    if let Some(class) = inst.vuln_class() {
                        let explicit = inst.is_explicit_vuln_site()
                            || matches!(
                                inst,
                                Inst::Call {
                                    callee: Callee::Indirect(_),
                                    ..
                                }
                            );
                        if explicit && self.config.classes.contains(&class) {
                            Self::report(
                                walk,
                                iref,
                                class,
                                DepKind::CtrlDep,
                                active_branches(&local_brs),
                            );
                        }
                    }
                }

                // DATA_DEP reporting + propagation.
                match inst {
                    Inst::Call { callee, args } => {
                        // Corrupted arguments?
                        let mut callee_mask = 0u32;
                        let mut any_arg = None;
                        for (k, a) in args.iter().enumerate() {
                            if let Some(src) = corrupted_op(walk, func_id, crpt_params, iref, a) {
                                callee_mask |= 1u32 << (k % 32);
                                any_arg = Some(src);
                            }
                        }
                        if let Callee::Indirect(p) = callee {
                            if let Some(src) = corrupted_op(walk, func_id, crpt_params, iref, p) {
                                // Calling a corrupted function pointer.
                                if self.config.classes.contains(&VulnClass::NullDeref) {
                                    walk.parent.entry(iref).or_insert(src);
                                    Self::report(
                                        walk,
                                        iref,
                                        VulnClass::NullDeref,
                                        DepKind::DataDep,
                                        active_branches(&local_brs),
                                    );
                                }
                            }
                        }
                        if let Some(src) = any_arg {
                            walk.crpt.insert(iref);
                            walk.parent.entry(iref).or_insert(src);
                        }
                        // Descend into internal callees. Indirect sites
                        // are resolved from the points-to solution when
                        // available; an unresolved site descends nowhere
                        // and the dynamic call stack compensates, as in
                        // the paper.
                        let targets: Vec<FuncId> = match callee {
                            Callee::Direct(f) => vec![*f],
                            Callee::Indirect(_) => self
                                .points_to
                                .as_ref()
                                .and_then(|p| p.resolve_targets(iref))
                                .map(|ts| ts.to_vec())
                                .unwrap_or_default(),
                        };
                        for t in targets {
                            let brs = active_branches(&local_brs);
                            let callee_ret = if self.summaries.is_some() {
                                self.descend_summarized(
                                    walk,
                                    t,
                                    callee_mask,
                                    in_ctrl,
                                    &brs,
                                    iref,
                                    depth,
                                )
                            } else {
                                self.do_detect(
                                    walk,
                                    t,
                                    Start::Entry,
                                    callee_mask,
                                    in_ctrl,
                                    &brs,
                                    depth + 1,
                                )
                            };
                            if callee_ret {
                                walk.crpt.insert(iref);
                            }
                        }
                    }
                    Inst::Ret(v) => {
                        let data_crpt = v.as_ref().is_some_and(|op| {
                            corrupted_op(walk, func_id, crpt_params, iref, op).is_some()
                        });
                        if data_crpt || in_ctrl {
                            ret_corrupted = true;
                        }
                    }
                    Inst::Load { addr, .. } | Inst::AtomicLoad { addr } => {
                        // Dereference of a corrupted pointer.
                        if let Some(src) = corrupted_op(walk, func_id, crpt_params, iref, addr) {
                            if self.config.classes.contains(&VulnClass::NullDeref) {
                                walk.parent.entry(iref).or_insert(src);
                                Self::report(
                                    walk,
                                    iref,
                                    VulnClass::NullDeref,
                                    DepKind::DataDep,
                                    active_branches(&local_brs),
                                );
                            }
                        }
                        if let Some(src) = any_corrupt {
                            if inst.has_result() {
                                walk.crpt.insert(iref);
                                walk.parent.entry(iref).or_insert(src);
                            }
                        }
                    }
                    Inst::Store { addr, val } | Inst::AtomicStore { addr, val } => {
                        // Dereference of a corrupted pointer.
                        if let Some(src) = corrupted_op(walk, func_id, crpt_params, iref, addr) {
                            if self.config.classes.contains(&VulnClass::NullDeref) {
                                walk.parent.entry(iref).or_insert(src);
                                Self::report(
                                    walk,
                                    iref,
                                    VulnClass::NullDeref,
                                    DepKind::DataDep,
                                    active_branches(&local_brs),
                                );
                            }
                        }
                        // A store of a corrupted value taints every
                        // abstract location its address may point to;
                        // relay loads pick the corruption back up in
                        // the post-walk fixpoint.
                        if let Some(src) = corrupted_op(walk, func_id, crpt_params, iref, val) {
                            if let Some(pts) = &self.points_to {
                                walk.parent.entry(iref).or_insert(src);
                                for l in pts.pts_operand(func_id, *addr) {
                                    walk.tainted.entry(*l).or_insert(iref);
                                }
                            }
                        }
                    }
                    _ => {
                        if let Some(class) = inst.vuln_class() {
                            if inst.is_explicit_vuln_site() {
                                if let Some(src) = any_corrupt {
                                    if self.config.classes.contains(&class) {
                                        walk.parent.entry(iref).or_insert(src);
                                        Self::report(
                                            walk,
                                            iref,
                                            class,
                                            DepKind::DataDep,
                                            active_branches(&local_brs),
                                        );
                                    }
                                }
                            }
                        }
                        if let Some(src) = any_corrupt {
                            if inst.has_result() {
                                walk.crpt.insert(iref);
                                walk.parent.entry(iref).or_insert(src);
                            }
                            if matches!(inst, Inst::Br { .. }) && self.config.track_control {
                                local_brs.push(iref);
                                walk.parent.entry(iref).or_insert(src);
                            }
                        }
                        // Branches in corrupted control context gate
                        // their region too (nested guards).
                        if matches!(inst, Inst::Br { .. }) && ctrl_flag {
                            local_brs.push(iref);
                        }
                    }
                }
            }
            // Enqueue successors.
            if let Some(&term) = func.blocks[b.index()].insts.last() {
                for s in func.inst(term).successors() {
                    if seen_blocks.insert(s) {
                        block_queue.push(s);
                    }
                }
            }
        }
        ret_corrupted
    }

    /// Descends into `target` through the summary cache: computes the
    /// callee's summary on first use, then materializes its reports,
    /// memory taints, and return-corruption into the caller's walk.
    #[allow(clippy::too_many_arguments)]
    fn descend_summarized(
        &mut self,
        walk: &mut Walk,
        target: FuncId,
        crpt_params: u32,
        ctrl: bool,
        ctx_branches: &[InstRef],
        call_site: InstRef,
        depth: usize,
    ) -> bool {
        if depth + 1 > self.config.max_call_depth {
            return false;
        }
        let key = SummaryKey {
            func: target,
            crpt_params,
            ctrl,
        };
        let Some((summary, computed)) = self.summary_for(key) else {
            return false;
        };
        if computed {
            // First computation pays the traversal cost; cache hits
            // replay for free — that is the point.
            walk.stats.insts_visited += summary.stats.insts_visited;
            walk.stats.funcs_entered += summary.stats.funcs_entered;
        }
        for (loc, store) in &summary.tainted {
            walk.tainted.entry(*loc).or_insert(*store);
        }
        let prefix = Self::chain_from(walk, call_site);
        for r in &summary.reports {
            if !walk.reported.insert((r.site, r.dep)) {
                continue;
            }
            let mut branches = ctx_branches.to_vec();
            branches.extend(r.branches.iter().copied());
            let mut chain = prefix.clone();
            chain.extend(r.chain.iter().copied());
            // Chains must start at the source or a corrupted gating
            // branch. When no data provenance crosses the call boundary
            // (pure control dependence), re-anchor at the innermost
            // corrupted branch, exactly as `report` does.
            let anchored = chain
                .first()
                .is_some_and(|f| *f == walk.source || branches.contains(f));
            if !anchored {
                let anchor = branches.last().copied().unwrap_or(call_site);
                chain = Self::chain_from(walk, anchor);
                chain.push(r.site);
            }
            walk.reports.push(VulnReport {
                site: r.site,
                class: r.class,
                dep: r.dep,
                source: walk.source,
                branches,
                path_branches: Vec::new(),
                chain,
            });
        }
        summary.ret_corrupted
    }

    /// Returns the summary for `key`, computing and caching it on a
    /// miss, plus whether this call computed it. `None` means the
    /// descent must be skipped conservatively: the key is already being
    /// computed (a recursion cycle) or the mutual-recursion guard
    /// tripped. Cycles are not cached, so a later acyclic context still
    /// computes the full summary.
    fn summary_for(&mut self, key: SummaryKey) -> Option<(Arc<FuncSummary>, bool)> {
        let cache = self.summaries.clone()?;
        if let Some(s) = cache.get(key) {
            return Some((s, false));
        }
        if self.in_progress.contains(&key)
            || self.in_progress.len() > 2 * self.config.max_call_depth
        {
            return None;
        }
        self.in_progress.insert(key);
        // Summaries are context-independent: fresh walk, no caller
        // branches, fresh depth budget. The sentinel source can never
        // equal a real instruction, so sub-chains terminate at the
        // callee's own earliest ancestor.
        let sentinel = InstRef::new(key.func, InstId(u32::MAX));
        let mut sub = Walk::new(sentinel);
        let ret_corrupted = self.do_detect(
            &mut sub,
            key.func,
            Start::Entry,
            key.crpt_params,
            key.ctrl,
            &[],
            0,
        );
        self.in_progress.remove(&key);
        let summary = FuncSummary {
            ret_corrupted,
            reports: sub
                .reports
                .into_iter()
                .map(|r| SummaryReport {
                    site: r.site,
                    class: r.class,
                    dep: r.dep,
                    branches: r.branches,
                    chain: r.chain,
                })
                .collect(),
            tainted: sub.tainted.into_iter().collect(),
            stats: sub.stats,
        };
        Some((cache.insert(key, summary), true))
    }

    /// Ascends from `f` through every call site that may invoke it,
    /// treating each call's result as corrupted — the whole-program
    /// replacement for the dynamic stack walk when no stack was
    /// recorded.
    fn caller_walk(&mut self, walk: &mut Walk, f: FuncId, ascent: usize) {
        if ascent > self.config.max_call_depth {
            return;
        }
        let Some(cg) = self.callgraph.clone() else {
            return;
        };
        for site in cg.sites_calling(f) {
            if !self.module.func(site.func).is_internal {
                continue;
            }
            walk.crpt.insert(site);
            walk.parent.entry(site).or_insert(walk.source);
            let ret = self.do_detect(walk, site.func, Start::After(site.inst), 0, false, &[], 0);
            if ret {
                self.caller_walk(walk, site.func, ascent + 1);
            }
        }
    }

    /// Fixpoint over relay loads: any load whose address may read a
    /// tainted abstract location becomes a corruption source, and the
    /// walk restarts after it (ascending into callers when the relay
    /// corrupts a return value). Monotone in the relay set, so the loop
    /// terminates after at most `#loads` rounds. An *empty* points-to
    /// set deliberately does not relay — it means "no tracked
    /// provenance", and relaying through it would taint every load in
    /// the program.
    fn relay_fixpoint(&mut self, walk: &mut Walk) {
        let Some(pts) = self.points_to.clone() else {
            return;
        };
        let module = self.module;
        loop {
            let mut changed = false;
            for (fi, func) in module.funcs.iter().enumerate() {
                if !func.is_internal {
                    continue;
                }
                let fid = FuncId::from_index(fi);
                for (i, inst) in func.insts.iter().enumerate() {
                    let addr = match inst {
                        Inst::Load { addr, .. } | Inst::AtomicLoad { addr } => *addr,
                        _ => continue,
                    };
                    let iid = InstId::from_index(i);
                    let iref = InstRef::new(fid, iid);
                    if walk.relays.contains(&iref) || walk.crpt.contains(&iref) {
                        continue;
                    }
                    let Some(store) = pts
                        .pts_operand(fid, addr)
                        .iter()
                        .find_map(|l| walk.tainted.get(l).copied())
                    else {
                        continue;
                    };
                    walk.relays.insert(iref);
                    walk.crpt.insert(iref);
                    walk.parent.entry(iref).or_insert(store);
                    changed = true;
                    let ret = self.do_detect(walk, fid, Start::After(iid), 0, false, &[], 0);
                    if ret && self.config.follow_call_stack {
                        self.caller_walk(walk, fid, 0);
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    fn report(
        walk: &mut Walk,
        site: InstRef,
        class: VulnClass,
        dep: DepKind,
        branches: Vec<InstRef>,
    ) {
        if !walk.reported.insert((site, dep)) {
            return;
        }
        // Reconstruct the propagation chain via provenance. For pure
        // control dependence the site itself has no data provenance, so
        // anchor the walk at the innermost corrupted branch instead.
        let anchor = if walk.parent.contains_key(&site) || site == walk.source {
            site
        } else {
            branches.last().copied().unwrap_or(site)
        };
        let mut chain = Self::chain_from(walk, anchor);
        if anchor != site {
            chain.push(site);
        }
        walk.reports.push(VulnReport {
            site,
            class,
            dep,
            source: walk.source,
            branches,
            path_branches: Vec::new(),
            chain,
        });
    }

    /// Provenance chain from the walk source (or the earliest known
    /// ancestor) down to `anchor`, inclusive.
    fn chain_from(walk: &Walk, anchor: InstRef) -> Vec<InstRef> {
        let mut chain = Vec::new();
        let mut cur = Some(anchor);
        let mut guard = 0;
        while let Some(c) = cur {
            chain.push(c);
            if c == walk.source || guard > 64 {
                break;
            }
            guard += 1;
            let next = walk.parent.get(&c).copied();
            if next == Some(c) {
                break; // parameter provenance collapses to a self-loop
            }
            cur = next;
        }
        chain.reverse();
        chain
    }

    /// The module being analyzed.
    pub fn module(&self) -> &Module {
        self.module
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_ir::{ModuleBuilder, Pred, Type};

    /// The Libsafe shape (Figure 1): `stack_check` reads the racy
    /// `dying` flag and returns 0 early; the caller `libsafe_strcpy`
    /// performs the copy when the check returns 0.
    fn libsafe_shape() -> (Module, InstRef, Vec<InstRef>, InstId) {
        let mut mb = ModuleBuilder::new("libsafe");
        let dying = mb.global("dying", 1, Type::I64);
        let stack_check = mb.declare_func("stack_check", 1);
        let strcpy_wrap = mb.declare_func("libsafe_strcpy", 2);
        let racy_load;
        {
            let mut b = mb.build_func(stack_check);
            b.loc("util.c", 145);
            let a = b.global_addr(dying);
            racy_load = b.load(a, Type::I64);
            let bypass = b.block();
            let check = b.block();
            b.br(racy_load, bypass, check);
            b.switch_to(bypass);
            b.ret(Some(Operand::Const(0)));
            b.switch_to(check);
            b.loc("util.c", 150);
            b.ret(Some(Operand::Const(1)));
        }
        let memcpy_site;
        let call_site;
        {
            let mut b = mb.build_func(strcpy_wrap);
            b.loc("intercept.c", 164);
            call_site = b.call(stack_check, vec![Operand::Param(0)]);
            let ok = b.cmp(Pred::Eq, call_site, 0);
            let copy = b.block();
            let done = b.block();
            b.br(ok, copy, done);
            b.switch_to(copy);
            b.loc("intercept.c", 165);
            memcpy_site = b.memcopy(Operand::Param(0), Operand::Param(1), 64);
            b.jmp(done);
            b.switch_to(done);
            b.ret(None);
        }
        let m = mb.finish();
        let start = InstRef::new(stack_check, racy_load);
        let stack = vec![InstRef::new(strcpy_wrap, call_site)];
        (m, start, stack, memcpy_site)
    }

    #[test]
    fn libsafe_ctrl_dep_detected_across_functions() {
        let (m, start, stack, memcpy_site) = libsafe_shape();
        let mut an = VulnAnalyzer::with_defaults(&m);
        let (reports, stats) = an.analyze(start, &stack);
        let hit = reports
            .iter()
            .find(|r| r.site.inst == memcpy_site && r.class == VulnClass::MemoryOp)
            .unwrap_or_else(|| panic!("memcopy not reported: {reports:?}"));
        assert_eq!(hit.dep, DepKind::CtrlDep);
        assert!(!hit.branches.is_empty(), "input hint must carry branches");
        assert!(stats.insts_visited > 0);
    }

    #[test]
    fn without_call_stack_walk_the_attack_is_missed() {
        let (m, start, stack, memcpy_site) = libsafe_shape();
        let mut an = VulnAnalyzer::new(
            &m,
            VulnConfig {
                follow_call_stack: false,
                ..VulnConfig::default()
            },
        );
        let (reports, _) = an.analyze(start, &stack);
        assert!(
            !reports.iter().any(|r| r.site.inst == memcpy_site),
            "caller-side site should be invisible without the stack walk"
        );
    }

    #[test]
    fn without_control_tracking_the_attack_is_missed() {
        let (m, start, stack, memcpy_site) = libsafe_shape();
        let mut an = VulnAnalyzer::new(
            &m,
            VulnConfig {
                track_control: false,
                ..VulnConfig::default()
            },
        );
        let (reports, _) = an.analyze(start, &stack);
        assert!(
            !reports.iter().any(|r| r.site.inst == memcpy_site),
            "control-dependent site requires control tracking"
        );
    }

    #[test]
    fn data_dep_null_deref_detected() {
        // f_op shape (Figure 2): corrupted pointer flows into an
        // indirect call.
        let mut mb = ModuleBuilder::new("uselib");
        let fop = mb.global("f_op", 1, Type::FuncPtr);
        let msync = mb.declare_func("msync_interval", 0);
        let racy_load;
        let call_site;
        {
            let mut b = mb.build_func(msync);
            b.loc("msync.c", 10);
            let a = b.global_addr(fop);
            racy_load = b.load(a, Type::FuncPtr);
            let yes = b.block();
            let no = b.block();
            b.br(racy_load, yes, no);
            b.switch_to(yes);
            b.loc("msync.c", 14);
            call_site = b.call_indirect(racy_load, vec![]);
            b.jmp(no);
            b.switch_to(no);
            b.ret(None);
        }
        let m = mb.finish();
        let mut an = VulnAnalyzer::with_defaults(&m);
        let (reports, _) = an.analyze(InstRef::new(msync, racy_load), &[]);
        // The site is both data-dependent (corrupted pointer called) and
        // control-dependent (guarded by the corrupted branch); the
        // algorithm reports each dependence kind once.
        let data = reports
            .iter()
            .find(|r| r.site.inst == call_site && r.dep == DepKind::DataDep)
            .unwrap_or_else(|| panic!("indirect call not reported DATA_DEP: {reports:?}"));
        assert_eq!(data.class, VulnClass::NullDeref);
        assert_eq!(data.chain.first(), Some(&InstRef::new(msync, racy_load)));
        assert!(
            reports
                .iter()
                .any(|r| r.site.inst == call_site && r.dep == DepKind::CtrlDep),
            "guarded site also reported CTRL_DEP: {reports:?}"
        );
    }

    #[test]
    fn data_dep_through_callee_args() {
        // Corrupted value passed as an argument reaches a privilege op
        // inside the callee.
        let mut mb = ModuleBuilder::new("priv");
        let level = mb.global("level", 1, Type::I64);
        let do_set = mb.declare_func("do_set", 1);
        let outer = mb.declare_func("outer", 0);
        let priv_site;
        {
            let mut b = mb.build_func(do_set);
            priv_site = b.set_privilege(Operand::Param(0));
            b.ret(None);
        }
        let racy_load;
        {
            let mut b = mb.build_func(outer);
            let a = b.global_addr(level);
            racy_load = b.load(a, Type::I64);
            b.call(do_set, vec![racy_load.into()]);
            b.ret(None);
        }
        let m = mb.finish();
        let mut an = VulnAnalyzer::with_defaults(&m);
        let (reports, _) = an.analyze(InstRef::new(outer, racy_load), &[]);
        let hit = reports
            .iter()
            .find(|r| r.site == InstRef::new(do_set, priv_site))
            .unwrap_or_else(|| panic!("privilege op not reported: {reports:?}"));
        assert_eq!(hit.class, VulnClass::PrivilegeOp);
        assert_eq!(hit.dep, DepKind::DataDep);
    }

    #[test]
    fn clean_program_produces_no_reports() {
        let mut mb = ModuleBuilder::new("clean");
        let g = mb.global("g", 1, Type::I64);
        let f = mb.declare_func("f", 0);
        let load;
        {
            let mut b = mb.build_func(f);
            let a = b.global_addr(g);
            load = b.load(a, Type::I64);
            b.output(0, load);
            // A vulnerable site NOT dependent on the load:
            b.memcopy(a, a, 1);
            b.ret(None);
        }
        let m = mb.finish();
        let mut an = VulnAnalyzer::with_defaults(&m);
        let (reports, _) = an.analyze(InstRef::new(f, load), &[]);
        assert!(reports.is_empty(), "{reports:?}");
    }

    #[test]
    fn class_filter_respected() {
        let (m, start, stack, _) = libsafe_shape();
        let mut an = VulnAnalyzer::new(
            &m,
            VulnConfig {
                classes: vec![VulnClass::PrivilegeOp],
                ..VulnConfig::default()
            },
        );
        let (reports, _) = an.analyze(start, &stack);
        assert!(reports.is_empty());
    }

    #[test]
    fn recursion_terminates() {
        // Self-recursive function with corrupted arg must not loop.
        let mut mb = ModuleBuilder::new("rec");
        let g = mb.global("g", 1, Type::I64);
        let f = mb.declare_func("f", 1);
        let outer = mb.declare_func("outer", 0);
        {
            let mut b = mb.build_func(f);
            b.call(f, vec![Operand::Param(0)]);
            b.ret(None);
        }
        let load;
        {
            let mut b = mb.build_func(outer);
            let a = b.global_addr(g);
            load = b.load(a, Type::I64);
            b.call(f, vec![load.into()]);
            b.ret(None);
        }
        let m = mb.finish();
        let mut an = VulnAnalyzer::with_defaults(&m);
        let (_, stats) = an.analyze(InstRef::new(outer, load), &[]);
        assert!(stats.funcs_entered < 20);
    }
}
