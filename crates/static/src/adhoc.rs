//! Static adhoc-synchronization detection (paper §5.1).
//!
//! Developers write semaphore-like adhoc synchronizations — one thread
//! busy-waits on a shared flag until another thread sets it. TSan and
//! SKI cannot see the ordering these encode, so they flood reports with
//! benign races. OWL recognizes the pattern *from the race report
//! itself* and emits an annotation that the detector then honours.
//!
//! The paper's procedure, which this module implements:
//!
//! 1. take the race report's read instruction and check it sits in a
//!    loop;
//! 2. run an intra-procedural forward data & control dependency
//!    analysis from the read; if a branch in the propagation chain can
//!    break out of the loop, the read is a candidate busy-wait;
//! 3. check the report's write instruction stores a constant.
//!
//! One refinement (inherited from SyncFinder's definition of busy-wait
//! loops, and necessary to keep the SSDB-style *vulnerable* flag race
//! of Figure 6 out of this bucket): the spin loop must be
//! side-effect-free — no stores to shared memory, no calls, no
//! vulnerable-site intrinsics inside the loop body. A loop that does
//! real work guarded by a racy flag is not a synchronization idiom;
//! it is exactly the shape concurrency attacks hide in.

use owl_ir::analysis::FuncAnalysis;
use owl_ir::{Inst, InstId, InstRef, Module, Operand};
use owl_race::{HbAnnotation, RaceReport};
use std::collections::HashSet;

/// Result of classifying one race report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdhocVerdict {
    /// The report is an adhoc synchronization; annotate this pair.
    AdhocSync(HbAnnotation),
    /// Not an adhoc synchronization (reason recorded for diagnostics).
    NotAdhoc(&'static str),
}

/// Detects adhoc synchronizations in race reports.
#[derive(Debug)]
pub struct AdhocSyncDetector<'m> {
    module: &'m Module,
}

impl<'m> AdhocSyncDetector<'m> {
    /// Creates a detector over `module`.
    pub fn new(module: &'m Module) -> Self {
        AdhocSyncDetector { module }
    }

    /// Classifies one race report.
    pub fn classify(&self, report: &RaceReport) -> AdhocVerdict {
        let Some(read) = report.read_access() else {
            return AdhocVerdict::NotAdhoc("no read side");
        };
        let write = if report.first.is_write {
            &report.first
        } else if report.second.is_write {
            &report.second
        } else {
            return AdhocVerdict::NotAdhoc("no write side");
        };
        // The write must store a constant (flag semantics).
        match self.module.inst(write.site) {
            Inst::Store {
                val: Operand::Const(_),
                ..
            } => {}
            _ => return AdhocVerdict::NotAdhoc("write is not a constant store"),
        }
        let func = self.module.func(read.site.func);
        if !func.is_internal {
            return AdhocVerdict::NotAdhoc("read in external function");
        }
        let fa = FuncAnalysis::new(self.module, read.site.func);
        // (1) The read must sit in a loop.
        let Some(lp) = fa.loops.loop_of_inst(read.site.inst) else {
            return AdhocVerdict::NotAdhoc("read not in a loop");
        };
        let lp = lp.clone();
        // (2) Forward intra-procedural data-dependency closure from the
        // read; some branch in the chain must be able to exit the loop.
        let mut corrupted: HashSet<InstId> = HashSet::new();
        corrupted.insert(read.site.inst);
        let mut work = vec![read.site.inst];
        let mut exiting_branch = false;
        while let Some(d) = work.pop() {
            for &user in fa.defuse.uses(d) {
                if !corrupted.insert(user) {
                    continue;
                }
                if matches!(func.inst(user), Inst::Br { .. })
                    && fa.loops.branch_exits_loop(func, user, &lp)
                {
                    exiting_branch = true;
                }
                work.push(user);
            }
        }
        if !exiting_branch {
            return AdhocVerdict::NotAdhoc("no dependent branch exits the loop");
        }
        // (3, refinement) The loop body must be a pure spin: no stores,
        // calls, frees, or vulnerable intrinsics.
        for b in lp.body.iter() {
            for &i in &func.blocks[b.index()].insts {
                match func.inst(i) {
                    Inst::Store { .. }
                    | Inst::AtomicStore { .. }
                    | Inst::Call { .. }
                    | Inst::Free { .. }
                    | Inst::Malloc { .. }
                    | Inst::MemCopy { .. }
                    | Inst::SetPrivilege { .. }
                    | Inst::FileAccess { .. }
                    | Inst::Exec { .. }
                    | Inst::ThreadCreate { .. }
                    | Inst::Output { .. } => {
                        return AdhocVerdict::NotAdhoc("loop body has side effects")
                    }
                    _ => {}
                }
            }
        }
        AdhocVerdict::AdhocSync(HbAnnotation {
            write_site: write.site,
            read_site: read.site,
        })
    }

    /// Classifies a batch of reports; returns the annotations found and
    /// the indices of reports they came from.
    pub fn detect(&self, reports: &[RaceReport]) -> Vec<(usize, HbAnnotation)> {
        let mut seen: HashSet<(InstRef, InstRef)> = HashSet::new();
        let mut out = Vec::new();
        for (i, r) in reports.iter().enumerate() {
            if let AdhocVerdict::AdhocSync(a) = self.classify(r) {
                if seen.insert((a.write_site, a.read_site)) {
                    out.push((i, a));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_ir::{FuncId, ModuleBuilder, Pred, Type};
    use owl_race::{HbConfig, HbDetector};
    use owl_vm::{ProgramInput, RoundRobin, TraceSink, Vm};

    /// Builds a producer/consumer module. When `spin_pure` is false the
    /// wait loop also does real work (a store), which must disqualify
    /// it.
    fn adhoc_module(spin_pure: bool) -> (Module, FuncId) {
        let mut mb = ModuleBuilder::new("adhoc");
        let data = mb.global("data", 1, Type::I64);
        let ready = mb.global("ready", 1, Type::I64);
        let side = mb.global("side", 1, Type::I64);
        let consumer = mb.declare_func("consumer", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(consumer);
            b.loc("consumer.c", 10);
            let head = b.block();
            let done = b.block();
            b.jmp(head);
            b.switch_to(head);
            let ra = b.global_addr(ready);
            let v = b.load(ra, Type::I64);
            if !spin_pure {
                let sa = b.global_addr(side);
                b.store(sa, 1);
            }
            let c = b.cmp(Pred::Ne, v, 0);
            b.br(c, done, head);
            b.switch_to(done);
            let da = b.global_addr(data);
            b.load(da, Type::I64);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            b.loc("main.c", 20);
            let t = b.thread_create(consumer, 0);
            let da = b.global_addr(data);
            b.store(da, 42);
            let ra = b.global_addr(ready);
            b.store(ra, 1);
            b.thread_join(t);
            b.ret(None);
        }
        (mb.finish(), main)
    }

    fn detect_reports(m: &Module, main: FuncId) -> Vec<RaceReport> {
        let mut det = HbDetector::new(HbConfig::default());
        let mut sched = RoundRobin::new(3);
        let vm = Vm::new(m, main, ProgramInput::empty(), Default::default());
        let _ = vm.run(&mut sched, &mut det);
        // Drain remaining events? (run consumed everything already.)
        let _ = &mut det as &mut dyn TraceSink;
        det.finish(m)
    }

    #[test]
    fn pure_spin_flag_is_adhoc() {
        let (m, main) = adhoc_module(true);
        let reports = detect_reports(&m, main);
        let flag_report = reports
            .iter()
            .find(|r| r.global_name.as_deref() == Some("ready"))
            .expect("flag race");
        let det = AdhocSyncDetector::new(&m);
        match det.classify(flag_report) {
            AdhocVerdict::AdhocSync(a) => {
                assert_eq!(m.func(a.read_site.func).name, "consumer");
                assert_eq!(m.func(a.write_site.func).name, "main");
            }
            other => panic!("expected adhoc sync, got {other:?}"),
        }
    }

    #[test]
    fn impure_spin_loop_is_not_adhoc() {
        let (m, main) = adhoc_module(false);
        let reports = detect_reports(&m, main);
        let flag_report = reports
            .iter()
            .find(|r| r.global_name.as_deref() == Some("ready"))
            .expect("flag race");
        let det = AdhocSyncDetector::new(&m);
        assert_eq!(
            det.classify(flag_report),
            AdhocVerdict::NotAdhoc("loop body has side effects")
        );
    }

    #[test]
    fn straight_line_race_is_not_adhoc() {
        let mut mb = ModuleBuilder::new("plain");
        let g = mb.global("g", 1, Type::I64);
        let w = mb.declare_func("w", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(w);
            let a = b.global_addr(g);
            b.store(a, 1);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t = b.thread_create(w, 0);
            let a = b.global_addr(g);
            b.load(a, Type::I64);
            b.thread_join(t);
            b.ret(None);
        }
        let m = mb.finish();
        let main_id = m.func_by_name("main").unwrap();
        let reports = detect_reports(&m, main_id);
        assert_eq!(reports.len(), 1);
        let det = AdhocSyncDetector::new(&m);
        assert_eq!(
            det.classify(&reports[0]),
            AdhocVerdict::NotAdhoc("read not in a loop")
        );
    }

    #[test]
    fn non_constant_write_is_not_adhoc() {
        // Same spin shape, but the writer stores a computed value.
        let mut mb = ModuleBuilder::new("nc");
        let ready = mb.global("ready", 1, Type::I64);
        let consumer = mb.declare_func("consumer", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(consumer);
            let head = b.block();
            let done = b.block();
            b.jmp(head);
            b.switch_to(head);
            let ra = b.global_addr(ready);
            let v = b.load(ra, Type::I64);
            let c = b.cmp(Pred::Ne, v, 0);
            b.br(c, done, head);
            b.switch_to(done);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t = b.thread_create(consumer, 0);
            let x = b.input(0);
            let y = b.add(x, 1);
            let ra = b.global_addr(ready);
            b.store(ra, y);
            b.thread_join(t);
            b.ret(None);
        }
        let m = mb.finish();
        let main_id = m.func_by_name("main").unwrap();
        let mut det = HbDetector::unannotated();
        let mut sched = RoundRobin::new(3);
        let vm = Vm::new(&m, main_id, ProgramInput::new(vec![1]), Default::default());
        let _ = vm.run(&mut sched, &mut det);
        let reports = det.finish(&m);
        let flag = reports
            .iter()
            .find(|r| r.global_name.as_deref() == Some("ready"))
            .expect("flag race");
        let adet = AdhocSyncDetector::new(&m);
        assert_eq!(
            adet.classify(flag),
            AdhocVerdict::NotAdhoc("write is not a constant store")
        );
    }

    #[test]
    fn batch_detection_dedups() {
        let (m, main) = adhoc_module(true);
        let mut reports = detect_reports(&m, main);
        let extra = reports
            .iter()
            .find(|r| r.global_name.as_deref() == Some("ready"))
            .unwrap()
            .clone();
        reports.push(extra);
        let det = AdhocSyncDetector::new(&m);
        let anns = det.detect(&reports);
        assert_eq!(anns.len(), 1);
    }
}
