//! Memoized per-function corruption summaries.
//!
//! Algorithm 1 re-walks callee bodies once per (function, corrupted
//! parameter mask) pair *per report*. Across the many reports of a
//! pipeline run those walks repeat almost verbatim — the study's
//! observation that bugs and attacks share call-stack prefixes (§3.2)
//! cuts both ways: the analyzer keeps descending into the same handful
//! of callees. A [`FuncSummary`] captures everything a callee
//! contributes to its caller's walk — whether its return value is
//! corrupted, which vulnerable sites its subtree reports, and which
//! abstract memory locations its stores taint — keyed by
//! [`SummaryKey`], so the walk is done once and replayed from the
//! [`SummaryCache`] ever after, including across reports and across
//! the worker threads of a parallel analysis stage.
//!
//! Summaries are **context-independent**: a summary records only
//! callee-local corrupted branches and chains (both expressed as
//! function-qualified [`InstRef`]s), and the caller prepends its own
//! context at materialization time. They are also **depth-independent**
//! — a summary is computed with a fresh depth budget, so a cached
//! subtree can be deeper than `max_call_depth` would allow inline;
//! this only ever adds reports, never loses them.

use crate::vuln::{DepKind, VulnStats};
use owl_ir::analysis::AbsLoc;
use owl_ir::{FuncId, InstRef, VulnClass};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cache key: the callee and the corruption context it is entered
/// with.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SummaryKey {
    /// The function summarized.
    pub func: FuncId,
    /// Bitmask of corrupted parameters (bit `k % 32` for parameter
    /// `k`, matching Algorithm 1's argument masking).
    pub crpt_params: u32,
    /// Whether the call site executes under corrupted control.
    pub ctrl: bool,
}

/// One vulnerable-site report found inside a summarized subtree,
/// stripped of caller context.
#[derive(Clone, Debug, PartialEq)]
pub struct SummaryReport {
    /// The vulnerable site.
    pub site: InstRef,
    /// Site class.
    pub class: VulnClass,
    /// Dependence kind.
    pub dep: DepKind,
    /// Corrupted branches local to the subtree that gate the site.
    pub branches: Vec<InstRef>,
    /// Propagation chain within the subtree.
    pub chain: Vec<InstRef>,
}

/// Everything one function walk contributes to its caller, memoized.
#[derive(Clone, Debug, Default)]
pub struct FuncSummary {
    /// Whether the function's return value is corrupted (data- or
    /// control-).
    pub ret_corrupted: bool,
    /// Reports produced inside the subtree.
    pub reports: Vec<SummaryReport>,
    /// Abstract locations tainted by stores of corrupted values in the
    /// subtree, with the tainting store for provenance (deterministic
    /// order).
    pub tainted: Vec<(AbsLoc, InstRef)>,
    /// Traversal cost of computing the summary (what a cache hit
    /// saves).
    pub stats: VulnStats,
}

/// Thread-safe cross-report summary cache.
///
/// Panic-tolerant by construction: entries are inserted only after a
/// summary is fully computed, so a poisoned lock (a worker panicked
/// mid-insert) still holds consistent data and is recovered rather
/// than propagated.
#[derive(Debug, Default)]
pub struct SummaryCache {
    map: Mutex<HashMap<SummaryKey, Arc<FuncSummary>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SummaryCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn map(&self) -> std::sync::MutexGuard<'_, HashMap<SummaryKey, Arc<FuncSummary>>> {
        self.map.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up a summary, counting the hit or miss.
    pub fn get(&self, key: SummaryKey) -> Option<Arc<FuncSummary>> {
        let found = self.map().get(&key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts a computed summary and returns the shared handle. If a
    /// racing worker inserted the same key first, that copy wins (the
    /// computation is deterministic, so both are identical).
    pub fn insert(&self, key: SummaryKey, summary: FuncSummary) -> Arc<FuncSummary> {
        self.map()
            .entry(key)
            .or_insert_with(|| Arc::new(summary))
            .clone()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of memoized summaries.
    pub fn len(&self) -> usize {
        self.map().len()
    }

    /// Whether the cache holds no summaries.
    pub fn is_empty(&self) -> bool {
        self.map().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(f: u32, mask: u32) -> SummaryKey {
        SummaryKey {
            func: FuncId(f),
            crpt_params: mask,
            ctrl: false,
        }
    }

    #[test]
    fn hit_and_miss_counters() {
        let cache = SummaryCache::new();
        assert!(cache.get(key(0, 1)).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.insert(key(0, 1), FuncSummary::default());
        assert!(cache.get(key(0, 1)).is_some());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // Different mask or ctrl flag is a different entry.
        assert!(cache.get(key(0, 2)).is_none());
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn racing_insert_keeps_first_copy() {
        let cache = SummaryCache::new();
        let a = cache.insert(
            key(1, 0),
            FuncSummary {
                ret_corrupted: true,
                ..FuncSummary::default()
            },
        );
        let b = cache.insert(key(1, 0), FuncSummary::default());
        assert!(Arc::ptr_eq(&a, &b), "first insert wins");
        assert!(b.ret_corrupted);
    }
}
