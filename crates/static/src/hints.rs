//! Report rendering in the paper's formats.
//!
//! Figure 4 shows the call stack OWL starts from; Figure 5 shows the
//! vulnerable input hint: the corrupted branch instructions in IR form
//! with source locations, followed by the vulnerable site location.
//! These renderings are what made the hints "expressive enough to
//! manually infer vulnerable inputs" (§1), so the formats are kept
//! close to the original.

use crate::vuln::{DepKind, VulnReport};
use owl_ir::{inst_with_loc, InstRef, Module};
use std::fmt::Write as _;

/// Renders a call stack in Figure-4 style:
///
/// ```text
/// libsafe_strcpy (intercept.c:151)
/// stack_check (util.c:164)
/// ```
pub fn format_call_stack(module: &Module, site: InstRef, stack: &[InstRef]) -> String {
    let mut out = String::new();
    for frame in stack {
        let _ = writeln!(out, "{}", module.format_frame(*frame));
    }
    let _ = writeln!(out, "{}", module.format_frame(site));
    out
}

/// Renders one vulnerability report in Figure-5 style:
///
/// ```text
/// ---- Ctrl Dependent Vulnerability ----
/// [ %4 ]
/// %4 = br %3, bb1, bb2  ; intercept.c:164
/// Vulnerable Site Location: (intercept.c:165) [memory-op]
/// ```
pub fn format_vuln_report(module: &Module, report: &VulnReport) -> String {
    let mut out = String::new();
    let kind = match report.dep {
        DepKind::CtrlDep => "Ctrl Dependent",
        DepKind::DataDep => "Data Dependent",
    };
    let _ = writeln!(out, "---- {kind} Vulnerability ----");
    if !report.branches.is_empty() {
        let ids: Vec<String> = report
            .branches
            .iter()
            .map(|b| format!("{}", b.inst))
            .collect();
        let _ = writeln!(out, "[ {} ]", ids.join(", "));
        for br in &report.branches {
            let _ = writeln!(out, "{}", inst_with_loc(module, *br));
        }
    }
    let _ = writeln!(
        out,
        "Vulnerable Site Location: ({}) [{}]",
        module.format_loc(report.site),
        report.class
    );
    if report.chain.len() > 1 {
        let _ = writeln!(out, "Propagation chain:");
        for step in &report.chain {
            let _ = writeln!(out, "  {}", inst_with_loc(module, *step));
        }
    }
    out
}

/// Renders a batch of reports with a numbered header per entry.
pub fn format_vuln_reports(module: &Module, reports: &[VulnReport]) -> String {
    let mut out = String::new();
    for (i, r) in reports.iter().enumerate() {
        let _ = writeln!(out, "== vulnerability hint #{} ==", i + 1);
        out.push_str(&format_vuln_report(module, r));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_ir::{FuncId, InstId, ModuleBuilder, Operand, Pred, Type, VulnClass};

    fn sample() -> (Module, VulnReport, InstRef, Vec<InstRef>) {
        let mut mb = ModuleBuilder::new("libsafe");
        let dying = mb.global("dying", 1, Type::I64);
        let f = mb.declare_func("stack_check", 0);
        let (load, br, site);
        {
            let mut b = mb.build_func(f);
            b.loc("util.c", 145);
            let a = b.global_addr(dying);
            load = b.load(a, Type::I64);
            let c = b.cmp(Pred::Eq, load, 0);
            let yes = b.block();
            let no = b.block();
            b.loc("intercept.c", 164);
            br = b.br(c, yes, no);
            b.switch_to(yes);
            b.loc("intercept.c", 165);
            site = b.memcopy(Operand::Const(0x2000), Operand::Const(0x3000), 8);
            b.jmp(no);
            b.switch_to(no);
            b.ret(None);
        }
        let m = mb.finish();
        let report = VulnReport {
            site: InstRef::new(f, site),
            class: VulnClass::MemoryOp,
            dep: DepKind::CtrlDep,
            source: InstRef::new(f, load),
            branches: vec![InstRef::new(f, br)],
            path_branches: vec![InstRef::new(f, br)],
            chain: vec![InstRef::new(f, load), InstRef::new(f, br)],
        };
        (m, report, InstRef::new(f, load), vec![])
    }

    #[test]
    fn figure5_style_rendering() {
        let (m, report, _, _) = sample();
        let s = format_vuln_report(&m, &report);
        assert!(s.contains("---- Ctrl Dependent Vulnerability ----"));
        assert!(s.contains("intercept.c:164"));
        assert!(s.contains("Vulnerable Site Location: (intercept.c:165) [memory-op]"));
        assert!(s.contains("Propagation chain:"));
    }

    #[test]
    fn figure4_style_call_stack() {
        let (m, _, site, _) = sample();
        let other = InstRef::new(FuncId(0), InstId(0));
        let s = format_call_stack(&m, site, &[other]);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("stack_check"));
        assert!(lines[1].contains("util.c:145"));
    }

    #[test]
    fn batch_rendering_numbers_entries() {
        let (m, report, _, _) = sample();
        let s = format_vuln_reports(&m, &[report.clone(), report]);
        assert!(s.contains("hint #1"));
        assert!(s.contains("hint #2"));
    }
}
