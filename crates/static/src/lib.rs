//! # owl-static
//!
//! OWL's static analyses (Rust reproduction of *"Understanding and
//! Detecting Concurrency Attacks"*, DSN 2018):
//!
//! * [`AdhocSyncDetector`] — recognizes busy-wait adhoc
//!   synchronizations from race reports (§5.1) and produces the
//!   [`owl_race::HbAnnotation`]s that prune benign **schedules**;
//! * [`VulnAnalyzer`] — Algorithm 1 (§6.1): inter-procedural forward
//!   data & control flow analysis from a corrupted racy load to the
//!   five vulnerable-site classes, guided by the report's dynamic call
//!   stack; its [`VulnReport`]s are the vulnerable **input** hints;
//! * [`ConseqAnalyzer`] — a ConSeq-style intra-procedural, data-only
//!   baseline, kept to demonstrate why concurrency attacks need more;
//! * [`ElisionPrepass`] — the interprocedural check-elision pre-pass:
//!   proves access sites race-free (thread-local / lock-dominated /
//!   read-only-shared) so detection-stage replays can skip their
//!   shadow-memory work;
//! * [`hints`] — Figure-4/Figure-5 style report rendering.
//!
//! ## Example
//!
//! ```
//! use owl_ir::{ModuleBuilder, InstRef, Type, VulnClass};
//! use owl_static::{VulnAnalyzer, DepKind};
//!
//! // if (corrupted) { exec(...) }
//! let mut mb = ModuleBuilder::new("demo");
//! let flag = mb.global("flag", 1, Type::I64);
//! let f = mb.declare_func("handler", 0);
//! let load;
//! {
//!     let mut b = mb.build_func(f);
//!     let a = b.global_addr(flag);
//!     load = b.load(a, Type::I64);
//!     let yes = b.block();
//!     let no = b.block();
//!     b.br(load, yes, no);
//!     b.switch_to(yes);
//!     b.exec(7);
//!     b.jmp(no);
//!     b.switch_to(no);
//!     b.ret(None);
//! }
//! let module = mb.finish();
//!
//! let mut analyzer = VulnAnalyzer::with_defaults(&module);
//! let (reports, _stats) = analyzer.analyze(InstRef::new(f, load), &[]);
//! assert_eq!(reports[0].class, VulnClass::ExecOp);
//! assert_eq!(reports[0].dep, DepKind::CtrlDep);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod adhoc;
mod conseq;
mod elide;
pub mod hints;
mod summary;
mod synth;
mod vuln;

pub use adhoc::{AdhocSyncDetector, AdhocVerdict};
pub use conseq::ConseqAnalyzer;
pub use elide::ElisionPrepass;
pub use summary::{FuncSummary, SummaryCache, SummaryKey, SummaryReport};
pub use synth::{Affine, Assignment, InputSynthesizer};
pub use vuln::{DepKind, VulnAnalyzer, VulnConfig, VulnReport, VulnStats};
