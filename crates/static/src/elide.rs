//! Check-elision pre-pass (pipeline wrapper).
//!
//! [`ElisionPrepass`] runs the interprocedural check-elision analysis
//! ([`owl_ir::analysis::ElisionMap`]) once per program and packages
//! what the pipeline needs from it: the set of provably race-free
//! access sites (handed to the VM so detection-stage replays stamp
//! their events `no_shadow`), the per-class site counters for
//! `PipelineStats`/`PipelineHealth`, the solve wall-clock for metrics
//! spans, and a human-readable per-site report for `--elide-report`.
//!
//! The pre-pass is purely an optimization: the epoch detector skips
//! its shadow-memory lookup/update at elided sites, and the reference
//! vector-clock backend ignores the stamp entirely so it remains the
//! differential soundness oracle. Report streams must stay
//! byte-identical with the pre-pass on or off.

use owl_ir::analysis::{ElisionClass, ElisionMap, ElisionStats, PointsTo};
use owl_ir::{inst_with_loc, FuncId, InstRef, Module};
use std::collections::HashSet;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One solved check-elision pre-pass for a program.
#[derive(Clone, Debug)]
pub struct ElisionPrepass {
    map: ElisionMap,
    solve_time: Duration,
}

impl ElisionPrepass {
    /// Runs the pre-pass from `entry`, solving a fresh points-to
    /// analysis internally.
    pub fn run(module: &Module, entry: FuncId) -> Self {
        let t0 = Instant::now();
        let map = ElisionMap::analyze(module, entry);
        ElisionPrepass {
            map,
            solve_time: t0.elapsed(),
        }
    }

    /// Runs the pre-pass reusing an already-solved points-to analysis
    /// (the pipeline shares one solve between stage 4 and this pass).
    pub fn run_with(module: &Module, entry: FuncId, pts: &PointsTo) -> Self {
        let t0 = Instant::now();
        let map = ElisionMap::analyze_with(module, entry, pts);
        ElisionPrepass {
            map,
            solve_time: t0.elapsed(),
        }
    }

    /// The underlying per-site classification map.
    pub fn map(&self) -> &ElisionMap {
        &self.map
    }

    /// Per-class site and location counters.
    pub fn stats(&self) -> ElisionStats {
        self.map.stats()
    }

    /// Wall-clock the classification (including any internal points-to
    /// solve) took.
    pub fn solve_time(&self) -> Duration {
        self.solve_time
    }

    /// The elided site set in the shape the VM consumes
    /// (`Vm::with_elided_sites` via `ExplorerConfig::elided_sites`).
    pub fn elided_sites(&self) -> Arc<HashSet<InstRef>> {
        Arc::new(self.map.elided_set())
    }

    /// Renders the per-site classification as text (the `--elide-report`
    /// CLI output): a summary header followed by one line per elided
    /// site, grouped by class.
    pub fn report(&self, module: &Module) -> String {
        let s = self.stats();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "check-elision: {}/{} access sites elided \
             ({} thread-local, {} lock-dominated, {} read-only-shared)",
            s.sites_elided, s.sites_total, s.thread_local, s.lock_dominated, s.read_only
        );
        let _ = writeln!(
            out,
            "locations: {}/{} fully elidable; poisoned: {}; solve: {:?}",
            s.locations_elidable, s.locations, s.poisoned, self.solve_time
        );
        for class in [
            ElisionClass::ThreadLocal,
            ElisionClass::LockDominated,
            ElisionClass::ReadOnlyShared,
        ] {
            let mut sites: Vec<InstRef> = self
                .map
                .sites()
                .filter(|(_, c)| *c == class)
                .map(|(site, _)| site)
                .collect();
            if sites.is_empty() {
                continue;
            }
            sites.sort();
            let _ = writeln!(out, "\n[{class}] ({} sites)", sites.len());
            for site in sites {
                let _ = writeln!(
                    out,
                    "  @{}: {}",
                    module.func(site.func).name,
                    inst_with_loc(module, site)
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_ir::{ModuleBuilder, Type};

    /// A main thread spawning one worker; each side has a private
    /// global (elidable) and both touch a shared one (not elidable).
    fn sample() -> (Module, FuncId) {
        let mut mb = ModuleBuilder::new("elide-prepass");
        let mine = mb.global("mine", 1, Type::I64);
        let yours = mb.global("yours", 1, Type::I64);
        let shared = mb.global("shared", 1, Type::I64);
        let worker = mb.declare_func("worker", 1);
        let main = mb.declare_func("main", 0);
        {
            let mut b = mb.build_func(worker);
            let a = b.global_addr(yours);
            b.store(a, 1);
            let sh = b.global_addr(shared);
            b.store(sh, 2);
            b.ret(None);
        }
        {
            let mut b = mb.build_func(main);
            let t = b.thread_create(worker, 0);
            let a = b.global_addr(mine);
            b.store(a, 3);
            let sh = b.global_addr(shared);
            b.store(sh, 4);
            b.thread_join(t);
            b.ret(None);
        }
        (mb.finish(), main)
    }

    #[test]
    fn prepass_runs_and_reports() {
        let (m, main) = sample();
        let pre = ElisionPrepass::run(&m, main);
        let s = pre.stats();
        assert_eq!(s.thread_local, 2, "one private store per thread");
        assert_eq!(s.sites_elided, 2);
        assert_eq!(s.sites_total, 4);
        assert_eq!(pre.elided_sites().len(), 2);

        let report = pre.report(&m);
        assert!(report.contains("2/4 access sites elided"));
        assert!(report.contains("[thread-local] (2 sites)"));
        assert!(!report.contains("[lock-dominated]"));
    }

    #[test]
    fn shared_points_to_solve_matches_fresh_solve() {
        let (m, main) = sample();
        let pts = PointsTo::new(&m);
        let fresh = ElisionPrepass::run(&m, main);
        let shared = ElisionPrepass::run_with(&m, main, &pts);
        assert_eq!(fresh.stats(), shared.stats());
        assert_eq!(*fresh.elided_sites(), *shared.elided_sites());
    }
}
