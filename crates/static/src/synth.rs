//! Input synthesis from vulnerable-input hints.
//!
//! The paper deliberately stopped at *hints*: "We did not make this
//! vulnerable input hint automatically generate concrete inputs (can
//! be done via symbolic execution), because we found the call stacks
//! and branches in hints are already expressive enough for us to
//! manually infer vulnerable inputs" (§1). This module automates the
//! easy 80% of that manual step for the input-dependent gates: when a
//! hint branch's condition is an affine function of a program input
//! word (`input[k] * a + b` compared against a constant), solve for an
//! input value that steers the branch toward the vulnerable site.
//!
//! Racy/corrupted conditions are left to the schedule (that is the
//! verifiers' job); the synthesizer simply skips branches it cannot
//! express — exactly the division of labour the paper describes
//! between inputs and schedules.

use owl_ir::analysis::{Cfg, PostDomTree};
use owl_ir::{BlockId, Function, Inst, InstId, InstRef, Module, Operand, Pred};
use owl_vm::ProgramInput;
use serde::{Deserialize, Serialize};

/// An affine expression `coeff * input[idx] + offset` (or a constant
/// when `idx` is `None`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Affine {
    /// Input word index, if the expression depends on one.
    pub idx: Option<i64>,
    /// Multiplier of the input word.
    pub coeff: i64,
    /// Constant offset.
    pub offset: i64,
}

impl Affine {
    fn constant(c: i64) -> Self {
        Affine {
            idx: None,
            coeff: 0,
            offset: c,
        }
    }
}

/// One solved branch: set `input[idx] = value` to steer `branch`
/// toward the site.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// Input word index.
    pub idx: i64,
    /// Value to set.
    pub value: i64,
    /// The branch this satisfies.
    pub branch: InstRef,
}

/// Synthesizes concrete inputs satisfying a hint's path branches.
#[derive(Debug)]
pub struct InputSynthesizer<'m> {
    module: &'m Module,
}

impl<'m> InputSynthesizer<'m> {
    /// Creates a synthesizer over `module`.
    pub fn new(module: &'m Module) -> Self {
        InputSynthesizer { module }
    }

    /// Expresses `op` (in `func`) as an affine function of at most one
    /// input word, if possible.
    fn affine_of(&self, func: &Function, op: Operand, depth: usize) -> Option<Affine> {
        if depth > 16 {
            return None;
        }
        match op {
            Operand::Const(c) => Some(Affine::constant(c)),
            Operand::Param(_) => None,
            Operand::Value(v) => match func.inst(v) {
                Inst::Input {
                    idx: Operand::Const(k),
                } => Some(Affine {
                    idx: Some(*k),
                    coeff: 1,
                    offset: 0,
                }),
                Inst::Bin { op, a, b } => {
                    let ea = self.affine_of(func, *a, depth + 1)?;
                    let eb = self.affine_of(func, *b, depth + 1)?;
                    // At most one side may carry an input.
                    match op {
                        owl_ir::BinOp::Add => combine(ea, eb, |x, y| x.checked_add(y), 1),
                        owl_ir::BinOp::Sub => combine(ea, eb, |x, y| x.checked_sub(y), -1),
                        owl_ir::BinOp::Mul => {
                            // One side must be a pure constant.
                            let (e, c) = if ea.idx.is_none() {
                                (eb, ea.offset)
                            } else if eb.idx.is_none() {
                                (ea, eb.offset)
                            } else {
                                return None;
                            };
                            Some(Affine {
                                idx: e.idx,
                                coeff: e.coeff.checked_mul(c)?,
                                offset: e.offset.checked_mul(c)?,
                            })
                        }
                        _ => None,
                    }
                }
                _ => None,
            },
        }
    }

    /// Which successor of `branch` leads (via the post-dominator walk
    /// that defines control dependence) toward `target_block`? Returns
    /// `Some(true)` for the then-edge, `Some(false)` for the else-edge.
    fn required_side(
        &self,
        func: &Function,
        cfg: &Cfg,
        pdom: &PostDomTree,
        branch: InstId,
        target_block: BlockId,
    ) -> Option<bool> {
        let Inst::Br {
            then_bb, else_bb, ..
        } = func.inst(branch)
        else {
            return None;
        };
        let owner = func.inst_blocks();
        let branch_block = owner[branch.index()];
        // The branch's controlled region ends where its two arms rejoin
        // (the branch block's immediate post-dominator). A side "leads
        // to" the target if the target is CFG-reachable from that side
        // without crossing the rejoin point.
        let stop = pdom.ipdom_raw(branch_block.index());
        let reaches = |start: BlockId| -> bool {
            let mut seen = vec![false; func.blocks.len()];
            let mut work = vec![start];
            while let Some(b) = work.pop() {
                if Some(b.index()) == stop {
                    continue;
                }
                if b == target_block {
                    return true;
                }
                if std::mem::replace(&mut seen[b.index()], true) {
                    continue;
                }
                work.extend(cfg.succs(b).iter().copied());
            }
            false
        };
        match (reaches(*then_bb), reaches(*else_bb)) {
            (true, false) => Some(true),
            (false, true) => Some(false),
            _ => None, // both or neither: no constraint from this branch
        }
    }

    /// Solves `expr PRED rhs == want` for the input word in `expr`.
    fn solve(lhs: Affine, pred: Pred, rhs: Affine, want: bool) -> Option<Assignment> {
        // Normalize so the input is on the left.
        let (e, c, pred, want) = match (lhs.idx, rhs.idx) {
            (Some(_), None) => (lhs, rhs.offset, pred, want),
            (None, Some(_)) => {
                // Mirror the predicate.
                let mirrored = match pred {
                    Pred::Eq => Pred::Eq,
                    Pred::Ne => Pred::Ne,
                    Pred::Lt => Pred::Gt,
                    Pred::Le => Pred::Ge,
                    Pred::Gt => Pred::Lt,
                    Pred::Ge => Pred::Le,
                    Pred::LtU => return None,
                };
                (rhs, lhs.offset, mirrored, want)
            }
            _ => return None,
        };
        let idx = e.idx?;
        if e.coeff == 0 {
            return None;
        }
        // Solve coeff*v + offset PRED c (== want). Scan a candidate
        // window around the boundary — robust against rounding with
        // negative coefficients, and plenty for corpus-scale inputs.
        let boundary = (c - e.offset) / e.coeff;
        for delta in [0i64, 1, -1, 2, -2, 3, -3] {
            let v = boundary + delta;
            let val = e.coeff.checked_mul(v)?.checked_add(e.offset)?;
            let holds = match pred {
                Pred::Eq => val == c,
                Pred::Ne => val != c,
                Pred::Lt => val < c,
                Pred::Le => val <= c,
                Pred::Gt => val > c,
                Pred::Ge => val >= c,
                Pred::LtU => (val as u64) < (c as u64),
            };
            if holds == want {
                return Some(Assignment {
                    idx,
                    value: v,
                    branch: InstRef::new(owl_ir::FuncId(0), InstId(0)), // patched by caller
                });
            }
        }
        None
    }

    /// Solves one branch of the hint: returns the input assignment that
    /// steers `branch` toward `site`, when the condition is affine in
    /// an input word.
    pub fn solve_branch(&self, branch: InstRef, site: InstRef) -> Option<Assignment> {
        if branch.func != site.func {
            return None; // cross-function gates are schedule territory
        }
        let func = self.module.func(branch.func);
        let cfg = Cfg::new(func);
        let pdom = PostDomTree::new(func, &cfg);
        let owner = func.inst_blocks();
        let want = self.required_side(func, &cfg, &pdom, branch.inst, owner[site.inst.index()])?;
        let Inst::Br { cond, .. } = func.inst(branch.inst) else {
            return None;
        };
        // Condition may be a comparison or a raw (affine) value.
        let assignment = match cond {
            Operand::Value(v) => match func.inst(*v) {
                Inst::Cmp { pred, a, b } => {
                    let ea = self.affine_of(func, *a, 0)?;
                    let eb = self.affine_of(func, *b, 0)?;
                    Self::solve(ea, *pred, eb, want)
                }
                _ => {
                    let e = self.affine_of(func, *cond, 0)?;
                    // Truthiness: want != 0 (or == 0).
                    Self::solve(e, Pred::Ne, Affine::constant(0), want)
                }
            },
            _ => {
                let e = self.affine_of(func, *cond, 0)?;
                Self::solve(e, Pred::Ne, Affine::constant(0), want)
            }
        };
        assignment.map(|mut a| {
            a.branch = branch;
            a
        })
    }

    /// Synthesizes an input from `base` that satisfies every solvable
    /// branch in `branches` toward `site`. Returns the refined input
    /// and the assignments made (empty assignments mean nothing was
    /// solvable — no refinement to try).
    pub fn refine_input(
        &self,
        base: &ProgramInput,
        branches: &[InstRef],
        site: InstRef,
    ) -> (ProgramInput, Vec<Assignment>) {
        let mut assignments = Vec::new();
        for br in branches {
            if let Some(a) = self.solve_branch(*br, site) {
                assignments.push(a);
            }
        }
        if assignments.is_empty() {
            return (base.clone(), assignments);
        }
        let max_idx = assignments
            .iter()
            .map(|a| a.idx)
            .chain(std::iter::once(base.values().len() as i64 - 1))
            .max()
            .unwrap_or(0)
            .max(0) as usize;
        let mut values = vec![0i64; max_idx + 1];
        values[..base.values().len()].copy_from_slice(base.values());
        for a in &assignments {
            if a.idx >= 0 {
                values[a.idx as usize] = a.value;
            }
        }
        (
            ProgramInput::new(values).with_label("synthesized"),
            assignments,
        )
    }
}

fn combine(
    a: Affine,
    b: Affine,
    op: impl Fn(i64, i64) -> Option<i64>,
    b_sign: i64,
) -> Option<Affine> {
    match (a.idx, b.idx) {
        (Some(_), Some(_)) => None,
        (Some(_), None) => Some(Affine {
            idx: a.idx,
            coeff: a.coeff,
            offset: op(a.offset, b.offset)?,
        }),
        (None, Some(_)) => Some(Affine {
            idx: b.idx,
            coeff: b.coeff.checked_mul(b_sign)?,
            offset: op(a.offset, b.offset)?,
        }),
        (None, None) => Some(Affine::constant(op(a.offset, b.offset)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_ir::{ModuleBuilder, Type};

    /// `if (input0 * 2 + 1 > 100) { if (input1 == 7) exec(9) } `
    fn gated() -> (Module, InstRef, InstRef, InstRef) {
        let mut mb = ModuleBuilder::new("g");
        let f = mb.declare_func("f", 0);
        let (br1, br2, site);
        {
            let mut b = mb.build_func(f);
            let i0 = b.input(0);
            let x = b.bin(owl_ir::BinOp::Mul, i0, 2);
            let y = b.add(x, 1);
            let c1 = b.cmp(Pred::Gt, y, 100);
            let inner = b.block();
            let out = b.block();
            br1 = b.br(c1, inner, out);
            b.switch_to(inner);
            let i1 = b.input(1);
            let c2 = b.cmp(Pred::Eq, i1, 7);
            let fire = b.block();
            br2 = b.br(c2, fire, out);
            b.switch_to(fire);
            site = b.exec(9);
            b.jmp(out);
            b.switch_to(out);
            b.ret(None);
        }
        let m = mb.finish();
        (
            m,
            InstRef::new(f, br1),
            InstRef::new(f, br2),
            InstRef::new(f, site),
        )
    }

    #[test]
    fn solves_affine_comparison() {
        let (m, br1, _, site) = gated();
        let synth = InputSynthesizer::new(&m);
        let a = synth.solve_branch(br1, site).expect("solvable");
        assert_eq!(a.idx, 0);
        assert!(2 * a.value + 1 > 100, "2*{}+1 > 100", a.value);
    }

    #[test]
    fn solves_equality() {
        let (m, _, br2, site) = gated();
        let synth = InputSynthesizer::new(&m);
        let a = synth.solve_branch(br2, site).expect("solvable");
        assert_eq!(a.idx, 1);
        assert_eq!(a.value, 7);
    }

    #[test]
    fn refines_base_input_with_all_assignments() {
        let (m, br1, br2, site) = gated();
        let synth = InputSynthesizer::new(&m);
        let (input, assignments) = synth.refine_input(&ProgramInput::empty(), &[br1, br2], site);
        assert_eq!(assignments.len(), 2);
        assert!(2 * input.get(0) + 1 > 100);
        assert_eq!(input.get(1), 7);
    }

    #[test]
    fn racy_conditions_are_not_solvable() {
        // A branch on a loaded (racy) value has no input expression.
        let mut mb = ModuleBuilder::new("r");
        let g = mb.global("g", 1, Type::I64);
        let f = mb.declare_func("f", 0);
        let (br, site);
        {
            let mut b = mb.build_func(f);
            let a = b.global_addr(g);
            let v = b.load(a, Type::I64);
            let fire = b.block();
            let out = b.block();
            br = b.br(v, fire, out);
            b.switch_to(fire);
            site = b.exec(1);
            b.jmp(out);
            b.switch_to(out);
            b.ret(None);
        }
        let m = mb.finish();
        let synth = InputSynthesizer::new(&m);
        assert!(synth
            .solve_branch(InstRef::new(f, br), InstRef::new(f, site))
            .is_none());
    }

    #[test]
    fn truthy_gate_solved_directly() {
        // `if (input3) site` — no comparison at all.
        let mut mb = ModuleBuilder::new("t");
        let f = mb.declare_func("f", 0);
        let (br, site);
        {
            let mut b = mb.build_func(f);
            let i = b.input(3);
            let fire = b.block();
            let out = b.block();
            br = b.br(i, fire, out);
            b.switch_to(fire);
            site = b.exec(1);
            b.jmp(out);
            b.switch_to(out);
            b.ret(None);
        }
        let m = mb.finish();
        let synth = InputSynthesizer::new(&m);
        let a = synth
            .solve_branch(InstRef::new(f, br), InstRef::new(f, site))
            .expect("solvable");
        assert_eq!(a.idx, 3);
        assert_ne!(a.value, 0);
    }

    #[test]
    fn required_side_handles_else_edges() {
        // `if (input0 == 0) out else site` — must choose the else edge
        // (want = false for the condition).
        let mut mb = ModuleBuilder::new("e");
        let f = mb.declare_func("f", 0);
        let (br, site);
        {
            let mut b = mb.build_func(f);
            let i = b.input(0);
            let c = b.cmp(Pred::Eq, i, 0);
            let out = b.block();
            let fire = b.block();
            br = b.br(c, out, fire);
            b.switch_to(fire);
            site = b.exec(1);
            b.jmp(out);
            b.switch_to(out);
            b.ret(None);
        }
        let m = mb.finish();
        let synth = InputSynthesizer::new(&m);
        let a = synth
            .solve_branch(InstRef::new(f, br), InstRef::new(f, site))
            .expect("solvable");
        assert_ne!(a.value, 0, "input must be non-zero to take the else edge");
    }
}
