//! The CTrigger/AVIO integration (paper §8.3's future work): a
//! lock-protected check-then-act bug that is invisible to the
//! happens-before front-end is caught by the atomicity-violation
//! front-end, and the rest of the OWL pipeline (verification,
//! Algorithm 1, vulnerability verification) carries it to a confirmed
//! attack.

use owl::{Owl, OwlConfig};
use owl_corpus::extensions::bank_atomicity;
use owl_ir::VulnClass;

#[test]
fn hb_front_end_misses_the_bank_attack() {
    let p = bank_atomicity();
    let owl = Owl::new(&p.module, p.entry, OwlConfig::quick());
    let result = owl.run("Bank", &p.workloads, &p.exploit_inputs);
    assert!(
        result
            .findings
            .iter()
            .all(|f| f.race.global_name.as_deref() != Some("balance")),
        "every balance access is locked; HB must stay silent: {:?}",
        result
            .findings
            .iter()
            .map(|f| f.race.global_name.clone())
            .collect::<Vec<_>>()
    );
}

#[test]
fn atomicity_front_end_detects_the_bank_attack() {
    let p = bank_atomicity();
    let owl = Owl::new(&p.module, p.entry, OwlConfig::quick());
    let result = owl.run_atomicity("Bank", &p.workloads, &p.exploit_inputs);
    assert!(
        result.stats.raw_reports > 0,
        "the atomicity detector must flag the check-then-act window"
    );
    let finding = result
        .finding_on("balance")
        .unwrap_or_else(|| panic!("balance finding expected: {:?}", result.findings));
    assert!(
        finding.verification.confirmed,
        "the unserializable access pair verifies in the racing moment"
    );
    let dispense = finding
        .vulns
        .iter()
        .zip(&finding.vuln_verifications)
        .find(|(v, _)| v.class == VulnClass::FileOp)
        .unwrap_or_else(|| panic!("cash-dispense hint expected: {:?}", finding.vulns));
    assert!(
        dispense.1.reached,
        "the dispense site is dynamically reachable: {:?}",
        dispense.1
    );
}

#[test]
fn atomicity_reports_convert_faithfully() {
    use owl_race::{AtomicityDetector, AtomicityPattern};
    use owl_vm::{ProgramInput, RandomScheduler, RunConfig, Vm};
    let p = bank_atomicity();
    let mut det = AtomicityDetector::new();
    for seed in 0..20u64 {
        let mut sched = RandomScheduler::new(seed);
        let vm = Vm::new(
            &p.module,
            p.entry,
            ProgramInput::new(vec![80, 80, 20, 20]),
            RunConfig::default(),
        );
        let _ = vm.run(&mut sched, &mut det);
    }
    let reports = det.finish(&p.module);
    let balance_report = reports
        .iter()
        .find(|r| r.global_name.as_deref() == Some("balance"))
        .expect("balance violation");
    assert_eq!(balance_report.pattern, AtomicityPattern::RwR);
    let rr = balance_report.as_race_report();
    assert_eq!(rr.global_name.as_deref(), Some("balance"));
    assert!(rr.read_access().is_some());
}
