//! Crash-recovery harness: proves the campaign's durability story.
//!
//! For a mini-corpus (Libsafe + SSDB) under fault injection, and for
//! **every** journal kill point — a hard panic fired immediately after
//! each fsync'd append — a killed-then-resumed campaign must:
//!
//! * never re-run a completed unit (final record count equals the
//!   uninterrupted run's, so no duplicates were appended);
//! * never lose a recorded finding (exactly `k` records survive a kill
//!   at append `k`);
//! * render a final summary **byte-identical** to the uninterrupted
//!   campaign's.
//!
//! Torn-tail and corrupted-checksum journals must additionally recover
//! automatically on open, surfacing the discarded byte/record counts
//! through `PipelineHealth`.
//!
//! Seeds default to the chaos set (11, 23, 47); CI shards them via the
//! `OWL_CRASH_SEEDS` environment variable.

use owl::{
    run_campaign, CampaignConfig, CampaignFault, Journal, JournalKilled, OwlConfig,
    PipelineError, ProgramOutcome,
};
use owl_corpus::CorpusProgram;
use owl_vm::FaultPlan;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Once;
use std::time::Duration;

const CHAOS_RATE: f64 = 0.01;

/// Silence the default panic hook for the panics this harness fires on
/// purpose (journal kills and injected campaign faults); real panics
/// still print.
fn quiet_intentional_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let intentional = info.payload().downcast_ref::<JournalKilled>().is_some()
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.starts_with("injected campaign fault"));
            if !intentional {
                prev(info);
            }
        }));
    });
}

fn seeds() -> Vec<u64> {
    match std::env::var("OWL_CRASH_SEEDS") {
        Ok(raw) => raw
            .split(|c: char| c.is_whitespace() || c == ',')
            .filter(|s| !s.is_empty())
            .map(|s| s.parse().expect("OWL_CRASH_SEEDS must hold integers"))
            .collect(),
        Err(_) => vec![11, 23, 47],
    }
}

/// Small enough for an exhaustive kill-point sweep, large enough to
/// exercise every record type (verify, analyze, finish) across two
/// programs.
fn mini_corpus() -> Vec<CorpusProgram> {
    vec![
        owl_corpus::program("Libsafe").expect("Libsafe is in the corpus"),
        owl_corpus::program("SSDB").expect("SSDB is in the corpus"),
    ]
}

fn campaign_config(seed: u64) -> CampaignConfig {
    let owl = OwlConfig::quick().with_fault_plan(FaultPlan::uniform(seed, CHAOS_RATE));
    let mut cfg = CampaignConfig::new(owl);
    cfg.backoff_base = Duration::from_millis(1);
    cfg
}

fn scratch_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("owl-crash-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).expect("scratch dir");
    p
}

fn journal_len(path: &Path) -> u64 {
    let j = Journal::open(path).expect("journal reopens");
    assert!(
        !j.recovery().recovered(),
        "a cleanly killed journal needs no repair: {:?}",
        j.recovery()
    );
    j.records().len() as u64
}

#[test]
fn every_kill_point_resumes_byte_identically_across_seeds() {
    quiet_intentional_panics();
    for seed in seeds() {
        let programs = mini_corpus();
        let cfg = campaign_config(seed);

        let base = scratch_dir(&format!("baseline-{seed}"));
        let baseline = run_campaign(&base.join("journal.jsonl"), &programs, &cfg, false)
            .expect("uninterrupted campaign");
        let expected = baseline.summary.render();
        let total = baseline.summary.records;
        assert!(
            total > 10,
            "mini-corpus must journal a meaningful record stream, got {total}"
        );

        // Sweep every kill point serially AND with the full pool (the
        // mini-corpus has two programs, so 2 workers is maximal
        // parallelism): the killed-flag journal guarantees exactly `k`
        // records survive even when workers race past the kill, and
        // the record-keyed merge keeps the resumed summary
        // byte-identical to the single-worker baseline.
        for workers in [1usize, 2] {
            for kill in 1..=total {
                let dir = scratch_dir(&format!("kill-{seed}-{workers}w-{kill}"));
                let path = dir.join("journal.jsonl");
                let mut killed_cfg = cfg.clone();
                killed_cfg.kill_after_appends = Some(kill);
                killed_cfg.workers = workers;
                let payload =
                    catch_unwind(AssertUnwindSafe(|| {
                        run_campaign(&path, &programs, &killed_cfg, false)
                    }))
                    .expect_err("the armed kill point must fire");
                assert!(
                    payload.downcast_ref::<JournalKilled>().is_some(),
                    "seed {seed} workers {workers} kill {kill}: unexpected panic payload"
                );

                // Durability: exactly the records appended before the
                // kill survive — the fsync'd tail is never torn by the
                // panic, and no concurrent worker writes past it.
                assert_eq!(
                    journal_len(&path),
                    kill,
                    "seed {seed} workers {workers} kill {kill}: record count after crash"
                );

                // Resume with the kill point disarmed, same pool size.
                let mut resume_cfg = cfg.clone();
                resume_cfg.workers = workers;
                let resumed = run_campaign(&path, &programs, &resume_cfg, true)
                    .expect("resumed campaign completes");
                assert_eq!(
                    resumed.summary.records, total,
                    "seed {seed} workers {workers} kill {kill}: zero re-executed units \
                     means zero duplicate records"
                );
                assert_eq!(
                    resumed.summary.render(),
                    expected,
                    "seed {seed} workers {workers} kill {kill}: resumed summary must be \
                     byte-identical"
                );
                let _ = std::fs::remove_dir_all(dir);
            }
        }
        let _ = std::fs::remove_dir_all(base);
    }
}

#[test]
fn torn_final_record_recovers_and_is_relogged_in_health() {
    quiet_intentional_panics();
    let seed = 11;
    let programs = mini_corpus();
    let cfg = campaign_config(seed);

    let base = scratch_dir("torn-baseline");
    let baseline = run_campaign(&base.join("journal.jsonl"), &programs, &cfg, false).unwrap();
    let expected = baseline.summary.render();
    let total = baseline.summary.records;

    let dir = scratch_dir("torn");
    let path = dir.join("journal.jsonl");
    run_campaign(&path, &programs, &cfg, false).unwrap();

    // Tear the final record mid-line, as a crash during a non-atomic
    // write would.
    let bytes = std::fs::read(&path).unwrap();
    let torn = bytes.len() - 7;
    std::fs::write(&path, &bytes[..torn]).unwrap();

    let resumed = run_campaign(&path, &programs, &cfg, true).expect("recovers automatically");
    assert!(resumed.recovery.recovered());
    assert_eq!(resumed.recovery.discarded_records, 1, "one torn record");
    assert!(resumed.recovery.discarded_bytes > 0);
    // The recovery counters surface in the consolidated health.
    assert_eq!(
        resumed.health.journal_discarded_records, 1,
        "recovery must be logged in PipelineHealth"
    );
    assert!(resumed.health.journal_discarded_bytes > 0);
    // The torn unit re-executes deterministically: no loss, no drift.
    assert_eq!(resumed.summary.records, total);
    assert_eq!(resumed.summary.render(), expected);

    let _ = std::fs::remove_dir_all(base);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn corrupted_checksum_recovers_and_is_relogged_in_health() {
    quiet_intentional_panics();
    let seed = 23;
    let programs = mini_corpus();
    let cfg = campaign_config(seed);

    let base = scratch_dir("crc-baseline");
    let baseline = run_campaign(&base.join("journal.jsonl"), &programs, &cfg, false).unwrap();
    let expected = baseline.summary.render();
    let total = baseline.summary.records;

    let dir = scratch_dir("crc");
    let path = dir.join("journal.jsonl");
    run_campaign(&path, &programs, &cfg, false).unwrap();

    // Flip one payload byte inside the 10th record: bit rot the frame
    // survives but the checksum must catch.
    let mut bytes = std::fs::read(&path).unwrap();
    let line_starts: Vec<usize> = std::iter::once(0)
        .chain(
            bytes
                .iter()
                .enumerate()
                .filter(|(_, &b)| b == b'\n')
                .map(|(i, _)| i + 1),
        )
        .collect();
    let target = line_starts[9] + 30;
    bytes[target] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    let resumed = run_campaign(&path, &programs, &cfg, true).expect("recovers automatically");
    assert!(resumed.recovery.recovered());
    assert_eq!(
        resumed.recovery.discarded_records,
        total - 9,
        "everything from the corrupt record on is discarded"
    );
    assert_eq!(resumed.health.journal_discarded_records, total - 9);
    assert!(resumed.health.journal_discarded_bytes > 0);
    // The discarded tail re-executes deterministically.
    assert_eq!(resumed.summary.records, total);
    assert_eq!(resumed.summary.render(), expected);

    let _ = std::fs::remove_dir_all(base);
    let _ = std::fs::remove_dir_all(dir);
}

/// A hard kill landing *inside a spill-segment write* must behave like
/// every other kill point: the segment is left with a torn,
/// checksummed-looking tail that `recover_segment` truncates, the
/// campaign resumes with the unit retried from scratch, and the final
/// summary is byte-identical to the uninterrupted bounded-memory run.
#[test]
fn kill_mid_spill_leaves_torn_segment_and_resumes_byte_identically() {
    quiet_intentional_panics();
    for seed in seeds() {
        let programs = mini_corpus();
        let budget = 256u64;
        let bounded = |spill_dir: &Path| {
            let mut cfg = campaign_config(seed);
            cfg.owl.detect.stream.max_trace_mem = Some(budget);
            cfg.owl.detect.stream.spill_dir = Some(spill_dir.to_path_buf());
            cfg
        };

        // Uninterrupted bounded-memory baseline.
        let base = scratch_dir(&format!("spill-baseline-{seed}"));
        let base_cfg = bounded(&base.join("trace-spill"));
        let baseline = run_campaign(&base.join("journal.jsonl"), &programs, &base_cfg, false)
            .expect("bounded baseline completes");
        let expected = baseline.summary.render();

        // Killed run: a one-shot switch fires mid-segment-write,
        // leaving a torn half-record with no newline — what a real
        // SIGKILL during write(2) leaves behind.
        let dir = scratch_dir(&format!("spill-kill-{seed}"));
        let spill_dir = dir.join("trace-spill");
        let journal_path = dir.join("journal.jsonl");
        let mut killed_cfg = bounded(&spill_dir);
        let switch = owl::owl_race::SpillKillSwitch::new();
        switch.arm(3);
        killed_cfg.owl.detect.stream.spill_kill = Some(switch);
        let payload = catch_unwind(AssertUnwindSafe(|| {
            run_campaign(&journal_path, &programs, &killed_cfg, false)
        }))
        .expect_err("the armed spill kill must fire");
        assert!(
            payload.downcast_ref::<JournalKilled>().is_some(),
            "seed {seed}: unexpected panic payload"
        );

        // The kill left a segment behind, and its tail is torn.
        let segments: Vec<PathBuf> = std::fs::read_dir(&spill_dir)
            .expect("spill dir exists after the kill")
            .filter_map(|e| Some(e.ok()?.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "seg"))
            .collect();
        assert!(!segments.is_empty(), "seed {seed}: no segment survived");
        let mut torn = 0;
        for seg in &segments {
            let r = owl_race::spill::recover_segment(seg).expect("recovery scans the segment");
            if r.torn {
                torn += 1;
                assert!(r.discarded_bytes > 0, "torn tail has no bytes to discard");
                // Truncation is in-place and idempotent: a second scan
                // finds a clean segment with the same survivors.
                let again = owl_race::spill::recover_segment(seg).unwrap();
                assert!(!again.torn, "recovery must have truncated in place");
                assert_eq!(again.valid_events, r.valid_events);
            }
        }
        assert_eq!(torn, 1, "seed {seed}: exactly the in-flight segment is torn");

        // Resume, disarmed, same spill directory: the leftover segment
        // is recovered/overwritten, the killed unit retries, and the
        // summary matches the uninterrupted run byte for byte.
        let resume_cfg = bounded(&spill_dir);
        let resumed = run_campaign(&journal_path, &programs, &resume_cfg, true)
            .expect("resumed bounded campaign completes");
        assert_eq!(
            resumed.summary.render(),
            expected,
            "seed {seed}: resumed bounded-memory summary must be byte-identical"
        );
        // Clean completion leaves no segments behind.
        let leftover = std::fs::read_dir(&spill_dir)
            .map(|d| d.count())
            .unwrap_or(0);
        assert_eq!(leftover, 0, "seed {seed}: completed run leaked spill segments");

        let _ = std::fs::remove_dir_all(base);
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn retry_backoff_and_graceful_degradation() {
    quiet_intentional_panics();
    let programs = mini_corpus();
    let mut cfg = campaign_config(47);
    cfg.max_attempts = 2;
    cfg.faults = vec![
        // Libsafe fails once, then the retry succeeds.
        CampaignFault {
            program: "Libsafe".to_string(),
            failures: 1,
        },
        // SSDB exhausts its whole budget and must be quarantined.
        CampaignFault {
            program: "SSDB".to_string(),
            failures: u64::MAX,
        },
    ];

    let dir = scratch_dir("degrade");
    let path = dir.join("journal.jsonl");
    let outcome = run_campaign(&path, &programs, &cfg, false).expect("campaign degrades, not dies");

    assert_eq!(outcome.summary.finished(), 1);
    assert_eq!(outcome.summary.quarantined(), 1);
    let libsafe = &outcome.summary.programs[0];
    assert_eq!(libsafe.program, "Libsafe");
    assert_eq!(libsafe.attempts, 2, "one failure + one successful retry");
    assert!(matches!(libsafe.outcome, ProgramOutcome::Finished(_)));
    let ssdb = &outcome.summary.programs[1];
    assert_eq!(ssdb.program, "SSDB");
    assert_eq!(ssdb.attempts, 2, "full budget spent");
    match &ssdb.outcome {
        ProgramOutcome::Quarantined(PipelineError::Panicked { message, .. }) => {
            assert!(message.contains("injected campaign fault"), "{message}");
        }
        other => panic!("SSDB must be quarantined with the panic preserved: {other:?}"),
    }
    assert!(outcome.summary.render().contains("QUARANTINED"));

    // Resume honors the quarantine: the journal is the source of truth,
    // so nothing re-runs even with the faults cleared.
    let clean = campaign_config(47);
    let resumed = run_campaign(&path, &programs, &clean, true).unwrap();
    assert_eq!(resumed.summary.records, outcome.summary.records);
    assert_eq!(resumed.summary.quarantined(), 1);

    let _ = std::fs::remove_dir_all(dir);
}
