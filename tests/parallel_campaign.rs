//! Parallel campaign determinism and scheduling-fairness harness.
//!
//! The worker pool must be an *implementation detail*: running the full
//! corpus under `--workers 1`, `2`, and `4` has to produce consolidated
//! summaries that are byte-identical — same render, same JSON — because
//! the summary is folded from journal records keyed on `(program,
//! unit)`, never from thread arrival order.
//!
//! The second harness pins the serial-runner bugfix: a program waiting
//! out its retry backoff is *re-enqueued with a due time*, so the
//! worker moves on to runnable programs instead of sleeping on the
//! spot. Metrics spans give us the observable ordering.

use owl::{
    run_campaign, CampaignConfig, CampaignFault, MetricsRecorder, OwlConfig, ProgramOutcome,
};
use std::path::PathBuf;
use std::sync::{Arc, Once};
use std::time::Duration;

/// Silence the default panic hook for the campaign faults this harness
/// injects on purpose; real panics still print.
fn quiet_intentional_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let intentional = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.starts_with("injected campaign fault"));
            if !intentional {
                prev(info);
            }
        }));
    });
}

fn scratch_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("owl-parallel-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).expect("scratch dir");
    p
}

#[test]
fn worker_counts_produce_byte_identical_summaries() {
    let programs = owl_corpus::all_programs();
    let mut renders = Vec::new();
    let mut jsons = Vec::new();
    for workers in [1usize, 2, 4] {
        let dir = scratch_dir(&format!("det-{workers}w"));
        let mut cfg = CampaignConfig::new(OwlConfig::quick());
        cfg.workers = workers;
        let outcome = run_campaign(&dir.join("journal.jsonl"), &programs, &cfg, false)
            .expect("campaign completes");
        assert_eq!(
            outcome.summary.finished(),
            programs.len(),
            "workers {workers}: every corpus program finishes"
        );
        renders.push(outcome.summary.render());
        jsons.push(outcome.summary.to_json().to_json_string());
        let _ = std::fs::remove_dir_all(dir);
    }
    assert_eq!(
        renders[0], renders[1],
        "workers 1 vs 2: summary must be byte-identical"
    );
    assert_eq!(
        renders[0], renders[2],
        "workers 1 vs 4: summary must be byte-identical"
    );
    assert_eq!(jsons[0], jsons[1], "workers 1 vs 2: JSON must match");
    assert_eq!(jsons[0], jsons[2], "workers 1 vs 4: JSON must match");
}

/// A worker holding the only thread must not sleep out a backoff while
/// another program is runnable. Libsafe fails its first attempt and is
/// re-enqueued with a due time far in the future; the single worker has
/// to run SSDB to completion *before* coming back for Libsafe's retry.
/// (The old runner slept inline, finishing Libsafe first — this span
/// ordering is exactly what the bugfix changes.)
#[test]
fn backoff_does_not_block_runnable_programs() {
    quiet_intentional_panics();
    let programs = vec![
        owl_corpus::program("Libsafe").expect("Libsafe is in the corpus"),
        owl_corpus::program("SSDB").expect("SSDB is in the corpus"),
    ];
    let recorder = Arc::new(MetricsRecorder::new());
    let mut cfg = CampaignConfig::new(OwlConfig::quick());
    cfg.workers = 1;
    cfg.backoff_base = Duration::from_millis(400);
    cfg.faults = vec![CampaignFault {
        program: "Libsafe".to_string(),
        failures: 1,
    }];
    cfg.metrics = Some(recorder.clone());

    let dir = scratch_dir("backoff");
    let outcome = run_campaign(&dir.join("journal.jsonl"), &programs, &cfg, false)
        .expect("campaign completes");

    assert_eq!(outcome.summary.finished(), 2);
    let libsafe = &outcome.summary.programs[0];
    assert_eq!(libsafe.program, "Libsafe");
    assert_eq!(libsafe.attempts, 2, "one injected failure + one retry");
    assert!(matches!(libsafe.outcome, ProgramOutcome::Finished(_)));

    // Spans are appended in completion order under the recorder's lock.
    // A successful attempt emits exactly one "program" span, so the
    // ordering of those spans is the ordering of program completions.
    let spans = recorder.spans();
    let ssdb_done = spans
        .iter()
        .position(|s| s.name == "program" && s.program == "SSDB")
        .expect("SSDB records a program span");
    let libsafe_done = spans
        .iter()
        .position(|s| s.name == "program" && s.program == "Libsafe" && s.attempt == 2)
        .expect("Libsafe's successful retry records a program span");
    assert!(
        ssdb_done < libsafe_done,
        "SSDB must complete before Libsafe's backed-off retry \
         (worker slept inline instead of re-enqueueing)"
    );

    // The retry went through the deadline queue, visibly.
    assert!(
        recorder.counter_value("campaign_requeues") >= 1,
        "the injected failure must be counted as a requeue"
    );
    assert!(
        spans
            .iter()
            .any(|s| s.name == "queue-wait" && s.program == "Libsafe" && s.attempt == 2),
        "the backed-off retry must record its queue wait"
    );
    // Per-stage observability covers every pipeline stage.
    for stage in ["detect", "race-verify", "vuln-analyze", "vuln-verify"] {
        assert!(
            spans.iter().any(|s| s.name == stage),
            "missing {stage} span"
        );
    }

    // The JSONL export and the perf summary both round-trip through the
    // strict parser.
    for line in recorder.spans_jsonl().lines() {
        owl::json::parse(line).expect("span line is valid JSON");
    }
    let summary = recorder.summary(cfg.workers, programs.len());
    assert_eq!(summary.get("workers").and_then(|j| j.as_u64()), Some(1));
    assert_eq!(summary.get("programs").and_then(|j| j.as_u64()), Some(2));
    let stages = summary.get("stages").expect("stage histograms");
    assert!(
        stages.get("program").is_some(),
        "program stage histogram present: {}",
        summary.to_json_string()
    );
    owl::json::parse(&summary.to_json_string()).expect("summary is valid JSON");

    let _ = std::fs::remove_dir_all(dir);
}
