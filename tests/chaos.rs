//! Chaos suite: the pipeline under deterministic fault injection.
//!
//! Every corpus program is run with a seeded [`FaultPlan`] injecting
//! faults at 1% across three fixed seeds. The acceptance bar:
//!
//! * the supervised pipeline never panics — every injected fault is
//!   either retried past or surfaced in `quarantined` / `health`;
//! * fault injection is observable: across the seeds, faults are
//!   actually injected and accounted for;
//! * with a zeroed plan the fault layer is inert — stage counters are
//!   identical to a run without it;
//! * the same fault seed reproduces the same run.

use owl::{Owl, OwlConfig, PipelineResult, PipelineStats};
use owl_vm::FaultPlan;
use std::time::Duration;

const CHAOS_SEEDS: [u64; 3] = [11, 23, 47];
const CHAOS_RATE: f64 = 0.01;

/// The deterministic (non-`Duration`) slice of [`PipelineStats`],
/// comparable across runs.
fn counters(s: &PipelineStats) -> (usize, usize, usize, usize, usize, usize, usize, u64, u64) {
    (
        s.raw_reports,
        s.adhoc_syncs,
        s.post_annotation_reports,
        s.verifier_eliminated,
        s.remaining,
        s.vulnerable,
        s.analysis_count,
        s.analysis_work.insts_visited,
        s.analysis_work.funcs_entered,
    )
}

fn chaos_run(name: &str, seed: u64) -> PipelineResult {
    let p = owl_corpus::program(name).expect("corpus program exists");
    let cfg = OwlConfig::quick()
        .with_fault_plan(FaultPlan::uniform(seed, CHAOS_RATE))
        .with_stage_deadline(Duration::from_secs(30));
    let owl = Owl::new(&p.module, p.entry, cfg);
    owl.run(p.name, &p.workloads, &p.exploit_inputs)
}

#[test]
fn corpus_survives_fault_injection_across_seeds() {
    let mut total_faults = 0u64;
    for p in owl_corpus::all_programs() {
        for seed in CHAOS_SEEDS {
            let result = chaos_run(p.name, seed);
            assert!(
                result.error.is_none(),
                "{} seed {seed}: run-level error {:?}",
                p.name,
                result.error
            );
            total_faults += result.health.total_injected_faults();
            // Supervision accounting: quarantined entries and the
            // health counters agree, and every quarantined report
            // carries a typed cause.
            assert_eq!(
                result.health.total_quarantined(),
                result.quarantined.len() as u64,
                "{} seed {seed}",
                p.name
            );
            for q in &result.quarantined {
                assert!(!q.error.to_string().is_empty());
            }
            // Findings stay structurally sound under faults.
            for f in &result.findings {
                assert_eq!(
                    f.vulns.len(),
                    f.vuln_verifications.len(),
                    "{} seed {seed}: verifications not parallel to vulns",
                    p.name
                );
            }
        }
    }
    assert!(
        total_faults > 0,
        "1% injection across {CHAOS_SEEDS:?} must fire at least once"
    );
}

#[test]
fn atomicity_frontend_survives_fault_injection() {
    let p = owl_corpus::extensions::bank_atomicity();
    for seed in CHAOS_SEEDS {
        let cfg = OwlConfig::quick().with_fault_plan(FaultPlan::uniform(seed, CHAOS_RATE));
        let owl = Owl::new(&p.module, p.entry, cfg);
        let result = owl.run_atomicity("Bank", &p.workloads, &p.exploit_inputs);
        assert!(result.error.is_none());
        assert_eq!(
            result.health.total_quarantined(),
            result.quarantined.len() as u64
        );
    }
}

#[test]
fn zeroed_plan_is_bit_identical_to_no_fault_layer() {
    for p in owl_corpus::all_programs() {
        let base = Owl::new(&p.module, p.entry, OwlConfig::quick()).run(
            p.name,
            &p.workloads,
            &p.exploit_inputs,
        );
        let zeroed_cfg = OwlConfig::quick().with_fault_plan(FaultPlan::none());
        let zeroed = Owl::new(&p.module, p.entry, zeroed_cfg).run(
            p.name,
            &p.workloads,
            &p.exploit_inputs,
        );
        assert_eq!(
            counters(&base.stats),
            counters(&zeroed.stats),
            "{}: zeroed fault plan must not perturb the pipeline",
            p.name
        );
        assert_eq!(base.findings.len(), zeroed.findings.len(), "{}", p.name);
        assert_eq!(base.health.total_injected_faults(), 0);
        assert_eq!(zeroed.health.total_injected_faults(), 0);
        assert!(base.quarantined.is_empty() && zeroed.quarantined.is_empty());
    }
}

#[test]
fn same_fault_seed_reproduces_the_run() {
    let a = chaos_run("Libsafe", CHAOS_SEEDS[0]);
    let b = chaos_run("Libsafe", CHAOS_SEEDS[0]);
    assert_eq!(counters(&a.stats), counters(&b.stats));
    assert_eq!(
        a.health.total_injected_faults(),
        b.health.total_injected_faults()
    );
    assert_eq!(a.quarantined.len(), b.quarantined.len());
    assert_eq!(a.findings.len(), b.findings.len());
}
