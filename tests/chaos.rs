//! Chaos suite: the pipeline under deterministic fault injection.
//!
//! Every corpus program is run with a seeded [`FaultPlan`] injecting
//! faults at 1% across three fixed seeds. The acceptance bar:
//!
//! * the supervised pipeline never panics — every injected fault is
//!   either retried past or surfaced in `quarantined` / `health`;
//! * fault injection is observable: across the seeds, faults are
//!   actually injected and accounted for;
//! * with a zeroed plan the fault layer is inert — stage counters are
//!   identical to a run without it;
//! * the same fault seed reproduces the same run.

use owl::{Owl, OwlConfig, PipelineResult, PipelineStats};
use owl_vm::FaultPlan;
use std::time::Duration;

const CHAOS_SEEDS: [u64; 3] = [11, 23, 47];
const CHAOS_RATE: f64 = 0.01;

/// The deterministic (non-`Duration`) slice of [`PipelineStats`],
/// comparable across runs.
fn counters(s: &PipelineStats) -> (usize, usize, usize, usize, usize, usize, usize, u64, u64) {
    (
        s.raw_reports,
        s.adhoc_syncs,
        s.post_annotation_reports,
        s.verifier_eliminated,
        s.remaining,
        s.vulnerable,
        s.analysis_count,
        s.analysis_work.insts_visited,
        s.analysis_work.funcs_entered,
    )
}

fn chaos_run(name: &str, seed: u64) -> PipelineResult {
    let p = owl_corpus::program(name).expect("corpus program exists");
    let cfg = OwlConfig::quick()
        .with_fault_plan(FaultPlan::uniform(seed, CHAOS_RATE))
        .with_stage_deadline(Duration::from_secs(30));
    let owl = Owl::new(&p.module, p.entry, cfg);
    owl.run(p.name, &p.workloads, &p.exploit_inputs)
}

#[test]
fn corpus_survives_fault_injection_across_seeds() {
    let mut total_faults = 0u64;
    for p in owl_corpus::all_programs() {
        for seed in CHAOS_SEEDS {
            let result = chaos_run(p.name, seed);
            assert!(
                result.error.is_none(),
                "{} seed {seed}: run-level error {:?}",
                p.name,
                result.error
            );
            total_faults += result.health.total_injected_faults();
            // Supervision accounting: quarantined entries and the
            // health counters agree, and every quarantined report
            // carries a typed cause.
            assert_eq!(
                result.health.total_quarantined(),
                result.quarantined.len() as u64,
                "{} seed {seed}",
                p.name
            );
            for q in &result.quarantined {
                assert!(!q.error.to_string().is_empty());
            }
            // Findings stay structurally sound under faults.
            for f in &result.findings {
                assert_eq!(
                    f.vulns.len(),
                    f.vuln_verifications.len(),
                    "{} seed {seed}: verifications not parallel to vulns",
                    p.name
                );
            }
        }
    }
    assert!(
        total_faults > 0,
        "1% injection across {CHAOS_SEEDS:?} must fire at least once"
    );
}

#[test]
fn atomicity_frontend_survives_fault_injection() {
    let p = owl_corpus::extensions::bank_atomicity();
    for seed in CHAOS_SEEDS {
        let cfg = OwlConfig::quick().with_fault_plan(FaultPlan::uniform(seed, CHAOS_RATE));
        let owl = Owl::new(&p.module, p.entry, cfg);
        let result = owl.run_atomicity("Bank", &p.workloads, &p.exploit_inputs);
        assert!(result.error.is_none());
        assert_eq!(
            result.health.total_quarantined(),
            result.quarantined.len() as u64
        );
    }
}

#[test]
fn zeroed_plan_is_bit_identical_to_no_fault_layer() {
    for p in owl_corpus::all_programs() {
        let base = Owl::new(&p.module, p.entry, OwlConfig::quick()).run(
            p.name,
            &p.workloads,
            &p.exploit_inputs,
        );
        let zeroed_cfg = OwlConfig::quick().with_fault_plan(FaultPlan::none());
        let zeroed = Owl::new(&p.module, p.entry, zeroed_cfg).run(
            p.name,
            &p.workloads,
            &p.exploit_inputs,
        );
        assert_eq!(
            counters(&base.stats),
            counters(&zeroed.stats),
            "{}: zeroed fault plan must not perturb the pipeline",
            p.name
        );
        assert_eq!(base.findings.len(), zeroed.findings.len(), "{}", p.name);
        assert_eq!(base.health.total_injected_faults(), 0);
        assert_eq!(zeroed.health.total_injected_faults(), 0);
        assert!(base.quarantined.is_empty() && zeroed.quarantined.is_empty());
    }
}

#[test]
fn quarantined_units_round_trip_through_the_journal() {
    use owl::journal::JournalRecord;
    use owl::{Journal, PipelineError, Stage};
    use owl_verify::AbortCause;

    // Starve the race verifier's step budget: every report aborts and
    // is quarantined with a typed stage + cause + attempt count.
    let p = owl_corpus::program("Libsafe").expect("corpus program exists");
    let mut cfg = OwlConfig::quick();
    cfg.race_verify.run_config.max_steps = 2;

    let mut dir = std::env::temp_dir();
    dir.push(format!("owl-chaos-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("journal.jsonl");

    let mut journal = Journal::open(&path).unwrap();
    let live = Owl::new(&p.module, p.entry, cfg.clone())
        .run_with_journal(p.name, &p.workloads, &p.exploit_inputs, &mut journal)
        .expect("journal I/O is healthy");
    drop(journal);
    assert!(
        !live.quarantined.is_empty(),
        "a starved step budget must quarantine every report"
    );
    for q in &live.quarantined {
        assert!(
            matches!(
                q.error,
                PipelineError::VerifierAborted {
                    stage: Stage::RaceVerify,
                    cause: AbortCause::StepBudgetExhausted,
                    ..
                }
            ),
            "unexpected quarantine cause: {:?}",
            q.error
        );
    }

    // The journal holds one `Quarantined` record per unit, preserving
    // the typed error (stage, cause, embedded attempt count) and the
    // supervisor's own counters.
    let reopened = Journal::open(&path).unwrap();
    assert!(!reopened.recovery().recovered());
    let recorded: Vec<_> = reopened
        .records()
        .iter()
        .filter_map(|r| match r {
            JournalRecord::Quarantined {
                error,
                attempts,
                key,
                ..
            } => Some((error.clone(), *attempts, key.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(recorded.len(), live.quarantined.len());
    for ((error, attempts, key), q) in recorded.iter().zip(&live.quarantined) {
        assert_eq!(
            error, &q.error,
            "stage, cause, and attempt count survive the round-trip"
        );
        assert!(*attempts >= 1, "the verification attempt count is kept");
        assert!(key.is_some(), "stage-3 quarantines keep their unit key");
    }
    drop(reopened);

    // Resume replays every quarantine from the journal: identical
    // errors and reports, zero re-appended records.
    let mut journal = Journal::open(&path).unwrap();
    let replayed = Owl::new(&p.module, p.entry, cfg)
        .run_with_journal(p.name, &p.workloads, &p.exploit_inputs, &mut journal)
        .expect("resume is clean");
    assert_eq!(
        journal.appends(),
        0,
        "a fully journaled program re-appends nothing on resume"
    );
    assert_eq!(replayed.quarantined.len(), live.quarantined.len());
    for (a, b) in replayed.quarantined.iter().zip(&live.quarantined) {
        assert_eq!(a.error, b.error);
        assert_eq!(a.race.key(), b.race.key());
    }
    assert_eq!(
        replayed.health.total_quarantined(),
        live.health.total_quarantined()
    );

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn same_fault_seed_reproduces_the_run() {
    let a = chaos_run("Libsafe", CHAOS_SEEDS[0]);
    let b = chaos_run("Libsafe", CHAOS_SEEDS[0]);
    assert_eq!(counters(&a.stats), counters(&b.stats));
    assert_eq!(
        a.health.total_injected_faults(),
        b.health.total_injected_faults()
    );
    assert_eq!(a.quarantined.len(), b.quarantined.len());
    assert_eq!(a.findings.len(), b.findings.len());
}
