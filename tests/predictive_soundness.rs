//! Soundness and determinism suite for the predictive detection
//! backends (`syncp`, `syncrev`).
//!
//! The contract under test:
//!
//! * **subsumption** — on every trace, a predictive backend's report
//!   set is a superset of the reference (vector-clock) backend's: the
//!   HB sweep still runs, prediction is strictly additive;
//! * **no unwitnessed reports** — every report beyond the reference
//!   set is backed by a validated witness reordering (`extra ≤
//!   predict_witnessed`), and the witness counters are internally
//!   consistent;
//! * **determinism** — reports and predict counters are byte-identical
//!   at any worker count and any streaming channel capacity, spilled
//!   or not;
//! * **lock discipline** — a program whose shared accesses are all
//!   protected by one mutex predicts nothing, even though the
//!   candidate enumerator considers its conflicting pairs.
//!
//! The random-program half mirrors `prop_hb.rs`: seeded programs are
//! executed once and the same trace is fed to the reference and the
//! predictive detectors, so any divergence is attributable to the
//! prediction layer alone.

use owl_ir::{FuncId, InstRef, ModuleBuilder, Type};
use owl_race::{
    explore, ExploreResult, ExplorerConfig, HbBackend, HbConfig, HbDetector, StreamConfig,
};
use owl_vm::{ProgramInput, RandomScheduler, RunConfig, TraceSink, VecSink, Vm};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::path::PathBuf;

const PREDICTIVE: [HbBackend; 2] = [HbBackend::SyncPreserving, HbBackend::SyncReversal];

fn sweep(p: &owl_corpus::CorpusProgram, backend: HbBackend, workers: usize) -> ExploreResult {
    sweep_streamed(p, backend, workers, 0, None, None)
}

fn sweep_streamed(
    p: &owl_corpus::CorpusProgram,
    backend: HbBackend,
    workers: usize,
    capacity: usize,
    budget: Option<u64>,
    spill_dir: Option<PathBuf>,
) -> ExploreResult {
    let cfg = ExplorerConfig {
        runs_per_input: 4,
        workers,
        hb_backend: backend,
        stream: StreamConfig {
            channel_capacity: capacity,
            max_trace_mem: budget,
            spill_dir,
            ..StreamConfig::default()
        },
        ..ExplorerConfig::default()
    };
    explore(&p.module, p.entry, &p.workloads, &cfg)
}

/// Identity of a report for set comparison: address plus the
/// normalized site pair.
fn keys(r: &ExploreResult) -> BTreeSet<(u64, InstRef, InstRef)> {
    r.reports
        .iter()
        .map(|r| {
            let (a, b) = r.key();
            (r.addr, a, b)
        })
        .collect()
}

fn predict_counters(r: &ExploreResult) -> (u64, u64, u64, u64) {
    (
        r.predict_candidates,
        r.predict_witnessed,
        r.predict_witness_rejected,
        r.predict_reversal_races,
    )
}

#[test]
fn predictive_backends_subsume_reference_across_corpus() {
    for p in owl_corpus::all_programs() {
        let reference = sweep(&p, HbBackend::Reference, 1);
        let ref_keys = keys(&reference);
        for backend in PREDICTIVE {
            let pred = sweep(&p, backend, 1);
            let pred_keys = keys(&pred);
            assert!(
                ref_keys.is_subset(&pred_keys),
                "{} ({backend:?}): prediction lost reference races: {:?}",
                p.name,
                ref_keys.difference(&pred_keys).collect::<Vec<_>>()
            );
            // Anything beyond the reference set must carry a witness.
            let extra = pred_keys.difference(&ref_keys).count() as u64;
            assert!(
                extra <= pred.predict_witnessed,
                "{} ({backend:?}): {extra} extra report(s) but only {} witnessed",
                p.name,
                pred.predict_witnessed
            );
            // Counter consistency: every candidate is either witnessed
            // or rejected, and reversals are a subset of witnesses.
            assert_eq!(
                pred.predict_candidates,
                pred.predict_witnessed + pred.predict_witness_rejected,
                "{} ({backend:?})",
                p.name
            );
            assert!(pred.predict_reversal_races <= pred.predict_witnessed, "{}", p.name);
            if backend == HbBackend::SyncPreserving {
                assert_eq!(
                    pred.predict_reversal_races, 0,
                    "{}: syncp must never reverse lock order",
                    p.name
                );
            }
        }
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("owl-predict-spill-{}-{tag}", std::process::id()))
}

#[test]
fn predictive_reports_identical_at_any_worker_count_and_capacity() {
    for p in owl_corpus::all_programs() {
        for backend in PREDICTIVE {
            let baseline = sweep_streamed(&p, backend, 1, 0, None, None);
            for workers in [2usize, 4] {
                let r = sweep_streamed(&p, backend, workers, 0, None, None);
                assert_eq!(
                    r.reports, baseline.reports,
                    "{} ({backend:?}, workers={workers}): reports diverge",
                    p.name
                );
                assert_eq!(predict_counters(&r), predict_counters(&baseline), "{}", p.name);
            }
            for capacity in [1usize, 1024] {
                let r = sweep_streamed(&p, backend, 1, capacity, None, None);
                assert_eq!(
                    r.reports, baseline.reports,
                    "{} ({backend:?}, capacity={capacity}): streaming diverges",
                    p.name
                );
                assert_eq!(predict_counters(&r), predict_counters(&baseline), "{}", p.name);
            }
            // Spilled replay must reconstruct the same trace and
            // therefore the same predictions.
            let dir = scratch_dir(&format!("{}-{}", p.name, backend.name()));
            let r = sweep_streamed(&p, backend, 2, 4, Some(512), Some(dir.clone()));
            let _ = std::fs::remove_dir_all(&dir);
            assert_eq!(
                r.reports, baseline.reports,
                "{} ({backend:?}): spilling changed predictions",
                p.name
            );
            assert_eq!(r.units_aborted_mem_budget, 0, "{}", p.name);
            assert_eq!(predict_counters(&r), predict_counters(&baseline), "{}", p.name);
        }
    }
}

/// Two threads hammering one global, every access under the same
/// mutex: the candidate enumerator sees conflicting cross-thread
/// pairs, but no correct reordering can make them adjacent.
#[test]
fn fully_locked_program_predicts_nothing() {
    let mut mb = ModuleBuilder::new("locked");
    let g = mb.global("g", 1, Type::I64);
    let m = mb.global("m", 1, Type::I64);
    let worker = mb.declare_func("worker", 1);
    {
        let mut b = mb.build_func(worker);
        let la = b.global_addr(m);
        let ga = b.global_addr(g);
        b.lock(la);
        b.load(ga, Type::I64);
        b.store(ga, 1);
        b.unlock(la);
        b.ret(None);
    }
    let main = mb.declare_func("main", 0);
    {
        let mut b = mb.build_func(main);
        let t1 = b.thread_create(worker, 0);
        let t2 = b.thread_create(worker, 0);
        b.thread_join(t1);
        b.thread_join(t2);
        b.ret(None);
    }
    let module = mb.finish();

    for backend in PREDICTIVE {
        let cfg = ExplorerConfig {
            runs_per_input: 4,
            hb_backend: backend,
            ..ExplorerConfig::default()
        };
        let r = explore(&module, main, &[ProgramInput::empty()], &cfg);
        assert!(r.reports.is_empty(), "{backend:?}: {:?}", r.reports);
        assert_eq!(r.predict_witnessed, 0, "{backend:?}");
        assert!(
            r.predict_candidates > 0,
            "{backend:?}: the locked pairs never reached the witness check — \
             the test is inert"
        );
    }
}

// ---- random programs ---------------------------------------------------

#[derive(Clone, Debug)]
enum Action {
    Plain { g: usize, w: bool },
    Locked { l: usize, body: Vec<(usize, bool)> },
    Yield,
}

fn action_strategy(globals: usize) -> impl Strategy<Value = Action> {
    prop_oneof![
        (0..globals, any::<bool>()).prop_map(|(g, w)| Action::Plain { g, w }),
        (0..2usize, prop::collection::vec((0..globals, any::<bool>()), 1..3))
            .prop_map(|(l, body)| Action::Locked { l, body }),
        Just(Action::Yield),
    ]
}

fn program_strategy() -> impl Strategy<Value = Vec<Vec<Action>>> {
    prop::collection::vec(prop::collection::vec(action_strategy(3), 1..6), 2..4)
}

fn build(threads: &[Vec<Action>]) -> (owl_ir::Module, FuncId) {
    let mut mb = ModuleBuilder::new("prop-predict");
    let globals: Vec<_> = (0..3)
        .map(|i| mb.global(format!("g{i}"), 1, Type::I64))
        .collect();
    let mutexes: Vec<_> = (0..2)
        .map(|i| mb.global(format!("m{i}"), 1, Type::I64))
        .collect();
    let fns: Vec<FuncId> = (0..threads.len())
        .map(|i| mb.declare_func(format!("t{i}"), 1))
        .collect();
    for (f, actions) in fns.iter().zip(threads) {
        let mut b = mb.build_func(*f);
        for a in actions {
            match a {
                Action::Plain { g, w } => {
                    let addr = b.global_addr(globals[*g]);
                    if *w {
                        b.store(addr, 1);
                    } else {
                        b.load(addr, Type::I64);
                    }
                }
                Action::Locked { l, body } => {
                    let la = b.global_addr(mutexes[*l]);
                    b.lock(la);
                    for (g, w) in body {
                        let addr = b.global_addr(globals[*g]);
                        if *w {
                            b.store(addr, 2);
                        } else {
                            b.load(addr, Type::I64);
                        }
                    }
                    b.unlock(la);
                }
                Action::Yield => {
                    b.yield_now();
                }
            }
        }
        b.ret(None);
    }
    let main = mb.declare_func("main", 0);
    {
        let mut b = mb.build_func(main);
        let tids: Vec<_> = fns.iter().map(|&f| b.thread_create(f, 0)).collect();
        for t in tids {
            b.thread_join(t);
        }
        b.ret(None);
    }
    (mb.finish(), main)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On the same trace, each predictive backend reports a superset
    /// of the reference backend, every extra report is witnessed, and
    /// `syncrev` subsumes `syncp` (sync reversal only relaxes the
    /// witness space, never shrinks it).
    #[test]
    fn predictive_subsumes_reference_on_random_programs(
        threads in program_strategy(),
        seed in 0u64..48,
    ) {
        let (m, main) = build(&threads);
        let mut sink = VecSink::default();
        let mut sched = RandomScheduler::new(seed);
        let vm = Vm::new(&m, main, ProgramInput::empty(), RunConfig::default());
        let _ = vm.run(&mut sched, &mut sink);

        let analyze = |backend: HbBackend| {
            let mut det = HbDetector::new(HbConfig { backend, ..HbConfig::default() });
            for ev in &sink.events {
                det.on_event(ev);
            }
            det.run_prediction();
            let stats = det.predict_stats();
            let reports = det.finish(&m);
            let keys: BTreeSet<_> = reports
                .iter()
                .map(|r| { let (a, b) = r.key(); (r.addr, a, b) })
                .collect();
            (keys, stats)
        };

        let (ref_keys, _) = analyze(HbBackend::Reference);
        let (syncp_keys, syncp) = analyze(HbBackend::SyncPreserving);
        let (syncrev_keys, syncrev) = analyze(HbBackend::SyncReversal);

        prop_assert!(ref_keys.is_subset(&syncp_keys),
            "syncp lost reference races: {:?}", ref_keys.difference(&syncp_keys).collect::<Vec<_>>());
        prop_assert!(ref_keys.is_subset(&syncrev_keys),
            "syncrev lost reference races: {:?}", ref_keys.difference(&syncrev_keys).collect::<Vec<_>>());
        prop_assert!(syncp_keys.is_subset(&syncrev_keys),
            "syncrev lost syncp races: {:?}", syncp_keys.difference(&syncrev_keys).collect::<Vec<_>>());

        let extra_p = syncp_keys.difference(&ref_keys).count() as u64;
        let extra_r = syncrev_keys.difference(&ref_keys).count() as u64;
        prop_assert!(extra_p <= syncp.witnessed);
        prop_assert!(extra_r <= syncrev.witnessed);
        prop_assert_eq!(syncp.reversal_races, 0);
        prop_assert_eq!(syncp.candidates, syncp.witnessed + syncp.witness_rejected);
        prop_assert_eq!(syncrev.candidates, syncrev.witnessed + syncrev.witness_rejected);
    }
}
