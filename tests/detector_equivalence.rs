//! Differential testing of the detector backends across the corpus.
//!
//! The epoch fast path is only allowed to be *fast* — never different.
//! For every corpus program it must produce exactly the reference
//! (vector-clock) backend's results: the identical deduplicated report
//! set, suppression counts, and cap-drop counts. Parallel exploration
//! must likewise be indistinguishable from serial exploration at any
//! worker count.

use owl_ir::InstRef;
use owl_race::{explore, ExploreResult, ExplorerConfig, HbAnnotation, HbBackend, StreamConfig};
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;

fn sweep(
    p: &owl_corpus::CorpusProgram,
    backend: HbBackend,
    workers: usize,
    annotations: Vec<HbAnnotation>,
) -> ExploreResult {
    sweep_elided(p, backend, workers, annotations, None)
}

fn sweep_elided(
    p: &owl_corpus::CorpusProgram,
    backend: HbBackend,
    workers: usize,
    annotations: Vec<HbAnnotation>,
    elided_sites: Option<Arc<HashSet<InstRef>>>,
) -> ExploreResult {
    let cfg = ExplorerConfig {
        runs_per_input: 4,
        workers,
        hb_backend: backend,
        annotations,
        elided_sites,
        ..ExplorerConfig::default()
    };
    explore(&p.module, p.entry, &p.workloads, &cfg)
}

#[test]
fn epoch_backend_matches_reference_across_corpus() {
    for p in owl_corpus::all_programs() {
        let reference = sweep(&p, HbBackend::Reference, 1, Vec::new());
        for workers in [1usize, 2, 4] {
            let epoch = sweep(&p, HbBackend::Epoch, workers, Vec::new());
            assert_eq!(
                epoch.reports, reference.reports,
                "{} (workers={workers}): epoch reports diverge",
                p.name
            );
            assert_eq!(epoch.suppressed, reference.suppressed, "{}", p.name);
            assert_eq!(epoch.reports_dropped, reference.reports_dropped, "{}", p.name);
            assert_eq!(epoch.runs, reference.runs, "{}", p.name);
        }

        // Annotating every discovered pair as adhoc sync must drive
        // both backends down the same suppression path.
        let annotations: Vec<HbAnnotation> = reference
            .reports
            .iter()
            .map(|r| {
                let (write_site, read_site) = r.key();
                HbAnnotation {
                    write_site,
                    read_site,
                }
            })
            .collect();
        if annotations.is_empty() {
            continue;
        }
        let ref_ann = sweep(&p, HbBackend::Reference, 1, annotations.clone());
        let epoch_ann = sweep(&p, HbBackend::Epoch, 4, annotations);
        assert_eq!(epoch_ann.reports, ref_ann.reports, "{} annotated", p.name);
        assert_eq!(epoch_ann.suppressed, ref_ann.suppressed, "{} annotated", p.name);
        assert_eq!(
            epoch_ann.reports_dropped, ref_ann.reports_dropped,
            "{} annotated",
            p.name
        );
    }
}

/// The check-elision pre-pass is only allowed to *skip work* — never
/// to change results. With the elided site set installed, the epoch
/// backend must still match the un-elided reference backend exactly,
/// at every worker count, and elision must actually fire somewhere in
/// the corpus (otherwise this test proves nothing).
#[test]
fn elision_never_changes_report_streams() {
    let mut total_elided_events = 0;
    for p in owl_corpus::all_programs() {
        let pre = owl_static::ElisionPrepass::run(&p.module, p.entry);
        let elided = pre.elided_sites();
        let reference = sweep(&p, HbBackend::Reference, 1, Vec::new());
        let epoch_plain = sweep(&p, HbBackend::Epoch, 1, Vec::new());
        for workers in [1usize, 2, 4] {
            let e = sweep_elided(
                &p,
                HbBackend::Epoch,
                workers,
                Vec::new(),
                Some(Arc::clone(&elided)),
            );
            assert_eq!(
                e.reports, reference.reports,
                "{} (workers={workers}): elided epoch diverges from reference",
                p.name
            );
            assert_eq!(e.suppressed, reference.suppressed, "{}", p.name);
            assert_eq!(e.reports_dropped, reference.reports_dropped, "{}", p.name);
            assert_eq!(e.runs, reference.runs, "{}", p.name);
            assert_eq!(
                e.reports, epoch_plain.reports,
                "{} (workers={workers}): elision changed the epoch backend's reports",
                p.name
            );
            total_elided_events += e.events_elided;
        }
    }
    assert!(
        total_elided_events > 0,
        "elision never fired across the whole corpus — the pre-pass is inert"
    );
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("owl-eq-spill-{}-{tag}", std::process::id()))
}

fn sweep_streamed(
    p: &owl_corpus::CorpusProgram,
    backend: HbBackend,
    workers: usize,
    capacity: usize,
    budget: Option<u64>,
    spill_dir: Option<PathBuf>,
) -> ExploreResult {
    let cfg = ExplorerConfig {
        runs_per_input: 4,
        workers,
        hb_backend: backend,
        stream: StreamConfig {
            channel_capacity: capacity,
            max_trace_mem: budget,
            spill_dir,
            ..StreamConfig::default()
        },
        ..ExplorerConfig::default()
    };
    explore(&p.module, p.entry, &p.workloads, &cfg)
}

/// The streaming hand-off and the spill layer are only allowed to
/// bound *memory* — never to change results. Across the corpus, every
/// channel capacity (including the inline capacity-0 baseline), spill
/// threshold, and worker count must produce byte-identical report
/// streams.
#[test]
fn streaming_and_spill_never_change_report_streams() {
    for p in owl_corpus::all_programs() {
        // Capacity 0 is the materialized (inline, no channel) path.
        let baseline = sweep_streamed(&p, HbBackend::Epoch, 1, 0, None, None);
        for capacity in [1usize, 4, 1024] {
            let s = sweep_streamed(&p, HbBackend::Epoch, 1, capacity, None, None);
            assert_eq!(
                s.reports, baseline.reports,
                "{} (capacity={capacity}): streaming diverges from inline",
                p.name
            );
            assert_eq!(s.suppressed, baseline.suppressed, "{}", p.name);
            assert_eq!(s.reports_dropped, baseline.reports_dropped, "{}", p.name);
        }
        let dir = scratch_dir(p.name);
        for workers in [1usize, 2, 4] {
            let s = sweep_streamed(
                &p,
                HbBackend::Epoch,
                workers,
                4,
                Some(512),
                Some(dir.clone()),
            );
            assert_eq!(
                s.reports, baseline.reports,
                "{} (workers={workers}): spilling changed the report stream",
                p.name
            );
            assert_eq!(
                s.units_aborted_mem_budget, 0,
                "{} (workers={workers}): spill path aborted despite a spill dir",
                p.name
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A trace at least 10× the memory budget must complete under the
/// bounded pipeline with byte-identical reports, and both backends
/// must degrade identically (same reports *and* the same GC count —
/// the epoch and reference collectors reclaim exactly the same cells).
#[test]
fn trace_ten_times_budget_completes_with_identical_reports() {
    let p = owl_corpus::program("MySQL").expect("corpus program");
    let budget = 256u64;
    let baseline = sweep_streamed(&p, HbBackend::Epoch, 1, 0, None, None);

    let dir = scratch_dir("tenx-epoch");
    let epoch = sweep_streamed(&p, HbBackend::Epoch, 1, 4, Some(budget), Some(dir.clone()));
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(epoch.reports, baseline.reports, "bounded epoch diverges");
    assert_eq!(epoch.units_aborted_mem_budget, 0);
    assert!(
        epoch.trace_spilled_bytes >= 10 * budget,
        "trace only spilled {} bytes against a {budget}-byte budget — \
         not a 10x-over-budget workload",
        epoch.trace_spilled_bytes
    );
    assert!(epoch.trace_spill_segments > 0);

    let dir = scratch_dir("tenx-ref");
    let reference =
        sweep_streamed(&p, HbBackend::Reference, 1, 4, Some(budget), Some(dir.clone()));
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(
        reference.reports, epoch.reports,
        "backends diverge under memory pressure"
    );
    assert_eq!(
        reference.shadow_cells_gced, epoch.shadow_cells_gced,
        "shadow GC reclaimed different cell counts across backends"
    );
    assert_eq!(reference.trace_spilled_bytes, epoch.trace_spilled_bytes);
    assert_eq!(reference.trace_spill_segments, epoch.trace_spill_segments);
}

/// Over the hard limit with nowhere to spill, the unit must abort with
/// the typed memory-budget verdict — a `PipelineResult` error the
/// campaign can quarantine — never an OOM or a silent truncation.
#[test]
fn over_budget_unit_aborts_with_typed_memory_budget_error() {
    let p = owl_corpus::program("MySQL").expect("corpus program");
    let mut cfg = owl::OwlConfig::quick();
    cfg.detect.stream.max_trace_mem = Some(64);
    cfg.detect.stream.spill_dir = None;
    let owl_pipeline = owl::Owl::new(&p.module, p.entry, cfg);
    let result = owl_pipeline.run(p.name, &p.workloads, &p.exploit_inputs);
    match &result.error {
        Some(owl::PipelineError::VerifierAborted {
            stage,
            cause,
            attempts,
        }) => {
            assert_eq!(*stage, owl::Stage::Detect);
            assert_eq!(*cause, owl::owl_verify::AbortCause::MemoryBudget);
            assert!(*attempts > 0, "abort carries no unit count");
        }
        other => panic!("expected a typed memory-budget abort, got {other:?}"),
    }
    assert!(result.findings.is_empty());
    assert!(result.health.units_aborted_mem_budget > 0);
    assert!(result.health.mem_pressure_events > 0);
}

fn sweep_forked(
    p: &owl_corpus::CorpusProgram,
    backend: HbBackend,
    fork: bool,
    workers: usize,
    capacity: usize,
    budget: Option<u64>,
    spill_dir: Option<PathBuf>,
) -> ExploreResult {
    let cfg = ExplorerConfig {
        runs_per_input: 4,
        workers,
        hb_backend: backend,
        fork,
        stream: StreamConfig {
            channel_capacity: capacity,
            max_trace_mem: budget,
            spill_dir,
            ..StreamConfig::default()
        },
        ..ExplorerConfig::default()
    };
    explore(&p.module, p.entry, &p.workloads, &cfg)
}

/// Asserts fork-on and fork-off produced byte-identical results:
/// reports, outcomes (schedules, violations, outputs, fault records),
/// and every pre-existing counter. The four fork counters are the one
/// permitted difference — they describe *how* the sweep executed, not
/// what it found.
fn assert_fork_equivalent(forked: &ExploreResult, scratch: &ExploreResult, ctx: &str) {
    assert_eq!(forked.reports, scratch.reports, "{ctx}: reports diverge");
    assert_eq!(forked.outcomes, scratch.outcomes, "{ctx}: outcomes diverge");
    assert_eq!(forked.runs, scratch.runs, "{ctx}");
    assert_eq!(forked.suppressed, scratch.suppressed, "{ctx}");
    assert_eq!(forked.reports_dropped, scratch.reports_dropped, "{ctx}");
    assert_eq!(forked.injected_faults, scratch.injected_faults, "{ctx}");
    assert_eq!(forked.events_elided, scratch.events_elided, "{ctx}");
    assert_eq!(forked.shadow_cells_gced, scratch.shadow_cells_gced, "{ctx}");
    assert_eq!(
        forked.trace_spilled_bytes, scratch.trace_spilled_bytes,
        "{ctx}: spill bytes diverge"
    );
    assert_eq!(
        forked.trace_spill_segments, scratch.trace_spill_segments,
        "{ctx}"
    );
    assert_eq!(
        forked.mem_pressure_events, scratch.mem_pressure_events,
        "{ctx}"
    );
    assert_eq!(
        forked.units_aborted_mem_budget, scratch.units_aborted_mem_budget,
        "{ctx}"
    );
    assert_eq!(
        (
            forked.predict_candidates,
            forked.predict_witnessed,
            forked.predict_witness_rejected,
            forked.predict_reversal_races
        ),
        (
            scratch.predict_candidates,
            scratch.predict_witnessed,
            scratch.predict_witness_rejected,
            scratch.predict_reversal_races
        ),
        "{ctx}: predict counters diverge"
    );
    assert_eq!(
        (
            scratch.units_forked,
            scratch.prefix_steps_saved,
            scratch.schedules_deduped,
            scratch.snapshot_bytes
        ),
        (0, 0, 0, 0),
        "{ctx}: scratch mode must report zero fork counters"
    );
}

/// Prefix-sharing fork mode is only allowed to *skip re-execution* —
/// never to change results. Fork-on must match fork-off byte-for-byte
/// across the corpus, under all four backends, at every worker count
/// and channel capacity, and under a spill budget. The fork counters
/// must also show the machinery actually engaged somewhere, or this
/// test proves nothing.
#[test]
fn fork_mode_never_changes_results() {
    let mut total_forked = 0u64;
    let mut total_prefix_saved = 0u64;
    for p in owl_corpus::all_programs() {
        for backend in [
            HbBackend::Reference,
            HbBackend::Epoch,
            HbBackend::SyncPreserving,
            HbBackend::SyncReversal,
        ] {
            let scratch = sweep_forked(&p, backend, false, 1, 1024, None, None);
            for workers in [1usize, 2, 4] {
                for capacity in [0usize, 1, 1024] {
                    let scratch_cap = sweep_forked(&p, backend, false, 1, capacity, None, None);
                    let forked = sweep_forked(&p, backend, true, workers, capacity, None, None);
                    let ctx =
                        format!("{} ({backend:?}, workers={workers}, capacity={capacity})", p.name);
                    assert_fork_equivalent(&forked, &scratch_cap, &ctx);
                    assert_eq!(
                        forked.reports, scratch.reports,
                        "{ctx}: capacity changed reports"
                    );
                    total_forked += forked.units_forked;
                    total_prefix_saved += forked.prefix_steps_saved;
                }
            }
        }
        // Under a spill budget the per-unit spill/pressure counters
        // must still come out identical: the forked units inherit the
        // shared prefix's window state and spill at the same event
        // boundaries a scratch unit would.
        let dir_scratch = scratch_dir(&format!("fork-off-{}", p.name));
        let dir_forked = scratch_dir(&format!("fork-on-{}", p.name));
        let scratch = sweep_forked(
            &p,
            HbBackend::Epoch,
            false,
            1,
            4,
            Some(512),
            Some(dir_scratch.clone()),
        );
        for workers in [1usize, 2, 4] {
            let forked = sweep_forked(
                &p,
                HbBackend::Epoch,
                true,
                workers,
                4,
                Some(512),
                Some(dir_forked.clone()),
            );
            assert_fork_equivalent(
                &forked,
                &scratch,
                &format!("{} (budgeted, workers={workers})", p.name),
            );
        }
        let _ = std::fs::remove_dir_all(&dir_scratch);
        let _ = std::fs::remove_dir_all(&dir_forked);
    }
    assert!(
        total_forked > 0,
        "fork mode never launched a unit from a snapshot across the corpus — inert"
    );
    assert!(
        total_prefix_saved > 0,
        "fork mode never saved a prefix step across the corpus — inert"
    );
}

#[test]
fn parallel_exploration_matches_serial_for_both_backends() {
    for p in owl_corpus::all_programs() {
        for backend in [HbBackend::Reference, HbBackend::Epoch] {
            let serial = sweep(&p, backend, 1, Vec::new());
            let pooled = sweep(&p, backend, 4, Vec::new());
            assert_eq!(
                pooled.reports, serial.reports,
                "{} ({backend:?}): workers=4 diverges from serial",
                p.name
            );
            assert_eq!(pooled.suppressed, serial.suppressed, "{}", p.name);
            assert_eq!(pooled.reports_dropped, serial.reports_dropped, "{}", p.name);
            assert_eq!(pooled.runs, serial.runs, "{}", p.name);
        }
    }
}
