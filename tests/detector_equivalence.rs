//! Differential testing of the detector backends across the corpus.
//!
//! The epoch fast path is only allowed to be *fast* — never different.
//! For every corpus program it must produce exactly the reference
//! (vector-clock) backend's results: the identical deduplicated report
//! set, suppression counts, and cap-drop counts. Parallel exploration
//! must likewise be indistinguishable from serial exploration at any
//! worker count.

use owl_race::{explore, ExploreResult, ExplorerConfig, HbAnnotation, HbBackend};

fn sweep(
    p: &owl_corpus::CorpusProgram,
    backend: HbBackend,
    workers: usize,
    annotations: Vec<HbAnnotation>,
) -> ExploreResult {
    let cfg = ExplorerConfig {
        runs_per_input: 4,
        workers,
        hb_backend: backend,
        annotations,
        ..ExplorerConfig::default()
    };
    explore(&p.module, p.entry, &p.workloads, &cfg)
}

#[test]
fn epoch_backend_matches_reference_across_corpus() {
    for p in owl_corpus::all_programs() {
        let reference = sweep(&p, HbBackend::Reference, 1, Vec::new());
        for workers in [1usize, 2, 4] {
            let epoch = sweep(&p, HbBackend::Epoch, workers, Vec::new());
            assert_eq!(
                epoch.reports, reference.reports,
                "{} (workers={workers}): epoch reports diverge",
                p.name
            );
            assert_eq!(epoch.suppressed, reference.suppressed, "{}", p.name);
            assert_eq!(epoch.reports_dropped, reference.reports_dropped, "{}", p.name);
            assert_eq!(epoch.runs, reference.runs, "{}", p.name);
        }

        // Annotating every discovered pair as adhoc sync must drive
        // both backends down the same suppression path.
        let annotations: Vec<HbAnnotation> = reference
            .reports
            .iter()
            .map(|r| {
                let (write_site, read_site) = r.key();
                HbAnnotation {
                    write_site,
                    read_site,
                }
            })
            .collect();
        if annotations.is_empty() {
            continue;
        }
        let ref_ann = sweep(&p, HbBackend::Reference, 1, annotations.clone());
        let epoch_ann = sweep(&p, HbBackend::Epoch, 4, annotations);
        assert_eq!(epoch_ann.reports, ref_ann.reports, "{} annotated", p.name);
        assert_eq!(epoch_ann.suppressed, ref_ann.suppressed, "{} annotated", p.name);
        assert_eq!(
            epoch_ann.reports_dropped, ref_ann.reports_dropped,
            "{} annotated",
            p.name
        );
    }
}

#[test]
fn parallel_exploration_matches_serial_for_both_backends() {
    for p in owl_corpus::all_programs() {
        for backend in [HbBackend::Reference, HbBackend::Epoch] {
            let serial = sweep(&p, backend, 1, Vec::new());
            let pooled = sweep(&p, backend, 4, Vec::new());
            assert_eq!(
                pooled.reports, serial.reports,
                "{} ({backend:?}): workers=4 diverges from serial",
                p.name
            );
            assert_eq!(pooled.suppressed, serial.suppressed, "{}", p.name);
            assert_eq!(pooled.reports_dropped, serial.reports_dropped, "{}", p.name);
            assert_eq!(pooled.runs, serial.runs, "{}", p.name);
        }
    }
}
