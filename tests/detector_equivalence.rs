//! Differential testing of the detector backends across the corpus.
//!
//! The epoch fast path is only allowed to be *fast* — never different.
//! For every corpus program it must produce exactly the reference
//! (vector-clock) backend's results: the identical deduplicated report
//! set, suppression counts, and cap-drop counts. Parallel exploration
//! must likewise be indistinguishable from serial exploration at any
//! worker count.

use owl_ir::InstRef;
use owl_race::{explore, ExploreResult, ExplorerConfig, HbAnnotation, HbBackend};
use std::collections::HashSet;
use std::sync::Arc;

fn sweep(
    p: &owl_corpus::CorpusProgram,
    backend: HbBackend,
    workers: usize,
    annotations: Vec<HbAnnotation>,
) -> ExploreResult {
    sweep_elided(p, backend, workers, annotations, None)
}

fn sweep_elided(
    p: &owl_corpus::CorpusProgram,
    backend: HbBackend,
    workers: usize,
    annotations: Vec<HbAnnotation>,
    elided_sites: Option<Arc<HashSet<InstRef>>>,
) -> ExploreResult {
    let cfg = ExplorerConfig {
        runs_per_input: 4,
        workers,
        hb_backend: backend,
        annotations,
        elided_sites,
        ..ExplorerConfig::default()
    };
    explore(&p.module, p.entry, &p.workloads, &cfg)
}

#[test]
fn epoch_backend_matches_reference_across_corpus() {
    for p in owl_corpus::all_programs() {
        let reference = sweep(&p, HbBackend::Reference, 1, Vec::new());
        for workers in [1usize, 2, 4] {
            let epoch = sweep(&p, HbBackend::Epoch, workers, Vec::new());
            assert_eq!(
                epoch.reports, reference.reports,
                "{} (workers={workers}): epoch reports diverge",
                p.name
            );
            assert_eq!(epoch.suppressed, reference.suppressed, "{}", p.name);
            assert_eq!(epoch.reports_dropped, reference.reports_dropped, "{}", p.name);
            assert_eq!(epoch.runs, reference.runs, "{}", p.name);
        }

        // Annotating every discovered pair as adhoc sync must drive
        // both backends down the same suppression path.
        let annotations: Vec<HbAnnotation> = reference
            .reports
            .iter()
            .map(|r| {
                let (write_site, read_site) = r.key();
                HbAnnotation {
                    write_site,
                    read_site,
                }
            })
            .collect();
        if annotations.is_empty() {
            continue;
        }
        let ref_ann = sweep(&p, HbBackend::Reference, 1, annotations.clone());
        let epoch_ann = sweep(&p, HbBackend::Epoch, 4, annotations);
        assert_eq!(epoch_ann.reports, ref_ann.reports, "{} annotated", p.name);
        assert_eq!(epoch_ann.suppressed, ref_ann.suppressed, "{} annotated", p.name);
        assert_eq!(
            epoch_ann.reports_dropped, ref_ann.reports_dropped,
            "{} annotated",
            p.name
        );
    }
}

/// The check-elision pre-pass is only allowed to *skip work* — never
/// to change results. With the elided site set installed, the epoch
/// backend must still match the un-elided reference backend exactly,
/// at every worker count, and elision must actually fire somewhere in
/// the corpus (otherwise this test proves nothing).
#[test]
fn elision_never_changes_report_streams() {
    let mut total_elided_events = 0;
    for p in owl_corpus::all_programs() {
        let pre = owl_static::ElisionPrepass::run(&p.module, p.entry);
        let elided = pre.elided_sites();
        let reference = sweep(&p, HbBackend::Reference, 1, Vec::new());
        let epoch_plain = sweep(&p, HbBackend::Epoch, 1, Vec::new());
        for workers in [1usize, 2, 4] {
            let e = sweep_elided(
                &p,
                HbBackend::Epoch,
                workers,
                Vec::new(),
                Some(Arc::clone(&elided)),
            );
            assert_eq!(
                e.reports, reference.reports,
                "{} (workers={workers}): elided epoch diverges from reference",
                p.name
            );
            assert_eq!(e.suppressed, reference.suppressed, "{}", p.name);
            assert_eq!(e.reports_dropped, reference.reports_dropped, "{}", p.name);
            assert_eq!(e.runs, reference.runs, "{}", p.name);
            assert_eq!(
                e.reports, epoch_plain.reports,
                "{} (workers={workers}): elision changed the epoch backend's reports",
                p.name
            );
            total_elided_events += e.events_elided;
        }
    }
    assert!(
        total_elided_events > 0,
        "elision never fired across the whole corpus — the pre-pass is inert"
    );
}

#[test]
fn parallel_exploration_matches_serial_for_both_backends() {
    for p in owl_corpus::all_programs() {
        for backend in [HbBackend::Reference, HbBackend::Epoch] {
            let serial = sweep(&p, backend, 1, Vec::new());
            let pooled = sweep(&p, backend, 4, Vec::new());
            assert_eq!(
                pooled.reports, serial.reports,
                "{} ({backend:?}): workers=4 diverges from serial",
                p.name
            );
            assert_eq!(pooled.suppressed, serial.suppressed, "{}", p.name);
            assert_eq!(pooled.reports_dropped, serial.reports_dropped, "{}", p.name);
            assert_eq!(pooled.runs, serial.runs, "{}", p.name);
        }
    }
}
