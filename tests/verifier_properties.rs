//! Dynamic-verifier integration properties: the race verifier confirms
//! the corpus's real attack races and eliminates the input-gated noise
//! races (the R.V.E. column of Table 3), and the vulnerability
//! verifier's diverged-branch hints behave as §6.2 describes.

use owl_race::{explore, ExplorerConfig};
use owl_static::{VulnAnalyzer, VulnConfig};
use owl_verify::{RaceVerifier, RaceVerifyConfig, VulnVerifier, VulnVerifyConfig};
use owl_vm::ProgramInput;

#[test]
fn attack_races_verify_on_the_primary_workload() {
    for name in ["Libsafe", "SSDB", "MySQL", "Linux", "Chrome", "Apache"] {
        let p = owl_corpus::program(name).unwrap();
        let raw = explore(
            &p.module,
            p.entry,
            &p.workloads,
            &ExplorerConfig {
                runs_per_input: 12,
                ..Default::default()
            },
        );
        let verifier = RaceVerifier::new(
            &p.module,
            RaceVerifyConfig {
                max_schedules: 12,
                ..Default::default()
            },
        );
        for a in &p.attacks {
            let report = raw
                .reports_on(a.race_global)
                .next()
                .unwrap_or_else(|| panic!("{name}: no report on {}", a.race_global));
            let v = verifier.verify(p.entry, p.primary_workload(), report);
            assert!(
                v.confirmed,
                "{name}: {} race must be verifiable in the racing moment",
                a.race_global
            );
            let hints = v.hints.unwrap();
            assert_eq!(hints.global_name.as_deref(), Some(a.race_global));
        }
    }
}

#[test]
fn gated_noise_races_are_eliminated_under_the_primary_workload() {
    // The extended-coverage workload exposes `noise_gated_*` races; the
    // verifier re-executes only the primary workload, where that code
    // never runs — so they cannot be confirmed (Table 3's R.V.E.).
    let p = owl_corpus::program("Memcached").unwrap();
    let raw = explore(
        &p.module,
        p.entry,
        &p.workloads,
        &ExplorerConfig {
            runs_per_input: 12,
            ..Default::default()
        },
    );
    let gated: Vec<_> = raw
        .reports
        .iter()
        .filter(|r| {
            r.global_name
                .as_deref()
                .is_some_and(|n| n.starts_with("noise_gated"))
        })
        .take(5)
        .collect();
    assert!(!gated.is_empty(), "gated noise must flood the detector");
    let verifier = RaceVerifier::new(
        &p.module,
        RaceVerifyConfig {
            max_schedules: 4,
            ..Default::default()
        },
    );
    for r in gated {
        let v = verifier.verify(p.entry, p.primary_workload(), r);
        assert!(
            !v.confirmed,
            "gated race on {:?} must not verify under the primary workload",
            r.global_name
        );
    }
}

#[test]
fn always_on_noise_races_do_verify() {
    // Real, always-on benign races verify — that is exactly why OWL
    // needs the *vulnerability* analysis stage after verification.
    let p = owl_corpus::program("Memcached").unwrap();
    let raw = explore(
        &p.module,
        p.entry,
        &p.workloads,
        &ExplorerConfig {
            runs_per_input: 12,
            ..Default::default()
        },
    );
    let stat_race = raw
        .reports
        .iter()
        .find(|r| {
            r.global_name
                .as_deref()
                .is_some_and(|n| n.starts_with("noise_stat"))
        })
        .expect("always-on noise reported");
    let verifier = RaceVerifier::new(&p.module, RaceVerifyConfig::default());
    let v = verifier.verify(p.entry, p.primary_workload(), stat_race);
    assert!(v.confirmed, "always-on noise race is real");
    // ... but harmless: Algorithm 1 finds no vulnerable site.
    let read = stat_race.read_access().unwrap();
    let mut an = VulnAnalyzer::new(&p.module, VulnConfig::default());
    let (vulns, _) = an.analyze(read.site, &read.stack);
    assert!(vulns.is_empty(), "benign counter produced hints: {vulns:?}");
}

#[test]
fn vuln_verifier_reports_diverged_branches_on_wrong_inputs() {
    // MySQL's privilege-escalation hint: with FLUSH PRIVILEGES disabled
    // the gating branch never turns, and the verifier must say which
    // branch diverged.
    let p = owl_corpus::program("MySQL").unwrap();
    let raw = explore(
        &p.module,
        p.entry,
        &p.workloads,
        &ExplorerConfig {
            runs_per_input: 12,
            ..Default::default()
        },
    );
    let report = raw
        .reports_on("acl_table")
        .next()
        .expect("acl race")
        .clone();
    let read = report.read_access().unwrap();
    let mut an = VulnAnalyzer::new(&p.module, VulnConfig::default());
    let (vulns, _) = an.analyze(read.site, &read.stack);
    let priv_hint = vulns
        .iter()
        .find(|v| v.class == owl_ir::VulnClass::PrivilegeOp)
        .expect("privilege hint");

    let verifier = VulnVerifier::new(
        &p.module,
        VulnVerifyConfig {
            schedules_per_input: 3,
            ..Default::default()
        },
    );
    // No flush, no set-password, unprivileged uid: the grant is
    // unreachable.
    let quiet = ProgramInput::new(vec![0, 0, 0, 5, 0, 0, 0, 0]);
    let v = verifier.verify(p.entry, &[quiet], priv_hint);
    assert!(!v.reached, "grant must be unreachable without the flush");
    if !priv_hint.branches.is_empty() {
        assert!(
            !v.diverged_branches.is_empty() || !v.branches_hit.is_empty(),
            "branch feedback expected: {v:?}"
        );
    }
    // With the exploit input the same hint verifies.
    let v2 = verifier.verify(p.entry, &p.exploit_inputs, priv_hint);
    assert!(v2.reached, "exploit input reaches the grant: {v2:?}");
}
