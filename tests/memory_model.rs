//! Memory-model properties of the static analyses.
//!
//! Two contracts back the memory-aware extension of Algorithm 1:
//!
//! * **Points-to soundness** — whenever two accesses touch the *same
//!   concrete address* in some execution, the flow-insensitive Andersen
//!   solution must answer `may_alias = true` for their address
//!   operands. The VM never reuses addresses (bump allocation with red
//!   zones), so equal concrete addresses are the ground truth for
//!   aliasing, and the property is checked against full traces of
//!   every corpus program.
//! * **Summary determinism** — replaying a walk from the summary cache
//!   must produce exactly the reports a cold walk produces, at a lower
//!   traversal cost.

use owl_ir::{Inst, InstRef, Module, Operand};
use owl_ir::analysis::PointsTo;
use owl_static::{SummaryCache, VulnAnalyzer, VulnConfig};
use owl_vm::{EventKind, RandomScheduler, RunConfig, TraceEvent, VecSink, Vm};
use std::sync::Arc;

/// The address operand of a memory-access instruction.
fn addr_operand(module: &Module, site: InstRef) -> Option<Operand> {
    match module.func(site.func).inst(site.inst) {
        Inst::Load { addr, .. }
        | Inst::AtomicLoad { addr }
        | Inst::Store { addr, .. }
        | Inst::AtomicStore { addr, .. } => Some(*addr),
        _ => None,
    }
}

/// Collects a full trace of `program` under one scheduler seed.
fn trace_of(p: &owl_corpus::CorpusProgram, input: &owl_vm::ProgramInput, seed: u64) -> Vec<TraceEvent> {
    let mut sink = VecSink::default();
    let mut sched = RandomScheduler::new(seed);
    let vm = Vm::new(&p.module, p.entry, input.clone(), RunConfig::default());
    vm.run(&mut sched, &mut sink);
    sink.events
}

#[test]
fn may_alias_over_approximates_concrete_coincidence() {
    let mut programs = owl_corpus::all_programs();
    programs.extend([
        owl_corpus::extensions::heap_relay(),
        owl_corpus::extensions::cache_relay(),
    ]);
    for p in &programs {
        let pts = PointsTo::new(&p.module);
        // Distinct (site, site) pairs already checked, to bound cost.
        let mut checked = std::collections::HashSet::new();
        let inputs: Vec<_> = p
            .workloads
            .iter()
            .chain(p.exploit_inputs.iter())
            .cloned()
            .collect();
        for (i, input) in inputs.iter().enumerate() {
            let events = trace_of(p, input, i as u64);
            // Group data accesses by the concrete address they touched.
            let mut by_addr: std::collections::HashMap<u64, Vec<InstRef>> =
                std::collections::HashMap::new();
            for e in &events {
                if let EventKind::Read { addr, .. } | EventKind::Write { addr, .. } = e.kind {
                    if addr_operand(&p.module, e.site).is_some() {
                        let sites = by_addr.entry(addr).or_default();
                        if !sites.contains(&e.site) {
                            sites.push(e.site);
                        }
                    }
                }
            }
            for sites in by_addr.values() {
                for (k, &a) in sites.iter().enumerate() {
                    for &b in &sites[k..] {
                        if !checked.insert((a, b)) {
                            continue;
                        }
                        let (oa, ob) = (
                            addr_operand(&p.module, a).unwrap(),
                            addr_operand(&p.module, b).unwrap(),
                        );
                        assert!(
                            pts.may_alias(a.func, oa, b.func, ob),
                            "{}: sites {a:?} and {b:?} touched the same \
                             concrete address but may_alias says no",
                            p.name
                        );
                    }
                }
            }
        }
    }
}

/// The verified race report the heap-relay analysis starts from.
fn heap_relay_read() -> (owl_corpus::CorpusProgram, InstRef, Vec<InstRef>) {
    let p = owl_corpus::extensions::heap_relay();
    let r = owl_race::explore(
        &p.module,
        p.entry,
        &p.workloads,
        &owl_race::ExplorerConfig {
            runs_per_input: 20,
            ..Default::default()
        },
    );
    let report = r
        .reports_on("attack_len")
        .next()
        .unwrap_or_else(|| panic!("attack_len race: {:?}", r.reports))
        .clone();
    let read = report.read_access().unwrap();
    (p.clone(), read.site, read.stack.to_vec())
}

#[test]
fn summary_cache_replay_is_deterministic_and_cheaper() {
    let (p, site, stack) = heap_relay_read();
    let cache = Arc::new(SummaryCache::new());
    let mut cold = VulnAnalyzer::with_shared(
        &p.module,
        VulnConfig::default(),
        None,
        None,
        Some(cache.clone()),
    );
    let (r1, s1) = cold.analyze(site, &stack);
    let misses_after_cold = cache.misses();
    assert!(misses_after_cold > 0, "the cold walk computes summaries");
    assert!(!r1.is_empty(), "the relay must be hinted");

    // A second analyzer sharing the cache replays instead of
    // recomputing — same reports, strictly cheaper traversal.
    let mut warm = VulnAnalyzer::with_shared(
        &p.module,
        VulnConfig::default(),
        None,
        None,
        Some(cache.clone()),
    );
    let (r2, s2) = warm.analyze(site, &stack);
    assert_eq!(r1, r2, "cache replay must not change the reports");
    assert!(cache.hits() > 0, "the warm walk hits the cache");
    assert_eq!(
        cache.misses(),
        misses_after_cold,
        "the warm walk recomputes nothing"
    );
    assert!(
        s2.insts_visited < s1.insts_visited,
        "replay skips the summarized subtrees: {s2:?} vs {s1:?}"
    );
}

#[test]
fn heap_relay_detected_end_to_end_with_points_to_only() {
    // The pipeline-level acceptance check, both directions: with the
    // default knobs stage 4 hints the heap-relay memcopy (and the
    // verifier reaches it); with points-to disabled the paper's
    // register-only analysis loses the attack.
    let p = owl_corpus::extensions::heap_relay();
    let on = owl::evaluate_program(&p, &owl::OwlConfig::quick());
    let a = &on.attacks[0];
    assert!(a.hinted, "points-to hints the relay: {:?}", on.result.findings);
    assert!(a.detected(), "hinted site is dynamically reachable");
    assert_eq!(a.dep_matched(), Some(true), "{:?}", a.dep_kinds);

    let mut cfg = owl::OwlConfig::quick();
    cfg.vuln.points_to = false;
    let off = owl::evaluate_program(&p, &cfg);
    assert!(
        !off.attacks[0].hinted,
        "register-only stage 4 must miss the relay: {:?}",
        off.result.findings
    );
}
