//! Vulnerable-input-hint quality: the paper argues the hints are
//! "expressive enough to manually infer vulnerable inputs" (§1). These
//! tests pin the content the hints must carry for the running examples
//! (Figures 4 and 5) and for the §8.4 discoveries.

use owl_ir::VulnClass;
use owl_race::{explore, ExplorerConfig};
use owl_static::{hints, DepKind, VulnAnalyzer, VulnConfig};

fn analyze_attack(
    program: &str,
    global: &str,
) -> (owl_corpus::CorpusProgram, Vec<owl_static::VulnReport>) {
    let p = owl_corpus::program(program).unwrap();
    let raw = explore(
        &p.module,
        p.entry,
        &p.workloads,
        &ExplorerConfig {
            runs_per_input: 12,
            ..Default::default()
        },
    );
    let mut all = Vec::new();
    for report in raw.reports_on(global) {
        if let Some(read) = report.read_access() {
            let mut an = VulnAnalyzer::new(&p.module, VulnConfig::default());
            let (vulns, _) = an.analyze(read.site, &read.stack);
            all.extend(vulns);
        }
    }
    (p, all)
}

#[test]
fn libsafe_hint_names_the_branch_and_site() {
    let (p, vulns) = analyze_attack("Libsafe", "dying");
    let hit = vulns
        .iter()
        .find(|v| v.class == VulnClass::MemoryOp && v.dep == DepKind::CtrlDep)
        .unwrap_or_else(|| panic!("no ctrl-dep memory hint: {vulns:?}"));
    let text = hints::format_vuln_report(&p.module, hit);
    // Figure 5's content: the corrupted branch at intercept.c:164 and
    // the vulnerable site at intercept.c:165.
    assert!(text.contains("Ctrl Dependent"), "{text}");
    assert!(text.contains("intercept.c:164"), "{text}");
    assert!(text.contains("(intercept.c:165) [memory-op]"), "{text}");
}

#[test]
fn uselib_hint_reaches_the_indirect_call() {
    let (p, vulns) = analyze_attack("Linux", "f_op");
    let hit = vulns
        .iter()
        .find(|v| v.class == VulnClass::NullDeref)
        .unwrap_or_else(|| panic!("no null-deref hint: {vulns:?}"));
    let text = hints::format_vuln_report(&p.module, hit);
    assert!(text.contains("mm/msync.c:144"), "{text}");
}

#[test]
fn ssdb_hint_is_control_dependent_on_the_db_check() {
    let (p, vulns) = analyze_attack("SSDB", "db");
    // §8.4: "the vulnerability site at line 347 ... control dependent
    // on the corrupted branch on line 359".
    let ctrl = vulns
        .iter()
        .filter(|v| v.dep == DepKind::CtrlDep && v.class == VulnClass::NullDeref)
        .collect::<Vec<_>>();
    assert!(!ctrl.is_empty(), "{vulns:?}");
    let text = hints::format_vuln_report(&p.module, ctrl[0]);
    assert!(text.contains("binlog.cpp:359"), "{text}");
    assert!(text.contains("binlog.cpp:347"), "{text}");
}

#[test]
fn apache_balancer_hint_is_control_dependent_on_busy_compare() {
    let (p, vulns) = analyze_attack("Apache", "busy0");
    // §8.4: "a pointer assignment could be control dependent on the
    // corrupted branch of line 1192" — our dispatch-through-handler
    // equivalent sits behind the comparison at 1193.
    let hit = vulns
        .iter()
        .find(|v| v.dep == DepKind::CtrlDep && v.class == VulnClass::NullDeref)
        .unwrap_or_else(|| panic!("no ctrl-dep dispatch hint: {vulns:?}"));
    let text = hints::format_vuln_report(&p.module, hit);
    assert!(text.contains("proxy/proxy_util.c"), "{text}");
}

#[test]
fn chains_start_at_the_corrupted_load() {
    for (program, global) in [("Libsafe", "dying"), ("SSDB", "db"), ("Linux", "f_op")] {
        let (_, vulns) = analyze_attack(program, global);
        for v in &vulns {
            let first = v.chain.first().expect("non-empty chain");
            assert!(
                *first == v.source || v.branches.contains(first),
                "{program}: chain must start at the corrupted load or a \
                 corrupted gating branch: {v:?}"
            );
            assert!(
                v.chain.len() <= 66,
                "{program}: chain is bounded (guard against cycles)"
            );
        }
    }
}

#[test]
fn hints_carry_branches_for_ctrl_dep_reports() {
    for (program, global) in [("Libsafe", "dying"), ("MySQL", "acl_table")] {
        let (_, vulns) = analyze_attack(program, global);
        for v in vulns.iter().filter(|v| v.dep == DepKind::CtrlDep) {
            assert!(
                !v.branches.is_empty(),
                "{program}: CTRL_DEP hint without branches: {v:?}"
            );
        }
    }
}
