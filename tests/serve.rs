//! `owl serve` daemon harness: overload, crash-resume, and the
//! journal-backed result cache.
//!
//! The daemon runs **in-process** (a thread calling `owl::serve::serve`)
//! with clients on real `UnixStream` connections, so the tests exercise
//! the full wire protocol while still being able to arm the store's
//! kill point and inspect the metrics recorder directly:
//!
//! * a 32-submit burst against `workers = 2, queue = 4` gets exactly
//!   one typed response per submit (`result` or `rejected/queue-full`),
//!   never more than 2 requests executing at once, zero panics, and a
//!   graceful drain whose store journal is valid on reopen;
//! * a kill point mid-commit ends the daemon like a crash — the
//!   in-flight client sees EOF, not a torn response — and a restarted
//!   daemon recovers the fsync'd prefix and answers the duplicate
//!   submission from cache **without re-running stages 1–5** (no stage
//!   span for the cached program appears in the restart's recorder);
//! * a torn store tail (partial final line) is truncated to a record
//!   boundary at restart and surfaced through `status`.

#![cfg(unix)]

use owl::metrics::MetricsRecorder;
use owl::serve::{
    encode_request, parse_response, serve, FailureKind, RejectReason, Request, Response,
    ResultStore, ServeConfig, ServeReport,
};
use owl::{JournalError, JournalKilled, OwlConfig};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Once};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Silence the default panic hook for the panics this harness fires on
/// purpose (journal kills and injected serve faults); real panics
/// still print.
fn quiet_intentional_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let intentional = info.payload().downcast_ref::<JournalKilled>().is_some()
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.starts_with("injected serve fault"));
            if !intentional {
                prev(info);
            }
        }));
    });
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("owl-serve-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Spawns the daemon on a thread and waits for its socket to appear.
fn start_daemon(cfg: ServeConfig) -> JoinHandle<Result<ServeReport, JournalError>> {
    let socket = cfg.socket.clone();
    let handle = std::thread::spawn(move || serve(cfg));
    let deadline = Instant::now() + Duration::from_secs(10);
    while !socket.exists() {
        assert!(Instant::now() < deadline, "daemon never bound {socket:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
    handle
}

/// One request/one-line-response helper (plus a reader for follow-ups).
fn connect(socket: &Path) -> (BufReader<UnixStream>, UnixStream) {
    let stream = UnixStream::connect(socket).expect("connect to daemon");
    let reader = BufReader::new(stream.try_clone().expect("clone stream"));
    (reader, stream)
}

fn send(stream: &mut UnixStream, req: &Request) {
    let mut line = encode_request(req);
    line.push('\n');
    stream.write_all(line.as_bytes()).expect("write request");
}

/// Reads one response line; `None` on EOF (the daemon died).
fn read_response(reader: &mut BufReader<UnixStream>) -> Option<Response> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => None,
        Ok(_) => Some(parse_response(&line).expect("parseable response")),
        Err(_) => None,
    }
}

fn submit(program: &str) -> Request {
    Request::Submit {
        program: program.to_string(),
        quick: true,
        deadline_ms: None,
        sleep_ms: 0,
        inject_panic: false,
    }
}

/// Submits on a fresh connection and returns the terminal response
/// (skipping the `accepted` ack), or `None` if the daemon died first.
fn submit_and_wait(socket: &Path, req: &Request) -> Option<Response> {
    let (mut reader, mut stream) = connect(socket);
    send(&mut stream, req);
    loop {
        match read_response(&mut reader)? {
            Response::Accepted { .. } => continue,
            terminal => return Some(terminal),
        }
    }
}

fn shutdown(socket: &Path) {
    let (mut reader, mut stream) = connect(socket);
    send(&mut stream, &Request::Shutdown);
    assert!(
        matches!(read_response(&mut reader), Some(Response::Bye)),
        "graceful shutdown answers bye"
    );
}

#[test]
fn overload_burst_sheds_typed_and_drains_gracefully() {
    quiet_intentional_panics();
    let dir = scratch_dir("overload");
    let mut cfg = ServeConfig::new(&dir);
    cfg.workers = 2;
    cfg.queue_capacity = 4;
    cfg.owl = OwlConfig::quick();
    cfg.metrics = Some(Arc::new(MetricsRecorder::new()));
    let socket = cfg.socket.clone();
    let daemon = start_daemon(cfg);

    // 32 concurrent submissions against a 4-deep window. `sleep_ms`
    // holds each executing job long enough that the window stays full
    // while the burst lands.
    let programs = ["Libsafe", "SSDB", "Apache", "MySQL"];
    let clients: Vec<_> = (0..32)
        .map(|i| {
            let socket = socket.clone();
            let program = programs[i % programs.len()].to_string();
            std::thread::spawn(move || {
                submit_and_wait(
                    &socket,
                    &Request::Submit {
                        program,
                        quick: true,
                        deadline_ms: None,
                        sleep_ms: 150,
                        inject_panic: false,
                    },
                )
            })
        })
        .collect();

    let mut results = 0u64;
    let mut rejected = 0u64;
    for c in clients {
        match c.join().expect("client thread") {
            Some(Response::Result { .. }) => results += 1,
            Some(Response::Rejected { reason }) => {
                assert_eq!(
                    reason,
                    RejectReason::QueueFull,
                    "capacity sheds are typed queue-full"
                );
                rejected += 1;
            }
            other => panic!("unexpected terminal response: {other:?}"),
        }
    }
    assert_eq!(results + rejected, 32, "every submit got exactly one answer");
    assert!(rejected > 0, "a 32-burst against a 4-window must shed");
    assert!(results > 0, "admitted work still completes under overload");

    shutdown(&socket);
    let report = daemon.join().expect("daemon thread").expect("drained");
    assert!(
        report.peak_running <= 2,
        "concurrency stays bounded by the worker pool: peak {}",
        report.peak_running
    );
    assert_eq!(report.admission.shed_queue_full, rejected);
    assert_eq!(
        report.admission.in_flight, 0,
        "drain released every admitted request"
    );
    assert_eq!(report.health.total_panics(), 0, "zero panics under burst");

    // The drain fsync'd the store: a fresh handle reopens it cleanly
    // with every executed result durable.
    let store = ResultStore::open(dir.join("store.jsonl")).expect("store reopens");
    assert!(!store.recovery().recovered(), "no torn tail after a drain");
    // Two jobs for the same (program, config) can both be enqueued
    // before the first commits, so executions may exceed distinct
    // stored results — but every client-visible result is accounted
    // for, and nothing durable was lost.
    assert_eq!(report.executed + report.cache_hits, results);
    assert!(!store.is_empty() && store.len() as u64 <= report.executed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_mid_commit_then_restart_serves_duplicates_from_cache() {
    quiet_intentional_panics();
    let dir = scratch_dir("kill-resume");

    // First daemon lifetime: the store's first append is a kill site,
    // so the first executed result dies mid-commit — after the record
    // is fsync'd (the journal's "kill after n" contract), exactly like
    // a power cut between fsync and response.
    let mut cfg = ServeConfig::new(&dir);
    cfg.workers = 1;
    cfg.owl = OwlConfig::quick();
    cfg.kill_after_appends = Some(1);
    let socket = cfg.socket.clone();
    let daemon = start_daemon(cfg);

    let answer = submit_and_wait(&socket, &submit("Libsafe"));
    assert!(
        answer.is_none(),
        "the in-flight client sees EOF, not a torn response: {answer:?}"
    );
    let payload = daemon
        .join()
        .expect_err("the kill point ends the daemon like a crash");
    assert!(
        payload.downcast_ref::<JournalKilled>().is_some(),
        "JournalKilled is re-raised with its original payload"
    );
    let store_bytes = std::fs::read(dir.join("store.jsonl")).expect("store file");
    assert!(!store_bytes.is_empty(), "the killed commit was fsync'd first");

    // Second lifetime: recovery finds the fsync'd record byte-intact
    // and the duplicate submission is answered from cache without
    // executing any pipeline stage — the metrics recorder sees no
    // stage span for the cached program.
    let recorder = Arc::new(MetricsRecorder::new());
    let mut cfg = ServeConfig::new(&dir);
    cfg.workers = 1;
    cfg.owl = OwlConfig::quick();
    cfg.metrics = Some(Arc::clone(&recorder));
    let socket = cfg.socket.clone();
    let daemon = start_daemon(cfg);

    assert_eq!(
        std::fs::read(dir.join("store.jsonl")).expect("store file"),
        store_bytes,
        "recovery preserved the store byte-identically (clean record boundary)"
    );

    match submit_and_wait(&socket, &submit("Libsafe")) {
        Some(Response::Result {
            cached, program, ..
        }) => {
            assert!(cached, "duplicate after restart is a cache hit");
            assert_eq!(program, "Libsafe");
        }
        other => panic!("expected a cached result, got {other:?}"),
    }
    // A fresh program still executes end to end.
    match submit_and_wait(&socket, &submit("SSDB")) {
        Some(Response::Result {
            cached, program, ..
        }) => {
            assert!(!cached, "first SSDB run executes the pipeline");
            assert_eq!(program, "SSDB");
        }
        other => panic!("expected an executed result, got {other:?}"),
    }

    shutdown(&socket);
    let report = daemon.join().expect("daemon thread").expect("drained");
    assert_eq!(report.cache_hits, 1);
    assert_eq!(report.executed, 1);
    assert_eq!(report.stored, 2, "Libsafe recovered + SSDB executed");

    let spans = recorder.spans();
    assert!(
        spans.iter().any(|s| s.program == "SSDB" && s.name == "detect"),
        "the executed program ran its stages"
    );
    assert!(
        !spans.iter().any(|s| s.program == "Libsafe"),
        "the cached program re-ran no stage at all: {:?}",
        spans
            .iter()
            .filter(|s| s.program == "Libsafe")
            .collect::<Vec<_>>()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_store_tail_truncates_at_restart_and_is_reported() {
    quiet_intentional_panics();
    let dir = scratch_dir("torn-tail");

    // Seed the store with two durable results, then tear the tail mid
    // final line, as a crash mid-`write` would.
    {
        let mut cfg = ServeConfig::new(&dir);
        cfg.workers = 1;
        cfg.owl = OwlConfig::quick();
        let socket = cfg.socket.clone();
        let daemon = start_daemon(cfg);
        assert!(matches!(
            submit_and_wait(&socket, &submit("Libsafe")),
            Some(Response::Result { cached: false, .. })
        ));
        assert!(matches!(
            submit_and_wait(&socket, &submit("SSDB")),
            Some(Response::Result { cached: false, .. })
        ));
        shutdown(&socket);
        daemon.join().expect("daemon thread").expect("drained");
    }
    let store_path = dir.join("store.jsonl");
    let full = std::fs::read(&store_path).expect("store file");
    std::fs::write(&store_path, &full[..full.len() - 7]).expect("tear the tail");

    let mut cfg = ServeConfig::new(&dir);
    cfg.workers = 1;
    cfg.owl = OwlConfig::quick();
    let socket = cfg.socket.clone();
    let daemon = start_daemon(cfg);

    // Status surfaces the repair; the torn record (SSDB) is gone, the
    // intact prefix (Libsafe) still answers from cache.
    let (mut reader, mut stream) = connect(&socket);
    send(&mut stream, &Request::Status);
    let Some(Response::Status(status)) = read_response(&mut reader) else {
        panic!("status response expected");
    };
    assert!(status.recovery_discarded_bytes > 0, "repair is reported");
    assert_eq!(status.stored, 1, "only the intact prefix survives");
    drop((reader, stream));

    assert!(matches!(
        submit_and_wait(&socket, &submit("Libsafe")),
        Some(Response::Result { cached: true, .. })
    ));
    // The torn-away result simply re-executes and re-commits.
    assert!(matches!(
        submit_and_wait(&socket, &submit("SSDB")),
        Some(Response::Result { cached: false, .. })
    ));

    shutdown(&socket);
    let report = daemon.join().expect("daemon thread").expect("drained");
    assert!(report.recovery.recovered());
    assert_eq!(report.stored, 2, "the store is whole again");
    assert_eq!(
        report.health.journal_discarded_bytes,
        report.recovery.discarded_bytes,
        "recovery counters flow into the consolidated health"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadline_quarantine_and_unknown_program_are_typed() {
    quiet_intentional_panics();
    let dir = scratch_dir("typed");
    let mut cfg = ServeConfig::new(&dir);
    cfg.workers = 1;
    cfg.owl = OwlConfig::quick();
    let socket = cfg.socket.clone();
    let daemon = start_daemon(cfg);

    // deadline_ms = 0: already expired when a worker picks it up —
    // cancelled deterministically, never executed.
    match submit_and_wait(
        &socket,
        &Request::Submit {
            program: "Libsafe".into(),
            quick: true,
            deadline_ms: Some(0),
            sleep_ms: 0,
            inject_panic: false,
        },
    ) {
        Some(Response::Failed { kind, .. }) => {
            assert_eq!(kind, FailureKind::DeadlineExceeded);
        }
        other => panic!("expected deadline failure, got {other:?}"),
    }

    // An injected panic quarantines that one request; the daemon keeps
    // serving.
    match submit_and_wait(
        &socket,
        &Request::Submit {
            program: "Libsafe".into(),
            quick: true,
            deadline_ms: None,
            sleep_ms: 0,
            inject_panic: true,
        },
    ) {
        Some(Response::Failed { kind, .. }) => assert_eq!(kind, FailureKind::Quarantined),
        other => panic!("expected quarantine, got {other:?}"),
    }

    match submit_and_wait(&socket, &submit("NoSuchProgram")) {
        Some(Response::Rejected { reason }) => {
            assert_eq!(reason, RejectReason::UnknownProgram);
        }
        other => panic!("expected unknown-program rejection, got {other:?}"),
    }

    // Still alive after all three failure modes.
    match submit_and_wait(&socket, &submit("Libsafe")) {
        Some(Response::Result { cached, .. }) => assert!(!cached),
        other => panic!("daemon should still serve, got {other:?}"),
    }

    shutdown(&socket);
    let report = daemon.join().expect("daemon thread").expect("drained");
    assert_eq!(report.executed, 1);
    assert_eq!(report.stored, 1);
    let _ = std::fs::remove_dir_all(&dir);
}
