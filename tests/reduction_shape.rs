//! Shape assertions against the paper's evaluation tables: the
//! absolute numbers are ours (the substrate is a simulator, not the
//! authors' testbed), but who floods, who reduces, and where the adhoc
//! synchronizations are must match Tables 1 and 3.

use owl::{evaluate_program, OwlConfig, ProgramEvaluation};
use std::sync::OnceLock;

fn evals() -> &'static [ProgramEvaluation] {
    static EVALS: OnceLock<Vec<ProgramEvaluation>> = OnceLock::new();
    EVALS.get_or_init(|| {
        owl_corpus::all_programs()
            .iter()
            .map(|p| evaluate_program(p, &OwlConfig::default()))
            .collect()
    })
}

fn stat(name: &str) -> &'static owl::PipelineStats {
    &evals()
        .iter()
        .find(|e| e.name == name)
        .unwrap()
        .result
        .stats
}

#[test]
fn overall_reduction_matches_the_papers_94_percent() {
    let raw: usize = evals().iter().map(|e| e.result.stats.raw_reports).sum();
    let remaining: usize = evals().iter().map(|e| e.result.stats.remaining).sum();
    let reduction = 100.0 * (1.0 - remaining as f64 / raw as f64);
    assert!(
        reduction >= 90.0,
        "paper reports 94.3%; we require at least 90%, got {reduction:.1}% ({raw} -> {remaining})"
    );
}

#[test]
fn adhoc_sync_counts_match_table3() {
    // Table 3's A.S. column: Apache 7, Chrome 1, Libsafe 0, Linux 8,
    // Memcached 0, MySQL 6, SSDB 0 — 22 total (§8.2).
    assert_eq!(stat("Apache").adhoc_syncs, 7);
    assert_eq!(stat("Chrome").adhoc_syncs, 1);
    assert_eq!(stat("Libsafe").adhoc_syncs, 0);
    assert_eq!(stat("Linux").adhoc_syncs, 8);
    assert_eq!(stat("Memcached").adhoc_syncs, 0);
    assert_eq!(stat("MySQL").adhoc_syncs, 6);
    assert_eq!(stat("SSDB").adhoc_syncs, 0);
    let total: usize = evals().iter().map(|e| e.result.stats.adhoc_syncs).sum();
    assert_eq!(
        total, 22,
        "the paper found 22 unique adhoc synchronizations"
    );
}

#[test]
fn report_flood_ordering_matches_table1() {
    // Table 1 orders the flood: Linux ≫ Chrome/MySQL/Apache ≫ SSDB ≫
    // Libsafe.
    let linux = stat("Linux").raw_reports;
    let chrome = stat("Chrome").raw_reports;
    let mysql = stat("MySQL").raw_reports;
    let apache = stat("Apache").raw_reports;
    let ssdb = stat("SSDB").raw_reports;
    let libsafe = stat("Libsafe").raw_reports;
    assert!(linux > chrome, "Linux floods hardest: {linux} vs {chrome}");
    assert!(linux > mysql && linux > apache);
    assert!(chrome > ssdb && mysql > ssdb && apache > ssdb);
    assert!(
        ssdb > libsafe || libsafe <= 3,
        "Libsafe is tiny (paper: 3 reports)"
    );
}

#[test]
fn annotation_reduces_each_adhoc_program() {
    for e in evals() {
        let s = &e.result.stats;
        if s.adhoc_syncs > 0 {
            assert!(
                s.post_annotation_reports < s.raw_reports,
                "{}: {} annotations but {} -> {} reports",
                e.name,
                s.adhoc_syncs,
                s.raw_reports,
                s.post_annotation_reports
            );
        }
    }
}

#[test]
fn verifier_elimination_dominates_the_reduction() {
    // Table 3: R.V.E. is the big hammer (annotation handles schedules,
    // verification handles everything the primary input can't re-reach).
    let rve: usize = evals()
        .iter()
        .map(|e| e.result.stats.verifier_eliminated)
        .sum();
    let raw: usize = evals().iter().map(|e| e.result.stats.raw_reports).sum();
    assert!(
        rve * 2 > raw,
        "verifier should eliminate most reports: {rve} of {raw}"
    );
}

#[test]
fn owl_final_reports_are_few() {
    // Table 2: OWL leaves a handful of security-relevant reports per
    // program (paper total: 180 across 5.36 MLoC; ours scales down).
    for e in evals() {
        let vulnerable = e.result.vulnerable_findings().count();
        assert!(
            vulnerable <= 12,
            "{}: too many final reports ({vulnerable})",
            e.name
        );
    }
}
