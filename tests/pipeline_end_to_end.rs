//! End-to-end pipeline integration: every corpus program through every
//! OWL stage, scoring every attack (the Table-2 claim: all evaluated
//! attacks detected).

use owl::{evaluate_program, OwlConfig, ProgramEvaluation};
use std::sync::OnceLock;

fn evals() -> &'static [ProgramEvaluation] {
    static EVALS: OnceLock<Vec<ProgramEvaluation>> = OnceLock::new();
    EVALS.get_or_init(|| {
        owl_corpus::all_programs()
            .iter()
            .map(|p| evaluate_program(p, &OwlConfig::quick()))
            .collect()
    })
}

#[test]
fn all_ten_attacks_detected() {
    let mut total = 0;
    let mut detected = 0;
    for e in evals() {
        for a in &e.attacks {
            total += 1;
            assert!(
                a.detected(),
                "{}: attack {} not detected (hinted={}, reached={})",
                e.name,
                a.spec.id,
                a.hinted,
                a.reached
            );
            detected += 1;
        }
    }
    assert_eq!(total, 10);
    assert_eq!(detected, 10);
}

#[test]
fn previously_unknown_attacks_found() {
    let unknown: Vec<&str> = evals()
        .iter()
        .flat_map(|e| e.attacks.iter())
        .filter(|a| !a.spec.known && a.detected())
        .map(|a| a.spec.id)
        .collect();
    assert!(unknown.contains(&"ssdb-binlog-uaf"), "{unknown:?}");
    assert!(
        unknown.contains(&"apache-25520-html-integrity"),
        "{unknown:?}"
    );
    assert!(unknown.contains(&"apache-46215-dos"), "{unknown:?}");
    assert_eq!(unknown.len(), 3, "exactly three unknown attacks (§8.4)");
}

#[test]
fn every_program_reduces_reports() {
    for e in evals() {
        let s = &e.result.stats;
        assert!(
            s.remaining <= s.post_annotation_reports,
            "{}: verification cannot add reports",
            e.name
        );
        assert!(
            s.post_annotation_reports <= s.raw_reports,
            "{}: annotation cannot add reports ({} -> {})",
            e.name,
            s.raw_reports,
            s.post_annotation_reports
        );
        if s.raw_reports > 20 {
            assert!(
                s.reduction_ratio() > 0.5,
                "{}: expected a strong reduction, got {:.1}% ({} -> {})",
                e.name,
                100.0 * s.reduction_ratio(),
                s.raw_reports,
                s.remaining
            );
        }
    }
}

#[test]
fn memcached_is_attack_free_noise() {
    let e = evals().iter().find(|e| e.name == "Memcached").unwrap();
    assert!(e.attacks.is_empty());
    assert!(
        e.result.stats.raw_reports > 20,
        "it still floods the detector"
    );
    assert!(
        e.result.stats.remaining < e.result.stats.raw_reports / 4,
        "and almost everything is pruned"
    );
}

#[test]
fn findings_preserve_attack_races() {
    // The attack-bearing races must survive all reduction stages and
    // carry vulnerability hints — "OWL did not miss the evaluated
    // attacks" (§7.1).
    for e in evals() {
        let program = owl_corpus::program(e.name).unwrap();
        for a in &program.attacks {
            let finding = e
                .result
                .finding_on(a.race_global)
                .unwrap_or_else(|| panic!("{}: race on {} pruned away", e.name, a.race_global));
            assert!(
                finding.verification.confirmed,
                "{}: {} race not verified",
                e.name, a.race_global
            );
        }
    }
}

#[test]
fn analysis_cost_is_tracked() {
    for e in evals() {
        let s = &e.result.stats;
        if s.remaining > 0 {
            assert!(s.analysis_count > 0, "{}: no analyses recorded", e.name);
            assert!(
                s.analysis_work.insts_visited > 0,
                "{}: no traversal work recorded",
                e.name
            );
        }
    }
}
