//! Exhaustiveness guard for the health-counter surfaces.
//!
//! `PipelineHealth` counters cross four serialization boundaries: the
//! run journal's `encode_health`, `owl-cli run --json`, `owl-cli
//! campaign --json` (plus its `BENCH_campaign.json` metrics), and the
//! daemon's `status` response. Each surface is hand-written, so a new
//! counter added to the struct can silently miss one of them. This
//! suite makes that a test failure:
//!
//! * the struct is destructured with no `..` — adding a field breaks
//!   compilation here until the expected-key table below is updated;
//! * every counter key must appear, with its exact value, in
//!   `encode_health` output;
//! * every counter key must appear in the real CLI's `run --json` and
//!   `campaign --json` output;
//! * the daemon's `StatusReport` must survive an encode/parse
//!   round-trip with every field set to a distinct value, and a live
//!   daemon run must carry the predict counters end to end.

#![cfg(unix)]

use owl::journal::encode_health;
use owl::serve::{
    encode_request, encode_response, parse_response, serve, Request, Response, ServeConfig,
    StatusReport,
};
use owl::{OwlConfig, PipelineHealth, StageHealth};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::Command;
use std::time::{Duration, Instant};

/// A `PipelineHealth` with every counter set to a distinct value, and
/// the exact key/value pairs each JSON surface must carry for it.
/// Destructuring with no `..` is the exhaustiveness guard: a new
/// field fails compilation here until it is added to the table (or
/// consciously exempted like `points_to_solve`, which is a duration,
/// not a counter).
fn distinct_health() -> (PipelineHealth, Vec<(&'static str, u64)>) {
    let stage = |base: u64| StageHealth {
        attempts: base,
        retries: base + 1,
        injected_faults: base + 2,
        deadline_hits: base + 3,
        panics: base + 4,
        quarantined: base + 5,
    };
    let h = PipelineHealth {
        detect: stage(100),
        race_verify: stage(200),
        vuln_analyze: stage(300),
        vuln_verify: stage(400),
        summary_cache_hits: 501,
        summary_cache_misses: 502,
        points_to_solve: Duration::from_millis(503),
        journal_discarded_bytes: 504,
        journal_discarded_records: 505,
        detector_suppressed: 506,
        detector_reports_dropped: 507,
        elision_sites_thread_local: 508,
        elision_sites_lock_dominated: 509,
        elision_sites_read_only: 510,
        elision_events_elided: 511,
        trace_spilled_bytes: 512,
        trace_spill_segments: 513,
        mem_pressure_events: 514,
        shadow_cells_gced: 515,
        units_aborted_mem_budget: 516,
        predict_candidates: 517,
        predict_witnessed: 518,
        predict_witness_rejected: 519,
        predict_reversal_races: 520,
        units_forked: 521,
        prefix_steps_saved: 522,
        schedules_deduped: 523,
        snapshot_bytes: 524,
    };
    // Re-bind by exhaustive destructuring so a new field cannot be
    // added without revisiting this function.
    let PipelineHealth {
        detect: _,
        race_verify: _,
        vuln_analyze: _,
        vuln_verify: _,
        summary_cache_hits,
        summary_cache_misses,
        points_to_solve: _,
        journal_discarded_bytes,
        journal_discarded_records,
        detector_suppressed,
        detector_reports_dropped,
        elision_sites_thread_local,
        elision_sites_lock_dominated,
        elision_sites_read_only,
        elision_events_elided,
        trace_spilled_bytes,
        trace_spill_segments,
        mem_pressure_events,
        shadow_cells_gced,
        units_aborted_mem_budget,
        predict_candidates,
        predict_witnessed,
        predict_witness_rejected,
        predict_reversal_races,
        units_forked,
        prefix_steps_saved,
        schedules_deduped,
        snapshot_bytes,
    } = h.clone();
    let keys = vec![
        ("summary_cache_hits", summary_cache_hits),
        ("summary_cache_misses", summary_cache_misses),
        ("journal_discarded_bytes", journal_discarded_bytes),
        ("journal_discarded_records", journal_discarded_records),
        ("detector_suppressed", detector_suppressed),
        ("detector_reports_dropped", detector_reports_dropped),
        ("elision_sites_thread_local", elision_sites_thread_local),
        ("elision_sites_lock_dominated", elision_sites_lock_dominated),
        ("elision_sites_read_only", elision_sites_read_only),
        ("elision_events_elided", elision_events_elided),
        ("trace_spilled_bytes", trace_spilled_bytes),
        ("trace_spill_segments", trace_spill_segments),
        ("mem_pressure_events", mem_pressure_events),
        ("shadow_cells_gced", shadow_cells_gced),
        ("units_aborted_mem_budget", units_aborted_mem_budget),
        ("predict_candidates", predict_candidates),
        ("predict_witnessed", predict_witnessed),
        ("predict_witness_rejected", predict_witness_rejected),
        ("predict_reversal_races", predict_reversal_races),
        ("units_forked", units_forked),
        ("prefix_steps_saved", prefix_steps_saved),
        ("schedules_deduped", schedules_deduped),
        ("snapshot_bytes", snapshot_bytes),
    ];
    (h, keys)
}

#[test]
fn encode_health_carries_every_counter() {
    let (h, keys) = distinct_health();
    let json = encode_health(&h).to_json_string();
    for (key, value) in keys {
        assert!(
            json.contains(&format!("\"{key}\":{value}")),
            "encode_health dropped `{key}` (expected {value}):\n{json}"
        );
    }
}

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_owl_cli"))
}

fn run_ok(args: &[&str]) -> String {
    let out = cli().args(args).output().expect("spawn owl_cli");
    assert!(
        out.status.success(),
        "owl_cli {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("owl-health-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn run_json_carries_every_health_counter() {
    let (_, keys) = distinct_health();
    let out = run_ok(&["run", "SSDB", "--quick", "--json", "--hb-backend", "syncp"]);
    for (key, _) in keys {
        assert!(out.contains(&format!("\"{key}\":")), "run --json dropped `{key}`:\n{out}");
    }
}

#[test]
fn campaign_json_and_metrics_carry_every_health_counter() {
    let (_, keys) = distinct_health();
    let dir = scratch_dir("campaign");
    let metrics = scratch_dir("campaign-metrics");
    let out = run_ok(&[
        "campaign",
        dir.to_str().unwrap(),
        "--quick",
        "--json",
        "--hb-backend",
        "syncp",
        "--metrics",
        metrics.to_str().unwrap(),
    ]);
    for (key, _) in &keys {
        assert!(
            out.contains(&format!("\"{key}\":")),
            "campaign --json dropped `{key}`:\n{out}"
        );
    }
    let bench = std::fs::read_to_string(metrics.join("BENCH_campaign.json"))
        .expect("campaign metrics artifact");
    for key in [
        "predict_candidates",
        "predict_witnessed",
        "predict_witness_rejected",
        "predict_reversal_races",
        "units_forked",
        "prefix_steps_saved",
        "schedules_deduped",
        "snapshot_bytes",
    ] {
        assert!(bench.contains(key), "BENCH_campaign.json dropped `{key}`:\n{bench}");
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&metrics);
}

/// Every `StatusReport` field — constructed exhaustively, so a new
/// field breaks this test until the wire format handles it — must
/// survive the daemon protocol's encode/parse round-trip.
#[test]
fn status_report_round_trips_every_field() {
    let report = StatusReport {
        queue_depth: 1,
        active: 2,
        inflight_bytes: 3,
        draining: true,
        executed: 4,
        cache_hits: 5,
        shed_queue_full: 6,
        shed_too_large: 7,
        shed_draining: 8,
        stored: 9,
        recovery_discarded_bytes: 10,
        recovery_discarded_records: 11,
        elision_sites_thread_local: 12,
        elision_sites_lock_dominated: 13,
        elision_sites_read_only: 14,
        elision_events_elided: 15,
        elision_solve_us: 16,
        trace_spilled_bytes: 17,
        trace_spill_segments: 18,
        mem_pressure_events: 19,
        shadow_cells_gced: 20,
        units_aborted_mem_budget: 21,
        predict_candidates: 22,
        predict_witnessed: 23,
        predict_witness_rejected: 24,
        predict_reversal_races: 25,
        units_forked: 26,
        prefix_steps_saved: 27,
        schedules_deduped: 28,
        snapshot_bytes: 29,
    };
    let line = encode_response(&Response::Status(Box::new(report.clone())));
    match parse_response(&line).expect("parseable status") {
        Response::Status(parsed) => assert_eq!(*parsed, report),
        other => panic!("expected status, got {other:?}"),
    }
}

/// A live daemon configured with a predictive backend must surface the
/// predict counters through `status`, matching a direct library run of
/// the same program under the same configuration.
#[test]
fn serve_status_carries_predict_counters_end_to_end() {
    let mut quick = OwlConfig::quick();
    quick.detect.hb_backend = owl::owl_race::HbBackend::SyncPreserving;

    // Ground truth: the same program through the library pipeline.
    let p = owl::owl_corpus::program("SSDB").expect("corpus program");
    let local = owl::Owl::new(&p.module, p.entry, quick.clone());
    let expected = local.run(p.name, &p.workloads, &p.exploit_inputs).health;

    let dir = scratch_dir("serve");
    let mut cfg = ServeConfig::new(&dir);
    cfg.owl = quick;
    let socket = cfg.socket.clone();
    let handle = std::thread::spawn(move || serve(cfg));
    let deadline = Instant::now() + Duration::from_secs(10);
    while !socket.exists() {
        assert!(Instant::now() < deadline, "daemon never bound {socket:?}");
        std::thread::sleep(Duration::from_millis(10));
    }

    let request = |req: &Request| -> Response {
        let stream = UnixStream::connect(&socket).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut stream = stream;
        let mut line = encode_request(req);
        line.push('\n');
        stream.write_all(line.as_bytes()).expect("write");
        loop {
            let mut resp = String::new();
            assert!(reader.read_line(&mut resp).expect("read") > 0, "daemon died");
            match parse_response(&resp).expect("parseable") {
                Response::Accepted { .. } => continue,
                terminal => return terminal,
            }
        }
    };

    // quick=false routes the submit through `cfg.owl` — the predictive
    // quick config installed above.
    match request(&Request::Submit {
        program: "SSDB".to_string(),
        quick: false,
        deadline_ms: None,
        sleep_ms: 0,
        inject_panic: false,
    }) {
        Response::Result { .. } => {}
        other => panic!("expected a result, got {other:?}"),
    }
    let status = match request(&Request::Status) {
        Response::Status(s) => s,
        other => panic!("expected status, got {other:?}"),
    };
    assert_eq!(status.predict_candidates, expected.predict_candidates);
    assert_eq!(status.predict_witnessed, expected.predict_witnessed);
    assert_eq!(status.predict_witness_rejected, expected.predict_witness_rejected);
    assert_eq!(status.predict_reversal_races, expected.predict_reversal_races);
    assert!(
        status.predict_candidates > 0,
        "SSDB under syncp produced no prediction candidates — the \
         end-to-end check is inert"
    );

    match request(&Request::Shutdown) {
        Response::Bye => {}
        other => panic!("expected bye, got {other:?}"),
    }
    handle.join().expect("daemon thread").expect("clean exit");
    let _ = std::fs::remove_dir_all(&dir);
}
