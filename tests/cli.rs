//! End-to-end tests for the `owl_cli` binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_owl_cli"))
}

fn run_ok(args: &[&str]) -> String {
    let out = cli().args(args).output().expect("spawn owl_cli");
    assert!(
        out.status.success(),
        "owl_cli {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn list_shows_all_programs() {
    let out = run_ok(&["list"]);
    for name in ["Apache", "Chrome", "Libsafe", "Linux", "Memcached", "MySQL", "SSDB", "Bank"] {
        assert!(out.contains(name), "missing {name} in:\n{out}");
    }
}

#[test]
fn run_reports_reduction_and_findings() {
    let out = run_ok(&["run", "SSDB", "--quick"]);
    assert!(out.contains("reports:"), "{out}");
    assert!(out.contains("% reduced"), "{out}");
    assert!(out.contains("finding on `db`"), "{out}");
}

#[test]
fn hints_render_figure5_format() {
    let out = run_ok(&["hints", "Libsafe", "--quick"]);
    assert!(out.contains("data race on `dying`"), "{out}");
    assert!(out.contains("Vulnerable Site Location"), "{out}");
}

#[test]
fn audit_separates_benign_from_exploit() {
    let out = run_ok(&["audit", "Libsafe", "--quick"]);
    assert!(out.contains("auditing"), "{out}");
    assert!(out.contains("benign"), "{out}");
    assert!(out.contains("ATTACK ALERT"), "{out}");
}

#[test]
fn atomicity_front_end_flag() {
    let out = run_ok(&["run", "Bank", "--quick", "--atomicity"]);
    assert!(out.contains("atomicity front-end"), "{out}");
    assert!(out.contains("finding on `balance`"), "{out}");
}

#[test]
fn unknown_program_fails_cleanly() {
    let out = cli().args(["run", "nope"]).output().expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown program"), "{err}");
}

#[test]
fn no_args_prints_usage() {
    let out = cli().output().expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");
    // The campaign command and the (once mangled) --fault-rate help
    // line are documented.
    assert!(err.contains("campaign"), "{err}");
    assert!(err.contains("per-check injection probability"), "{err}");
    assert!(err.contains("--resume"), "{err}");
}

#[test]
fn run_json_emits_machine_readable_summary() {
    let out = run_ok(&["run", "SSDB", "--quick", "--json"]);
    let doc = owl::json::parse(&out).expect("valid JSON");
    assert_eq!(doc.get("program").and_then(|j| j.as_str()), Some("SSDB"));
    let summary = doc.get("summary").expect("summary object");
    assert!(
        summary.get("raw").and_then(|j| j.as_u64()).unwrap_or(0) > 0,
        "{out}"
    );
    assert!(
        summary.get("findings").and_then(|j| j.as_arr()).is_some(),
        "{out}"
    );
    assert!(doc.get("health").is_some(), "{out}");
    assert!(
        doc.get("quarantined").and_then(|j| j.as_arr()).is_some(),
        "{out}"
    );
}

#[test]
fn flag_missing_or_flaglike_value_is_rejected() {
    for args in [
        // the "value" is another flag
        &["run", "SSDB", "--quick", "--fault-seed", "--json"][..],
        // the value is missing entirely
        &["run", "SSDB", "--fault-seed"][..],
    ] {
        let out = cli().args(args).output().expect("spawn");
        assert!(!out.status.success(), "{args:?} must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("requires a value"), "{args:?}: {err}");
    }
}

#[test]
fn max_trace_mem_accepts_suffixes_and_bounds_the_run() {
    // A suffixed budget (case-insensitive) parses, the run completes,
    // and the trace-memory governance line is reported.
    let out = run_ok(&["run", "SSDB", "--quick", "--max-trace-mem", "64k"]);
    assert!(out.contains("trace memory:"), "{out}");
    assert!(out.contains("reports:"), "{out}");
}

#[test]
fn max_trace_mem_rejects_zero_garbage_and_overflow() {
    for (value, needle) in [
        ("0", "zero trace-memory budget"),
        ("0K", "zero trace-memory budget"),
        ("xyz", "not a byte count"),
        ("12Q", "not a byte count"),
        ("K", "has no digits"),
        ("99999999999999G", "overflows"),
    ] {
        let out = cli()
            .args(["run", "SSDB", "--quick", "--max-trace-mem", value])
            .output()
            .expect("spawn");
        assert!(!out.status.success(), "--max-trace-mem {value} must fail");
        assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(needle), "{value}: {err}");
        assert!(err.contains("--max-trace-mem"), "{value}: {err}");
    }

    let out = cli()
        .args(["run", "SSDB", "--max-trace-mem"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("requires a value"), "{err}");
}

#[test]
fn campaign_runs_resumes_and_refuses_unresumed_reuse() {
    let mut dir = std::env::temp_dir();
    dir.push(format!("owl-cli-campaign-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let d = dir.to_str().expect("utf8 temp path");

    let first = run_ok(&["campaign", d, "--quick"]);
    assert!(first.contains("campaign summary"), "{first}");
    assert!(first.contains("vulnerable findings:"), "{first}");
    assert!(first.contains("Libsafe"), "{first}");

    // A finished journal is not silently clobbered.
    let reuse = cli().args(["campaign", d, "--quick"]).output().expect("spawn");
    assert!(!reuse.status.success());
    let err = String::from_utf8_lossy(&reuse.stderr);
    assert!(err.contains("--resume"), "{err}");

    // Resuming a finished campaign replays the journal byte-identically.
    let resumed = run_ok(&["campaign", d, "--quick", "--resume"]);
    assert_eq!(resumed, first, "pure replay renders identical output");

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn campaign_workers_and_metrics_flags() {
    let mut base = std::env::temp_dir();
    base.push(format!("owl-cli-workers-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("scratch dir");
    let serial_dir = base.join("serial");
    let pool_dir = base.join("pool");
    let metrics_dir = base.join("metrics");

    let serial = run_ok(&["campaign", serial_dir.to_str().unwrap(), "--quick", "--workers", "1"]);
    let pooled = run_ok(&[
        "campaign",
        pool_dir.to_str().unwrap(),
        "--quick",
        "--workers",
        "4",
        "--metrics",
        metrics_dir.to_str().unwrap(),
    ]);
    assert_eq!(
        pooled, serial,
        "--workers 4 must print the byte-identical summary of --workers 1"
    );

    // The metrics artifacts exist and are valid, machine-readable JSON.
    let summary_raw = std::fs::read_to_string(metrics_dir.join("BENCH_campaign.json"))
        .expect("BENCH_campaign.json written");
    let summary = owl::json::parse(summary_raw.trim()).expect("valid perf summary");
    assert_eq!(summary.get("bench").and_then(|j| j.as_str()), Some("campaign"));
    assert_eq!(summary.get("workers").and_then(|j| j.as_u64()), Some(4));
    assert!(summary.get("stages").is_some(), "{summary_raw}");
    let spans = std::fs::read_to_string(metrics_dir.join("spans.jsonl")).expect("spans.jsonl");
    assert!(!spans.trim().is_empty(), "span stream must not be empty");
    for line in spans.lines() {
        owl::json::parse(line).expect("every span line is valid JSON");
    }
    for span in ["race-detect", "static-analysis"] {
        assert!(spans.contains(span), "missing {span} span in:\n{spans}");
    }

    // Zero workers is meaningless and rejected up front.
    let zero = cli()
        .args(["campaign", base.join("zero").to_str().unwrap(), "--quick", "--workers", "0"])
        .output()
        .expect("spawn");
    assert!(!zero.status.success(), "--workers 0 must be rejected");

    let _ = std::fs::remove_dir_all(base);
}

#[test]
fn campaign_json_surfaces_recovery_and_health() {
    let mut dir = std::env::temp_dir();
    dir.push(format!("owl-cli-campaign-json-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let d = dir.to_str().expect("utf8 temp path");

    let out = run_ok(&["campaign", d, "--quick", "--json"]);
    let doc = owl::json::parse(out.trim()).expect("valid JSON");
    let recovery = doc.get("recovery").expect("recovery object");
    assert_eq!(
        recovery
            .get("journal_discarded_bytes")
            .and_then(|j| j.as_u64()),
        Some(0),
        "clean run discarded nothing: {out}"
    );
    assert_eq!(
        recovery
            .get("journal_discarded_records")
            .and_then(|j| j.as_u64()),
        Some(0)
    );
    assert!(
        recovery
            .get("valid_records")
            .and_then(|j| j.as_u64())
            .unwrap_or(0)
            > 0,
        "{out}"
    );
    let health = doc.get("health").expect("health object");
    assert!(health.get("race_verify").is_some(), "{out}");
    assert!(
        health
            .get("journal_discarded_bytes")
            .and_then(|j| j.as_u64())
            .is_some(),
        "{out}"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[cfg(unix)]
#[test]
fn serve_round_trip_with_typed_exit_codes() {
    use std::io::Read;

    let mut dir = std::env::temp_dir();
    dir.push(format!("owl-cli-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let d = dir.to_str().expect("utf8 temp path");
    let socket = dir.join("owl.sock");
    let sock = socket.to_str().expect("utf8 socket path");

    let mut daemon = cli()
        .args(["serve", d, "--workers", "2", "--queue", "4"])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn daemon");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    while !socket.exists() {
        assert!(
            std::time::Instant::now() < deadline,
            "daemon never bound its socket"
        );
        std::thread::sleep(std::time::Duration::from_millis(25));
    }

    // First submission executes; the summary is the machine-readable
    // ProgramSummary encoding.
    let first = run_ok(&["submit", sock, "Libsafe", "--quick", "--json"]);
    let doc = owl::json::parse(first.trim()).expect("valid JSON");
    assert_eq!(doc.get("cached").and_then(|j| j.as_bool()), Some(false));
    assert_eq!(doc.get("program").and_then(|j| j.as_str()), Some("Libsafe"));

    // The duplicate is a cache hit served from the durable store.
    let second = run_ok(&["submit", sock, "Libsafe", "--quick", "--json"]);
    let doc = owl::json::parse(second.trim()).expect("valid JSON");
    assert_eq!(doc.get("cached").and_then(|j| j.as_bool()), Some(true));
    assert_eq!(
        doc.get("summary"),
        owl::json::parse(first.trim()).unwrap().get("summary"),
        "cached summary is byte-equal to the executed one"
    );

    // Typed failure exit codes: 3 rejected, 4 deadline, 5 quarantined.
    let exit = |args: &[&str]| {
        cli().args(args)
            .output()
            .expect("spawn")
            .status
            .code()
            .expect("exit code")
    };
    assert_eq!(exit(&["submit", sock, "NoSuchProgram"]), 3);
    assert_eq!(
        exit(&["submit", sock, "SSDB", "--quick", "--deadline-ms", "0"]),
        4
    );
    assert_eq!(
        exit(&["submit", sock, "SSDB", "--quick", "--inject-panic"]),
        5
    );

    let status = run_ok(&["status", sock]);
    let doc = owl::json::parse(status.trim()).expect("valid JSON");
    assert_eq!(doc.get("executed").and_then(|j| j.as_u64()), Some(1));
    assert_eq!(doc.get("cache_hits").and_then(|j| j.as_u64()), Some(1));
    assert_eq!(doc.get("stored").and_then(|j| j.as_u64()), Some(1));

    // Graceful drain: bye, exit 0, metrics artifacts on disk.
    let shutdown = cli().args(["shutdown", sock]).output().expect("spawn");
    assert!(shutdown.status.success(), "shutdown waits for bye");
    let status = daemon.wait().expect("daemon exits");
    assert_eq!(status.code(), Some(0), "graceful drain exits 0");
    let mut stderr = String::new();
    daemon
        .stderr
        .take()
        .expect("piped stderr")
        .read_to_string(&mut stderr)
        .expect("read daemon stderr");
    assert!(stderr.contains("drained"), "{stderr}");

    let bench = std::fs::read_to_string(dir.join("BENCH_serve.json"))
        .expect("BENCH_serve.json written at drain");
    let doc = owl::json::parse(bench.trim()).expect("valid bench JSON");
    assert_eq!(doc.get("bench").and_then(|j| j.as_str()), Some("serve"));
    assert!(
        std::fs::read_to_string(dir.join("store.jsonl"))
            .expect("store journal")
            .lines()
            .count()
            >= 1,
        "the result store is durable"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn explore_workers_and_hb_backend_flags() {
    // The epoch backend at any worker count finds exactly what the
    // reference backend finds serially. The run command prints
    // wall-clock durations, so compare the findings lines, not the
    // whole output.
    let reference = run_ok(&[
        "run", "SSDB", "--quick", "--hb-backend", "reference", "--explore-workers", "1",
    ]);
    let epoch = run_ok(&[
        "run", "SSDB", "--quick", "--hb-backend", "epoch", "--explore-workers", "4",
    ]);
    let key_line = |out: &str| {
        out.lines()
            .find(|l| l.starts_with("reports:"))
            .map(str::to_string)
            .unwrap_or_else(|| panic!("no reports line in:\n{out}"))
    };
    assert_eq!(key_line(&epoch), key_line(&reference));
    assert!(epoch.contains("finding on `db`"), "{epoch}");
    assert!(reference.contains("finding on `db`"), "{reference}");

    // Bad values are rejected up front with a useful message.
    let zero = cli()
        .args(["run", "SSDB", "--quick", "--explore-workers", "0"])
        .output()
        .expect("spawn");
    assert!(!zero.status.success(), "--explore-workers 0 must be rejected");
    let err = String::from_utf8_lossy(&zero.stderr);
    assert!(err.contains("at least 1"), "{err}");

    let bogus = cli()
        .args(["run", "SSDB", "--quick", "--hb-backend", "bogus"])
        .output()
        .expect("spawn");
    assert!(!bogus.status.success(), "--hb-backend bogus must be rejected");
    let err = String::from_utf8_lossy(&bogus.stderr);
    // The rejection must list every valid backend, derived from the
    // same table the parser uses.
    for b in owl_race::HbBackend::ALL {
        assert!(err.contains(b.name()), "missing `{}` in: {err}", b.name());
    }

    let missing = cli()
        .args(["run", "SSDB", "--quick", "--hb-backend"])
        .output()
        .expect("spawn");
    assert!(!missing.status.success());
    let err = String::from_utf8_lossy(&missing.stderr);
    assert!(err.contains("requires a value"), "{err}");
}

#[test]
fn no_fork_flag_is_valueless_and_composes() {
    // --no-fork disables prefix-sharing fork mode without changing any
    // result: the findings lines match a default (forked) run exactly.
    let forked = run_ok(&["run", "SSDB", "--quick"]);
    let scratch = run_ok(&[
        "run", "SSDB", "--quick", "--no-fork", "--explore-workers", "2", "--max-trace-mem", "64k",
    ]);
    let key_line = |out: &str| {
        out.lines()
            .find(|l| l.starts_with("reports:"))
            .map(str::to_string)
            .unwrap_or_else(|| panic!("no reports line in:\n{out}"))
    };
    assert_eq!(key_line(&scratch), key_line(&forked));
    assert!(scratch.contains("finding on `db`"), "{scratch}");

    // The fork counters are zero under --no-fork and non-zero by
    // default — the flag really switches the execution strategy.
    let doc = owl::json::parse(&run_ok(&["run", "SSDB", "--quick", "--json"]))
        .expect("valid JSON");
    let counter = |doc: &owl::json::Json, key: &str| {
        doc.get("health").and_then(|h| h.get(key)).and_then(|j| j.as_u64()).unwrap_or(0)
    };
    assert!(counter(&doc, "units_forked") > 0, "default run forks");
    let doc = owl::json::parse(&run_ok(&["run", "SSDB", "--quick", "--json", "--no-fork"]))
        .expect("valid JSON");
    for key in ["units_forked", "prefix_steps_saved", "schedules_deduped", "snapshot_bytes"] {
        assert_eq!(counter(&doc, key), 0, "`{key}` must be zero under --no-fork");
    }

    // It takes no value: a trailing operand is a usage error, not a
    // silently swallowed argument.
    let valued = cli()
        .args(["run", "SSDB", "--quick", "--no-fork", "5"])
        .output()
        .expect("spawn");
    assert!(!valued.status.success(), "--no-fork 5 must be rejected");
    assert_eq!(valued.status.code(), Some(2), "usage errors exit 2");
    let err = String::from_utf8_lossy(&valued.stderr);
    assert!(err.contains("takes no value"), "{err}");

    // Repeating it is an error too — it almost always means a mangled
    // command line.
    let twice = cli()
        .args(["run", "SSDB", "--quick", "--no-fork", "--no-fork"])
        .output()
        .expect("spawn");
    assert!(!twice.status.success(), "duplicate --no-fork must be rejected");
    let err = String::from_utf8_lossy(&twice.stderr);
    assert!(err.contains("more than once"), "{err}");
}

#[test]
fn campaign_resumes_across_fork_mode() {
    // The campaign fingerprint normalizes the fork knob: a journal
    // written with fork mode on resumes byte-identically under
    // --no-fork, because forking is an execution strategy, not a
    // result-affecting configuration.
    let mut dir = std::env::temp_dir();
    dir.push(format!("owl-cli-fork-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let d = dir.to_str().expect("utf8 temp path");

    let first = run_ok(&["campaign", d, "--quick"]);
    assert!(first.contains("campaign summary"), "{first}");
    let resumed = run_ok(&["campaign", d, "--quick", "--resume", "--no-fork"]);
    assert_eq!(resumed, first, "--no-fork must not invalidate the journal");

    let _ = std::fs::remove_dir_all(dir);
}
