//! End-to-end tests for the `owl_cli` binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_owl_cli"))
}

fn run_ok(args: &[&str]) -> String {
    let out = cli().args(args).output().expect("spawn owl_cli");
    assert!(
        out.status.success(),
        "owl_cli {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn list_shows_all_programs() {
    let out = run_ok(&["list"]);
    for name in ["Apache", "Chrome", "Libsafe", "Linux", "Memcached", "MySQL", "SSDB", "Bank"] {
        assert!(out.contains(name), "missing {name} in:\n{out}");
    }
}

#[test]
fn run_reports_reduction_and_findings() {
    let out = run_ok(&["run", "SSDB", "--quick"]);
    assert!(out.contains("reports:"), "{out}");
    assert!(out.contains("% reduced"), "{out}");
    assert!(out.contains("finding on `db`"), "{out}");
}

#[test]
fn hints_render_figure5_format() {
    let out = run_ok(&["hints", "Libsafe", "--quick"]);
    assert!(out.contains("data race on `dying`"), "{out}");
    assert!(out.contains("Vulnerable Site Location"), "{out}");
}

#[test]
fn audit_separates_benign_from_exploit() {
    let out = run_ok(&["audit", "Libsafe", "--quick"]);
    assert!(out.contains("auditing"), "{out}");
    assert!(out.contains("benign"), "{out}");
    assert!(out.contains("ATTACK ALERT"), "{out}");
}

#[test]
fn atomicity_front_end_flag() {
    let out = run_ok(&["run", "Bank", "--quick", "--atomicity"]);
    assert!(out.contains("atomicity front-end"), "{out}");
    assert!(out.contains("finding on `balance`"), "{out}");
}

#[test]
fn unknown_program_fails_cleanly() {
    let out = cli().args(["run", "nope"]).output().expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown program"), "{err}");
}

#[test]
fn no_args_prints_usage() {
    let out = cli().output().expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");
}
