//! Exploit reproduction: every attack's exploit inputs trigger the
//! consequence within a small number of re-executions — the paper's
//! §3.1 finding III ("8 out of the 10 triggered attacks required less
//! than 20 repetitive executions via subtle inputs").

use owl_race::executions_until;
use owl_vm::RunConfig;

#[test]
fn every_attack_triggers_within_twenty_executions() {
    let mut within_twenty = 0;
    let mut total = 0;
    for p in owl_corpus::all_programs() {
        for a in &p.attacks {
            total += 1;
            let best = p
                .exploit_inputs
                .iter()
                .filter_map(|input| {
                    executions_until(
                        &p.module,
                        p.entry,
                        input,
                        &RunConfig::default(),
                        11,
                        20,
                        a.spec_oracle(),
                    )
                })
                .min();
            match best {
                Some(n) => {
                    assert!(n <= 20);
                    within_twenty += 1;
                }
                None => panic!("{}: {} did not trigger in 20 executions", p.name, a.id()),
            }
        }
    }
    assert_eq!(total, 10);
    assert!(
        within_twenty >= 8,
        "paper: at least 8/10 within 20 executions; got {within_twenty}"
    );
}

/// Helper trait so the test reads naturally.
trait SpecOracle {
    fn spec_oracle(&self) -> owl_corpus::AttackOracle;
    fn id(&self) -> &'static str;
}

impl SpecOracle for owl_corpus::AttackSpec {
    fn spec_oracle(&self) -> owl_corpus::AttackOracle {
        self.oracle
    }
    fn id(&self) -> &'static str {
        self.id
    }
}

#[test]
fn exploits_need_their_subtle_inputs() {
    // Running each program's *benign* primary workload many times must
    // not realize the Libsafe code injection or the Apache HTML
    // integrity violation — those attacks structurally require the
    // crafted input values (oversized length, planted payload), not
    // just a lucky schedule (§3.1: "triggering concurrency bugs and
    // their attacks often need different inputs").
    for (name, attack_id) in [
        ("Libsafe", "libsafe-overflow"),
        ("Apache", "apache-25520-html-integrity"),
    ] {
        let p = owl_corpus::program(name).unwrap();
        let a = p.attack(attack_id).unwrap();
        let tries = executions_until(
            &p.module,
            p.entry,
            p.primary_workload(),
            &RunConfig::default(),
            23,
            30,
            a.oracle,
        );
        assert!(
            tries.is_none(),
            "{name}: benign workload realized {attack_id} after {tries:?} runs"
        );
    }
}

#[test]
fn consequences_match_the_advertised_types() {
    use owl_vm::{RandomScheduler, Violation, Vm};
    // Trigger each attack once and check the mechanical consequence
    // class lines up with Table 4's vulnerability type.
    type Check = fn(&owl_vm::ExecOutcome) -> bool;
    let checks: &[(&str, &str, Check)] = &[
        ("Libsafe", "Buffer Overflow", |o| {
            o.any_violation(|v| matches!(v, Violation::BufferOverflow { .. }))
        }),
        ("MySQL", "Double Free", |o| {
            o.any_violation(|v| matches!(v, Violation::DoubleFree { .. }))
        }),
        ("SSDB", "Use After Free", |o| {
            o.any_violation(|v| matches!(v, Violation::UseAfterFree { .. }))
        }),
        ("Apache", "Integer Overflow", |o| {
            o.any_violation(|v| matches!(v, Violation::IntegerUnderflow { .. }))
        }),
    ];
    for (name, label, check) in checks {
        let p = owl_corpus::program(name).unwrap();
        let mut seen = false;
        'outer: for input in &p.exploit_inputs {
            for seed in 0..25 {
                let mut sched = RandomScheduler::new(400 + seed);
                let vm = Vm::new(&p.module, p.entry, input.clone(), RunConfig::default());
                let o = vm.run(&mut sched, &mut owl_vm::NullSink);
                if check(&o) {
                    seen = true;
                    break 'outer;
                }
            }
        }
        assert!(seen, "{name}: no {label} consequence observed");
    }
}
