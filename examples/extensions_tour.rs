//! Tour of the reproduction's extensions beyond the paper's evaluated
//! pipeline — each one an item the paper names as future work or an
//! envisioned application:
//!
//! 1. **Atomicity-violation front-end** (§8.3 future work): a
//!    lock-protected check-then-act bug invisible to race detection.
//! 2. **Input synthesis from hints** (§1 notes symbolic execution
//!    could generate concrete inputs; here an affine solver closes the
//!    diverged-branch feedback loop automatically).
//! 3. **Path auditing** (§7.2): intrusion detection that watches only
//!    the vulnerable paths OWL identified.
//!
//! ```sh
//! cargo run --example extensions_tour
//! ```

use owl::{Owl, OwlConfig, PathAuditor};
use owl_static::{InputSynthesizer, VulnAnalyzer, VulnConfig};
use owl_verify::{VulnVerifier, VulnVerifyConfig};
use owl_vm::{ProgramInput, RandomScheduler};

fn main() {
    // ── 1. Atomicity-violation front-end ────────────────────────────
    println!("== 1. atomicity-violation front-end (bank overdraft) ==");
    let bank = owl_corpus::extensions::bank_atomicity();
    let owl = Owl::new(&bank.module, bank.entry, OwlConfig::default());
    let race_result = owl.run("Bank", &bank.workloads, &bank.exploit_inputs);
    println!(
        "race front-end:      {} finding(s) on `balance` (every access is locked)",
        race_result
            .findings
            .iter()
            .filter(|f| f.race.global_name.as_deref() == Some("balance"))
            .count()
    );
    let atomicity_result = owl.run_atomicity("Bank", &bank.workloads, &bank.exploit_inputs);
    let f = atomicity_result
        .finding_on("balance")
        .expect("atomicity finding");
    println!(
        "atomicity front-end: finding on `balance`, {} hint(s), site {}",
        f.vulns.len(),
        if f.any_site_reached() {
            "REACHED"
        } else {
            "not reached"
        }
    );

    // ── 2. Input synthesis from diverged branches ───────────────────
    println!("\n== 2. input synthesis from hints (MySQL SET PASSWORD gate) ==");
    let mysql = owl_corpus::program("MySQL").unwrap();
    let raw = owl_race::explore(
        &mysql.module,
        mysql.entry,
        &mysql.workloads,
        &owl_race::ExplorerConfig {
            runs_per_input: 12,
            ..Default::default()
        },
    );
    let report = raw.reports_on("pwd_buf").next().expect("pwd race").clone();
    let read = report.read_access().unwrap();
    let mut analyzer = VulnAnalyzer::new(&mysql.module, VulnConfig::default());
    let (vulns, _) = analyzer.analyze(read.site, &read.stack);
    let free_hint = vulns
        .iter()
        .find(|v| v.class == owl_ir::VulnClass::MemoryOp)
        .expect("double-free hint");
    let verifier = VulnVerifier::new(&mysql.module, VulnVerifyConfig::default());
    // Hand the verifier a "quiet" input where SET PASSWORD is off…
    let quiet = ProgramInput::new(vec![0, 0, 0, 5, 0, 0, 0, 0]).with_label("quiet");
    let plain = verifier.verify(mysql.entry, std::slice::from_ref(&quiet), free_hint);
    println!("with quiet input:    site reached = {}", plain.reached);
    // …and let the synthesizer recover the missing `SET PASSWORD`
    // toggle from the hint's gating branch.
    let (refined, synthesized) =
        verifier.verify_refining(mysql.entry, std::slice::from_ref(&quiet), free_hint, 3);
    println!(
        "with synthesis:      site reached = {}{}",
        refined.reached,
        match &synthesized {
            Some(i) => format!(" (synthesized input {i})"),
            None => String::new(),
        }
    );
    let synth = InputSynthesizer::new(&mysql.module);
    for br in free_hint.branches.iter().chain(&free_hint.path_branches) {
        if let Some(a) = synth.solve_branch(*br, free_hint.site) {
            println!(
                "solved gate at {}: input[{}] = {}",
                mysql.module.format_loc(*br),
                a.idx,
                a.value
            );
        }
    }

    // ── 3. Path auditing ─────────────────────────────────────────────
    println!("\n== 3. §7.2 path auditing (Libsafe) ==");
    let libsafe = owl_corpus::program("Libsafe").unwrap();
    let owl = Owl::new(&libsafe.module, libsafe.entry, OwlConfig::default());
    let result = owl.run("Libsafe", &libsafe.workloads, &libsafe.exploit_inputs);
    let auditor = PathAuditor::from_result(&libsafe.module, libsafe.entry, &result);
    println!(
        "auditing {:.1}% of the program ({} of {} instructions)",
        100.0 * auditor.audit_scope(),
        auditor.watched_count(),
        libsafe.module.total_insts()
    );
    for seed in 0..20 {
        let mut sched = RandomScheduler::new(seed);
        let a = auditor.audit(&libsafe.exploit_inputs[0], &mut sched);
        if a.attack_detected() {
            println!("exploit traffic raised: {:?}", a.alerts[0].kind);
            break;
        }
    }
    let mut sched = RandomScheduler::new(1000);
    let benign = auditor.audit(libsafe.primary_workload(), &mut sched);
    println!(
        "benign traffic raised: {} attack alert(s)",
        benign
            .alerts
            .iter()
            .filter(|al| !matches!(al.kind, owl::AlertKind::PathExecuted))
            .count()
    );
}
