//! The Linux uselib()/msync() race (paper Figure 2) under SKI-style
//! schedule exploration, from detection to a root shell.
//!
//! ```sh
//! cargo run --example kernel_race
//! ```

use owl_race::{executions_until, explore, ExploreStrategy, ExplorerConfig};
use owl_static::{hints, VulnAnalyzer, VulnConfig};
use owl_vm::RunConfig;

fn main() {
    let p = owl_corpus::program("Linux").expect("corpus program");
    println!("== Linux uselib()/msync() f_op race (Figure 2) ==\n");

    // SKI regime: systematic interleaving exploration (PCT) across the
    // syscall workload.
    let result = explore(
        &p.module,
        p.entry,
        &p.workloads,
        &ExplorerConfig {
            runs_per_input: 15,
            strategy: ExploreStrategy::Pct { depth: 3 },
            ..Default::default()
        },
    );
    println!(
        "schedule exploration: {} runs, {} distinct race report(s)",
        result.runs,
        result.reports.len()
    );
    let fop = result
        .reports_on("f_op")
        .next()
        .expect("f_op race found")
        .clone();
    println!("\nthe kernel race:\n{}", fop.format(&p.module));

    // Bug-to-attack propagation: the corrupted pointer reaches the
    // indirect call.
    let read = fop.read_access().expect("read side");
    let mut analyzer = VulnAnalyzer::new(&p.module, VulnConfig::default());
    let (vulns, _) = analyzer.analyze(read.site, &read.stack);
    print!("{}", hints::format_vuln_reports(&p.module, &vulns));

    // The two-input structure of the attack (§3.1 finding III): the
    // race needs one set of syscall timings, the root shell needs
    // *another* input (the mmap remap).
    println!("== triggering with crafted syscall parameters ==");
    let crash = executions_until(
        &p.module,
        p.entry,
        &p.exploit_inputs[0],
        &RunConfig::default(),
        1,
        20,
        |o| o.any_violation(|v| matches!(v, owl_vm::Violation::NullFuncPtr)),
    );
    println!(
        "NULL f_op dereference (kernel crash): {}",
        match crash {
            Some(n) => format!("triggered after {n} execution(s)"),
            None => "not triggered in 20 executions".into(),
        }
    );
    let root = executions_until(
        &p.module,
        p.entry,
        &p.exploit_inputs[1],
        &RunConfig::default(),
        1,
        20,
        |o| o.privilege == 0 && o.executed(31337),
    );
    println!(
        "root shell via remapped page:         {}",
        match root {
            Some(n) => format!("triggered after {n} execution(s)"),
            None => "not triggered in 20 executions".into(),
        }
    );
}
