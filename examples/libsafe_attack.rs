//! Walks the Libsafe attack (paper Figure 1) through every OWL stage,
//! narrating what each component contributes — the paper's §4.3
//! running example, end to end.
//!
//! ```sh
//! cargo run --example libsafe_attack
//! ```

use owl_race::{explore, ExplorerConfig};
use owl_static::{hints, AdhocSyncDetector, VulnAnalyzer, VulnConfig};
use owl_verify::{RaceVerifier, RaceVerifyConfig, VulnVerifier, VulnVerifyConfig};
use owl_vm::{RandomScheduler, RunConfig, Vm};

fn main() {
    let p = owl_corpus::program("Libsafe").expect("corpus program");
    println!("== Libsafe (Figure 1): the `dying` flag race ==\n");

    // Stage 1: run the race detector over the test workload.
    let raw = explore(
        &p.module,
        p.entry,
        &p.workloads,
        &ExplorerConfig {
            runs_per_input: 12,
            ..Default::default()
        },
    );
    println!(
        "detector: {} raw report(s) over {} run(s)",
        raw.reports.len(),
        raw.runs
    );

    // Stage 2: adhoc-synchronization hints (none in Libsafe).
    let adhoc = AdhocSyncDetector::new(&p.module);
    let anns = adhoc.detect(&raw.reports);
    println!("adhoc-sync detector: {} annotation(s)\n", anns.len());

    // Stage 3: dynamically verify the `dying` race.
    let report = raw
        .reports_on("dying")
        .next()
        .expect("the dying race is reported")
        .clone();
    println!("race report:\n{}", report.format(&p.module));
    let verifier = RaceVerifier::new(&p.module, RaceVerifyConfig::default());
    let verification = verifier.verify(p.entry, p.primary_workload(), &report);
    print!("{}", verifier.format_hints(&verification));
    assert!(verification.confirmed, "the race is real");

    // Stage 4: Algorithm 1 — from the corrupted load to the strcpy.
    let read = report.read_access().expect("read side");
    println!("\ncall stack OWL starts from (Figure 4 style):");
    print!(
        "{}",
        hints::format_call_stack(&p.module, read.site, &read.stack)
    );
    let mut analyzer = VulnAnalyzer::new(&p.module, VulnConfig::default());
    let (vulns, stats) = analyzer.analyze(read.site, &read.stack);
    println!(
        "\nvulnerability analyzer visited {} instruction(s) across {} function entr(ies):",
        stats.insts_visited, stats.funcs_entered
    );
    print!("{}", hints::format_vuln_reports(&p.module, &vulns));

    // Stage 5: dynamically verify the hinted site with the exploit
    // input derived from the hint ("loops with strcpy()").
    let vuln_verifier = VulnVerifier::new(&p.module, VulnVerifyConfig::default());
    for vr in &vulns {
        let vv = vuln_verifier.verify(p.entry, &p.exploit_inputs, vr);
        print!("{}", vuln_verifier.format(&vv));
    }

    // Ground truth: the exploit script lands within a handful of runs.
    println!("\n== exploit replay ==");
    for attempt in 1..=20u64 {
        let mut sched = RandomScheduler::new(attempt);
        let vm = Vm::new(
            &p.module,
            p.entry,
            p.exploit_inputs[0].clone(),
            RunConfig::default(),
        );
        let outcome = vm.run(&mut sched, &mut owl_vm::NullSink);
        if (p.attacks[0].oracle)(&outcome) {
            println!(
                "malicious code executed on attempt {attempt}: {:?}",
                outcome
                    .violations
                    .iter()
                    .map(|v| v.violation)
                    .collect::<Vec<_>>()
            );
            return;
        }
    }
    println!("exploit did not land in 20 attempts (try more seeds)");
}
