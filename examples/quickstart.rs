//! Quickstart: build a small concurrent program with the IR builder,
//! run the full OWL pipeline on it, and print what it finds.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! The program has a classic concurrency-attack shape: a worker checks
//! a racy `authenticated` flag and, when it is set, executes a
//! privileged operation — while another thread sets the flag for a
//! *different* session without synchronization.

use owl::{Owl, OwlConfig};
use owl_ir::{ModuleBuilder, Type};
use owl_static::hints;
use owl_vm::ProgramInput;

fn main() {
    // 1. Build the program.
    let mut mb = ModuleBuilder::new("quickstart");
    let authenticated = mb.global("authenticated", 1, Type::I64);

    let login_thread = mb.declare_func("login_thread", 1);
    let worker_thread = mb.declare_func("worker_thread", 1);
    let main_fn = mb.declare_func("main", 0);

    {
        // Sets the flag once its (unrelated) session logs in.
        let mut b = mb.build_func(login_thread);
        b.loc("auth.c", 21);
        let a = b.global_addr(authenticated);
        b.store(a, 1);
        b.ret(None);
    }
    {
        // if (authenticated) run_privileged();
        let mut b = mb.build_func(worker_thread);
        b.loc("worker.c", 40);
        let a = b.global_addr(authenticated);
        let v = b.load(a, Type::I64);
        let privileged = b.block();
        let done = b.block();
        b.br(v, privileged, done);
        b.switch_to(privileged);
        b.loc("worker.c", 44);
        b.set_privilege(0);
        b.jmp(done);
        b.switch_to(done);
        b.ret(None);
    }
    {
        let mut b = mb.build_func(main_fn);
        let t1 = b.thread_create(login_thread, 0);
        let t2 = b.thread_create(worker_thread, 0);
        b.thread_join(t1);
        b.thread_join(t2);
        b.ret(None);
    }
    let module = mb.finish();
    owl_ir::assert_verified(&module);

    // 2. Run the OWL pipeline (Figure 3 of the paper).
    let owl = Owl::new(&module, main_fn, OwlConfig::default());
    let result = owl.run("quickstart", &[ProgramInput::empty()], &[]);

    // 3. Report.
    println!("pipeline stats: {:?}\n", result.stats);
    for f in result.vulnerable_findings() {
        println!("== finding on {:?} ==", f.race.global_name);
        println!("{}", f.race.format(&module));
        for (vr, vv) in f.vulns.iter().zip(&f.vuln_verifications) {
            print!("{}", hints::format_vuln_report(&module, vr));
            println!(
                "dynamically verified: site {}",
                if vv.reached { "REACHED" } else { "not reached" }
            );
        }
        println!();
    }
    let n = result.vulnerable_findings().count();
    println!(
        "{n} vulnerable finding(s) out of {} verified race(s)",
        result.findings.len()
    );
}
