//! Audits the server programs (Apache, MySQL, SSDB) with the full OWL
//! pipeline — reproducing §8.4's discovery of the three previously
//! unknown attacks, with the actual consequences shown.
//!
//! ```sh
//! cargo run --example audit_server
//! ```

use owl::{evaluate_program, OwlConfig};
use owl_vm::{RandomScheduler, RunConfig, Vm};

fn main() {
    let config = OwlConfig::default();
    for name in ["Apache", "MySQL", "SSDB"] {
        let p = owl_corpus::program(name).expect("corpus program");
        let eval = evaluate_program(&p, &config);
        let s = &eval.result.stats;
        println!("== {name} ==");
        println!(
            "  reports: {} raw -> {} after annotation ({} adhoc syncs) -> {} verified; reduction {:.1}%",
            s.raw_reports,
            s.post_annotation_reports,
            s.adhoc_syncs,
            s.remaining,
            100.0 * s.reduction_ratio()
        );
        for a in &eval.attacks {
            println!(
                "  [{}] {} ({}) — {} — {}",
                if a.detected() { "DETECTED" } else { "missed " },
                a.spec.vuln_type,
                a.spec.version,
                if a.spec.known {
                    "known attack"
                } else {
                    "PREVIOUSLY UNKNOWN"
                },
                a.spec.advisory.unwrap_or("no advisory"),
            );
        }
        println!();
    }

    // Show the Apache HTML-integrity consequence concretely (Fig. 7).
    println!("== Apache-25520 consequence demo ==");
    let apache = owl_corpus::program("Apache").unwrap();
    let exploit = apache
        .exploit_inputs
        .iter()
        .find(|i| i.label() == Some("oversized log entry"))
        .unwrap();
    for seed in 1..=30u64 {
        let mut sched = RandomScheduler::new(seed);
        let vm = Vm::new(
            &apache.module,
            apache.entry,
            exploit.clone(),
            RunConfig::default(),
        );
        let o = vm.run(&mut sched, &mut owl_vm::NullSink);
        let html = o.file(5); // the victim's HTML file descriptor
        if html.contains(&777) {
            println!("  attempt {seed}: HTML file (fd 5) now contains {html:?}");
            println!("  (777 is the server's own request-log marker — the log was");
            println!("   redirected into another user's HTML file via the overflow)");
            break;
        }
    }

    // And the balancer DoS (Fig. 8).
    println!("\n== Apache-46215 consequence demo ==");
    let exploit = apache
        .exploit_inputs
        .iter()
        .find(|i| i.label() == Some("paired request completions"))
        .unwrap();
    for seed in 1..=30u64 {
        let mut sched = RandomScheduler::new(seed);
        let vm = Vm::new(
            &apache.module,
            apache.entry,
            exploit.clone(),
            RunConfig::default(),
        );
        let o = vm.run(&mut sched, &mut owl_vm::NullSink);
        let underflow =
            o.find_violation(|v| matches!(v, owl_vm::Violation::IntegerUnderflow { .. }));
        if let Some(u) = underflow {
            if o.outputs.contains(&(40, 1)) {
                println!("  attempt {seed}: busy counter wrapped ({})", u.violation);
                println!("  balancer routed the request to worker 1 — worker 0 is");
                println!("  'busiest' forever: denial of service on that worker");
                break;
            }
        }
    }
}
