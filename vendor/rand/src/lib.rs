//! Offline stand-in for `rand` 0.8, **bit-exact** with upstream for
//! the surface this workspace uses: `StdRng::seed_from_u64` followed
//! by `gen_range` / `gen_bool` draws.
//!
//! The schedulers' seed sweeps and the repo's byte-identical summary
//! assertions were produced against upstream `rand`'s streams, so this
//! stand-in reproduces them exactly:
//!
//! * `StdRng` is ChaCha12 with rand_chacha's layout — 64-bit block
//!   counter in words 12–13, zero stream id in words 14–15, four
//!   blocks (64 `u32` words) per refill;
//! * word accounting matches `rand_core::block::BlockRng`, including
//!   `next_u64` straddling a refill boundary at index 63;
//! * `seed_from_u64` is rand_core's PCG32 key expansion;
//! * `gen_range` is `UniformInt::sample_single_inclusive` (widening
//!   multiply with rejection zone);
//! * `gen_bool` is `Bernoulli` (scaled 2⁶⁴ integer threshold).

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface (the subset of `rand_core::RngCore`
/// this workspace needs).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, blanket-implemented for any
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`. Panics if `p` is outside
    /// `[0, 1]`, matching upstream.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // Bernoulli: p scaled to a u64 threshold; p == 1.0 is the
        // always-true sentinel and consumes no draw.
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        if !(0.0..1.0).contains(&p) {
            assert!(p == 1.0, "gen_bool: p = {p} is outside [0, 1]");
            return true;
        }
        let p_int = (p * SCALE) as u64;
        if p_int == u64::MAX {
            return true;
        }
        self.next_u64() < p_int
    }
}

impl<R: RngCore> Rng for R {}

/// Seed-constructible generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from `state` via rand_core's PCG32-based
    /// key expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that can be sampled uniformly without precomputation.
pub trait SampleRange<T> {
    /// Draws one uniform sample. Panics on an empty range, matching
    /// upstream `rand`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty, $unsigned:ty, $u_large:ty, $gen_large:ident, $gen_full:ident;)*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range"
                );
                sample_inclusive_impl!(
                    self.start, self.end - 1, rng,
                    $ty, $unsigned, $u_large, $gen_large, $gen_full
                )
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(
                    self.start() <= self.end(),
                    "cannot sample empty range"
                );
                sample_inclusive_impl!(
                    *self.start(), *self.end(), rng,
                    $ty, $unsigned, $u_large, $gen_large, $gen_full
                )
            }
        }
    )*};
}

/// `UniformInt::sample_single_inclusive` from rand 0.8: widening
/// multiply of a full-width draw by the range, rejecting the biased
/// low-word zone.
macro_rules! sample_inclusive_impl {
    ($low:expr, $high:expr, $rng:expr,
     $ty:ty, $unsigned:ty, $u_large:ty, $gen_large:ident, $gen_full:ident) => {{
        let low: $ty = $low;
        let high: $ty = $high;
        let range = high.wrapping_sub(low) as $unsigned as $u_large;
        let range = range.wrapping_add(1);
        if range == 0 {
            // Full integer domain.
            $gen_full($rng) as $ty
        } else {
            let zone = if (<$unsigned>::MAX as u64) <= (u16::MAX as u64) {
                let ints_to_reject = (<$u_large>::MAX - range + 1) % range;
                <$u_large>::MAX - ints_to_reject
            } else {
                (range << range.leading_zeros()).wrapping_sub(1)
            };
            loop {
                let v: $u_large = $gen_large($rng);
                let (hi, lo) = wmul(v, range);
                if lo <= zone {
                    break low.wrapping_add(hi as $ty);
                }
            }
        }
    }};
}

fn gen_u32<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
    rng.next_u32()
}

fn gen_u64<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
    rng.next_u64()
}

trait WideningMul: Sized {
    fn widening(self, x: Self) -> (Self, Self);
}

impl WideningMul for u32 {
    fn widening(self, x: u32) -> (u32, u32) {
        let t = u64::from(self) * u64::from(x);
        ((t >> 32) as u32, t as u32)
    }
}

impl WideningMul for u64 {
    fn widening(self, x: u64) -> (u64, u64) {
        let t = u128::from(self) * u128::from(x);
        ((t >> 64) as u64, t as u64)
    }
}

fn wmul<T: WideningMul>(a: T, b: T) -> (T, T) {
    a.widening(b)
}

impl_sample_range! {
    u8, u8, u32, gen_u32, gen_u32;
    u16, u16, u32, gen_u32, gen_u32;
    u32, u32, u32, gen_u32, gen_u32;
    u64, u64, u64, gen_u64, gen_u64;
    usize, usize, u64, gen_u64, gen_u64;
    i8, u8, u32, gen_u32, gen_u32;
    i16, u16, u32, gen_u32, gen_u32;
    i32, u32, u32, gen_u32, gen_u32;
    i64, u64, u64, gen_u64, gen_u64;
    isize, usize, u64, gen_u64, gen_u64;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
    const ROUNDS: usize = 12;
    /// rand_chacha refills four ChaCha blocks (64 `u32` words) at a
    /// time; the BlockRng index semantics depend on this length.
    const BUF_WORDS: usize = 64;

    /// rand 0.8's standard generator: ChaCha12, bit-exact with
    /// `rand::rngs::StdRng` for the draws this workspace performs.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        key: [u32; 8],
        /// Block counter of the next refill.
        counter: u64,
        results: [u32; BUF_WORDS],
        index: usize,
    }

    #[inline(always)]
    fn quarter(w: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        w[a] = w[a].wrapping_add(w[b]);
        w[d] = (w[d] ^ w[a]).rotate_left(16);
        w[c] = w[c].wrapping_add(w[d]);
        w[b] = (w[b] ^ w[c]).rotate_left(12);
        w[a] = w[a].wrapping_add(w[b]);
        w[d] = (w[d] ^ w[a]).rotate_left(8);
        w[c] = w[c].wrapping_add(w[d]);
        w[b] = (w[b] ^ w[c]).rotate_left(7);
    }

    impl StdRng {
        /// Builds the generator from a 32-byte ChaCha key.
        pub fn from_seed(seed: [u8; 32]) -> Self {
            let mut key = [0u32; 8];
            for (i, k) in key.iter_mut().enumerate() {
                *k = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().expect("4 bytes"));
            }
            StdRng {
                key,
                counter: 0,
                results: [0; BUF_WORDS],
                index: BUF_WORDS,
            }
        }

        fn refill(&mut self) {
            for block in 0..4u64 {
                let mut state = [0u32; 16];
                state[..4].copy_from_slice(&CHACHA_CONSTANTS);
                state[4..12].copy_from_slice(&self.key);
                let ctr = self.counter.wrapping_add(block);
                state[12] = ctr as u32;
                state[13] = (ctr >> 32) as u32;
                // words 14-15: stream id, always zero here.
                let mut w = state;
                for _ in 0..ROUNDS / 2 {
                    quarter(&mut w, 0, 4, 8, 12);
                    quarter(&mut w, 1, 5, 9, 13);
                    quarter(&mut w, 2, 6, 10, 14);
                    quarter(&mut w, 3, 7, 11, 15);
                    quarter(&mut w, 0, 5, 10, 15);
                    quarter(&mut w, 1, 6, 11, 12);
                    quarter(&mut w, 2, 7, 8, 13);
                    quarter(&mut w, 3, 4, 9, 14);
                }
                let out = &mut self.results[block as usize * 16..block as usize * 16 + 16];
                for i in 0..16 {
                    out[i] = w[i].wrapping_add(state[i]);
                }
            }
            self.counter = self.counter.wrapping_add(4);
        }

        fn generate_and_set(&mut self, index: usize) {
            self.refill();
            self.index = index;
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= BUF_WORDS {
                self.generate_and_set(0);
            }
            let value = self.results[self.index];
            self.index += 1;
            value
        }

        fn next_u64(&mut self) -> u64 {
            let read_u64 =
                |r: &[u32; BUF_WORDS], i: usize| (u64::from(r[i + 1]) << 32) | u64::from(r[i]);
            let index = self.index;
            if index < BUF_WORDS - 1 {
                self.index += 2;
                read_u64(&self.results, index)
            } else if index >= BUF_WORDS {
                self.generate_and_set(2);
                read_u64(&self.results, 0)
            } else {
                // Straddles the refill boundary: low word is the last
                // of the old buffer, high word the first of the new.
                let lo = u64::from(self.results[BUF_WORDS - 1]);
                self.generate_and_set(1);
                let hi = u64::from(self.results[0]);
                (hi << 32) | lo
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // rand_core's PCG32-based key expansion.
            const MUL: u64 = 6_364_136_223_846_793_005;
            const INC: u64 = 11_634_580_027_462_260_723;
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_mut(4) {
                state = state.wrapping_mul(MUL).wrapping_add(INC);
                let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
                let rot = (state >> 59) as u32;
                let x = xorshifted.rotate_right(rot);
                chunk.copy_from_slice(&x.to_le_bytes());
            }
            StdRng::from_seed(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let da: Vec<u64> = (0..200).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let db: Vec<u64> = (0..200).map(|_| b.gen_range(0..1_000_000u64)).collect();
        let dc: Vec<u64> = (0..200).map(|_| c.gen_range(0..1_000_000u64)).collect();
        assert_eq!(da, db);
        assert_ne!(da, dc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let x: u8 = r.gen_range(0..250);
            assert!(x < 250);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn boundary_straddle_is_consistent() {
        // Drive the index to 63 and draw a u64: the refill boundary
        // case must agree with a word-by-word reading of the stream.
        let mut a = StdRng::seed_from_u64(3);
        let mut words = Vec::new();
        for _ in 0..129 {
            words.push(a.next_u32());
        }
        let mut b = StdRng::seed_from_u64(3);
        for _ in 0..63 {
            b.next_u32();
        }
        let v = b.next_u64();
        assert_eq!(v, (u64::from(words[64]) << 32) | u64::from(words[63]));
    }
}
