//! Offline stand-in for `criterion`: the subset of the API the bench
//! targets compile against when the `criterion` feature is enabled.
//!
//! The default build never sees this crate — `owl-bench` gates
//! criterion behind a default-off feature and uses its own
//! `owl_bench::harness` fallback, which also *measures*. This crate
//! exists so `cargo` can resolve the optional dependency offline, and
//! so `--features criterion` still compiles; it times each benchmark
//! with a plain `Instant` loop and prints one line per bench.

use std::time::Instant;

/// Prevents the optimizer from discarding `v`.
pub fn black_box<T>(v: T) -> T {
    std::hint::black_box(v)
}

/// Batch sizing hint; accepted for API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration setup.
    SmallInput,
    /// Large per-iteration setup.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Timer handle passed to bench closures.
#[derive(Default)]
pub struct Bencher {
    iters: u64,
    total_ns: u128,
}

impl Bencher {
    /// Times `f` over a small fixed iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warmup
        for _ in 0..3 {
            let t0 = Instant::now();
            black_box(f());
            self.total_ns += t0.elapsed().as_nanos();
            self.iters += 1;
        }
    }

    /// Times `routine` over values from `setup`, setup untimed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warmup
        for _ in 0..3 {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.total_ns += t0.elapsed().as_nanos();
            self.iters += 1;
        }
    }
}

fn report(name: &str, b: &Bencher) {
    if b.iters > 0 {
        eprintln!(
            "bench {name}: {} ns/iter ({} iters, criterion stand-in)",
            b.total_ns / u128::from(b.iters),
            b.iters
        );
    }
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), _c: self }
    }
}

/// Named benchmark group; results report as `group/name`.
pub struct BenchmarkGroup<'c> {
    name: String,
    _c: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sample-count hint; accepted for API compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report(&format!("{}/{name}", self.name), &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
