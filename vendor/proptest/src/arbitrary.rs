//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}
