//! Runner configuration and the deterministic generation RNG.

/// Per-property configuration (only `cases` is meaningful here).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Deterministic generation RNG (SplitMix64), seeded per test from the
/// test's name so distinct properties explore distinct streams while
/// every run of the suite is reproducible.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test name.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty choice");
        self.next_u64() % n
    }
}
