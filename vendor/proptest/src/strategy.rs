//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Generates values of an associated type from the test RNG.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies ([`crate::prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % width;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let width = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % width;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
