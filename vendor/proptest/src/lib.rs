//! Offline stand-in for `proptest`: a miniature property-test runner
//! covering the surface this workspace uses.
//!
//! * [`proptest!`] runs each property for `Config::cases` generated
//!   inputs from a deterministic RNG (failures print the case values
//!   via the panic message — there is **no shrinking**);
//! * strategies: integer ranges, tuples, [`strategy::Just`],
//!   [`arbitrary::any`], [`collection::vec`], [`prop_oneof!`] unions,
//!   and [`strategy::Strategy::prop_map`];
//! * assertions: [`prop_assert!`] / [`prop_assert_eq!`] delegate to
//!   `assert!` / `assert_eq!`.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests: an optional
/// `#![proptest_config(<expr>)]` header followed by `#[test]`
/// functions whose arguments are drawn from strategies with
/// `name in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @cfg ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                let ($($pat,)*) = (
                    $($crate::strategy::Strategy::generate(&$strat, &mut rng),)*
                );
                let run = || -> () { $body };
                if let Err(payload) =
                    ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run))
                {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (no shrinking in the \
                         offline stand-in)",
                        case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items! { @cfg ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
