//! Offline stand-in for `serde`: exactly the surface this workspace
//! touches, which is the `Serialize`/`Deserialize` derive markers.
//!
//! Real serialization in this repo goes through `owl::json`
//! (`crates/core/src/json.rs`); the derives are documentation of
//! intent, not machinery. The traits are inert and blanket-implemented
//! so any `T: Serialize` bound stays satisfiable.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait; blanket-implemented for every type.
pub trait Serialize {}

/// Marker trait; blanket-implemented for every type.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
