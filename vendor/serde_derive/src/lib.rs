//! No-op `Serialize`/`Deserialize` derives.
//!
//! The workspace derives these traits purely as markers — all real
//! (de)serialization goes through the hand-rolled `owl::json` — so the
//! derive expansions are intentionally empty. The `serde` helper
//! attribute is registered so field/variant attributes stay legal.

use proc_macro::TokenStream;

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` helpers.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` helpers.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
